"""Table 4: average temperature of the issue-queue halves for the
paper's three representative benchmarks (art, facerec, mesa), plus the
toggle-count commentary of §4.1."""

from repro.sim.experiments import issue_queue_experiment
from repro.sim.results import format_table

BENCHES = ("art", "facerec", "mesa")


def test_table4_issue_queue_half_temperatures(benchmark, cycles):
    exp = benchmark.pedantic(
        issue_queue_experiment,
        kwargs=dict(benchmarks=BENCHES, max_cycles=max(cycles, 100_000)),
        rounds=1, iterations=1)
    rows = [(bench, label, f"{tail:.1f}", f"{head:.1f}")
            for bench, label, tail, head in exp.table4_rows()]
    print()
    print(format_table(("Benchmark", "Technique", "Tail (K)", "Head (K)"),
                       rows, title="Table 4: avg temp of issue-queue halves"))
    toggles = {b: exp.toggling[b].iq_toggles for b in BENCHES}
    print(f"\ntoggle counts: {toggles}")

    # Shape: toggling equalizes the halves; the base design does not.
    for bench in ("facerec", "mesa"):
        togg = exp.toggling[bench]
        base = exp.base[bench]
        togg_gap = abs(togg.mean_temps["IntQ0"] - togg.mean_temps["IntQ1"])
        base_gap = abs(base.mean_temps["IntQ0"] - base.mean_temps["IntQ1"])
        benchmark.extra_info[f"{bench}_gap_toggling"] = togg_gap
        benchmark.extra_info[f"{bench}_gap_base"] = base_gap
    # art never overheats the queue: no speedup available.
    assert exp.base["art"].stall_cycles == 0
