"""Figure 8: IPC of the register-file constrained chip under the four
mapping x turnoff configurations (§4.3)."""

from repro.sim.experiments import regfile_experiment


def test_figure8_regfile_configurations(benchmark, cycles, benchmarks):
    exp = benchmark.pedantic(
        regfile_experiment,
        kwargs=dict(benchmarks=benchmarks, max_cycles=cycles),
        rounds=1, iterations=1)
    print()
    print(exp.format())
    for key, over in (("turnoff_priority_vs_priority", "priority only"),
                      ("turnoff_priority_vs_balanced", "balanced only")):
        benchmark.extra_info[key] = exp.average_speedup(
            "fine-grain + priority", over)

    # Shape: the paper's orderings.
    # 1. Without turnoff, balanced mapping beats priority mapping.
    assert exp.average_speedup("balanced only", "priority only") > 0.0
    # 2. Fine-grain turnoff + priority beats priority alone.
    assert exp.average_speedup("fine-grain + priority",
                               "priority only") > 0.0
    # 3. The full combination is the best of the four.
    for other in ("fine-grain + balanced", "balanced only",
                  "priority only"):
        assert exp.average_speedup("fine-grain + priority", other) >= 0.0
