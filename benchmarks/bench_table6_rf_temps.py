"""Table 6: register-file copy temperatures and IPC for eon under all
four configurations (§4.3)."""

from repro.sim.experiments import regfile_experiment
from repro.sim.results import format_table


def test_table6_regfile_copy_temperatures(benchmark, cycles):
    exp = benchmark.pedantic(
        regfile_experiment,
        kwargs=dict(benchmarks=("eon",), max_cycles=max(cycles, 100_000)),
        rounds=1, iterations=1)
    rows = [(label, f"{ipc:.2f}", f"{c0:.1f}", f"{c1:.1f}")
            for label, ipc, c0, c1 in exp.table6_rows("eon")]
    print()
    print(format_table(
        ("Technique", "IPC", "Copy 0 (K)", "Copy 1 (K)"), rows,
        title="Table 6: average register-file copy temp. for eon"))
    turnoffs = {label: exp.results[label]["eon"].rf_turnoffs
                for label in exp.results}
    print(f"\ncopy turnoff counts: {turnoffs}")

    table = {label: (ipc, c0, c1)
             for label, ipc, c0, c1 in exp.table6_rows("eon")}
    # Shape: priority+turnoff achieves the highest IPC (paper: 1.2 vs
    # 1.1 vs 0.9 vs 0.8), and balanced mapping keeps the copies closer
    # in temperature than priority mapping.
    assert table["fine-grain + priority"][0] >= max(
        v[0] for v in table.values()) - 1e-9
    bal_gap = abs(table["balanced only"][1] - table["balanced only"][2])
    pri_gap = abs(table["priority only"][1] - table["priority only"][2])
    assert bal_gap <= pri_gap + 0.1
