"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the tables).  Environment knobs:

* ``REPRO_BENCH_CYCLES`` — cycles per simulation (default 60000;
  the paper-shape summaries stabilise around 150000+).
* ``REPRO_BENCH_BENCHMARKS`` — comma-separated benchmark subset
  (default: all 22).
"""

import os

import pytest

from repro.workloads import BENCHMARK_NAMES


def bench_cycles(default: int = 60_000) -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", default))


def bench_benchmarks():
    names = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if not names:
        return tuple(BENCHMARK_NAMES)
    return tuple(n.strip() for n in names.split(",") if n.strip())


@pytest.fixture(scope="session")
def cycles():
    return bench_cycles()


@pytest.fixture(scope="session")
def benchmarks():
    return bench_benchmarks()
