"""Table 5: per-ALU temperatures and IPC for parser (unconstrained)
and perlbmk (ALU-constrained) under the three policies (§4.2)."""

from repro.sim.experiments import alu_experiment
from repro.sim.results import format_table

BENCHES = ("parser", "perlbmk")


def test_table5_alu_temperatures(benchmark, cycles):
    exp = benchmark.pedantic(
        alu_experiment,
        kwargs=dict(benchmarks=BENCHES, max_cycles=max(cycles, 100_000)),
        rounds=1, iterations=1)
    rows = []
    for bench, label, ipc, temps in exp.table5_rows():
        rows.append((bench, label, f"{ipc:.1f}",
                     *(f"{t:.1f}" for t in temps)))
    print()
    print(format_table(
        ("Benchmark", "Technique", "IPC",
         *(f"ALU{i} (K)" for i in range(6))), rows,
        title="Table 5: average integer ALU temperatures"))

    # Shape assertions from the paper's discussion:
    # 1. parser is insensitive (never overheats).
    parser = {label: ipc for _, label, ipc, _ in exp.table5_rows(("parser",))}
    assert max(parser.values()) - min(parser.values()) < 0.02
    # 2. Static priority produces a monotone temperature ladder.
    base_temps = next(t for b, l, _, t in exp.table5_rows(("parser",))
                      if l == "Base")
    assert base_temps[0] > base_temps[5]
    # 3. Round-robin flattens the ladder.
    rr_temps = next(t for b, l, _, t in exp.table5_rows(("parser",))
                    if l.startswith("Round"))
    assert max(rr_temps) - min(rr_temps) < (base_temps[0] - base_temps[5])
    # 4. perlbmk: fine-grain tolerates hotter ALUs than base (which
    #    must stall the whole core instead).
    perl = exp.table5_rows(("perlbmk",))
    fg_temps = next(t for _, l, _, t in perl if l.startswith("Fine"))
    base_perl = next(t for _, l, _, t in perl if l == "Base")
    assert max(fg_temps) > max(base_perl)
