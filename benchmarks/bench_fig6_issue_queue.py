"""Figure 6: IPC with and without activity toggling on the
issue-queue constrained chip (paper §4.1)."""

from repro.sim.experiments import issue_queue_experiment


def test_figure6_activity_toggling(benchmark, cycles, benchmarks):
    exp = benchmark.pedantic(
        issue_queue_experiment,
        kwargs=dict(benchmarks=benchmarks, max_cycles=cycles),
        rounds=1, iterations=1)
    print()
    print(exp.format())
    benchmark.extra_info["avg_speedup_all"] = exp.average_speedup()
    benchmark.extra_info["avg_speedup_constrained"] = (
        exp.average_speedup(only_constrained=True))
    # Shape assertions (paper: cold benchmarks are insensitive).
    if "art" in exp.benchmarks:
        assert abs(exp.speedup("art")) < 0.02
    if "mcf" in exp.benchmarks:
        assert abs(exp.speedup("mcf")) < 0.02
