"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the sensitivity of the
techniques to their key parameters:

* toggle threshold (0.5 K in the paper) — how often toggling fires;
* turnoff hysteresis — thermostat chatter for fine-grain turnoff;
* sensing interval — controller reaction time;
* completely-balanced mapping — the wire-hungry third mapping of
  Figure 4, which cannot use fine-grain turnoff at all.
"""

import dataclasses

from repro.core.mapping import MappingKind
from repro.core.policies import (ALUPolicy, IssueQueuePolicy,
                                 RegFilePolicy, TechniqueConfig)
from repro.pipeline.config import ThermalConfig
from repro.sim.parallel import ExperimentEngine
from repro.sim.results import format_table
from repro.sim.runner import SimulationConfig
from repro.thermal.floorplan import FloorplanVariant

BENCH = "mesa"

#: Shared engine: sweeps fan their independent runs over worker
#: processes (REPRO_JOBS) and memoize them in the on-disk cache.
_ENGINE = ExperimentEngine()


def _config(cycles, thermal=None, techniques=None,
            variant=FloorplanVariant.ISSUE_QUEUE, bench=BENCH):
    config = SimulationConfig(
        benchmark=bench, variant=variant,
        techniques=techniques or TechniqueConfig(
            issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
        max_cycles=cycles)
    if thermal is not None:
        config = dataclasses.replace(config, thermal=thermal)
    return config


def _run(cycles, **kwargs):
    return _ENGINE.run_one(_config(cycles, **kwargs))


def test_ablation_toggle_threshold(benchmark, cycles):
    def sweep():
        thresholds = (0.25, 0.5, 1.0, 2.0)
        results = _ENGINE.run_many([
            _config(cycles, thermal=dataclasses.replace(
                ThermalConfig(), toggle_threshold_k=threshold))
            for threshold in thresholds])
        return [(threshold, result.ipc, result.iq_toggles,
                 result.global_stalls)
                for threshold, result in zip(thresholds, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(("threshold K", "IPC", "toggles", "stalls"),
                       rows, title="Ablation: toggle threshold (mesa)"))
    toggles = [r[2] for r in rows]
    assert toggles[0] >= toggles[-1]  # higher threshold, fewer toggles


def test_ablation_sensing_interval(benchmark, cycles):
    def sweep():
        intervals = (125, 250, 1000)
        results = _ENGINE.run_many([
            _config(cycles,
                    thermal=dataclasses.replace(
                        ThermalConfig(), sensor_interval_cycles=interval),
                    techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
                    variant=FloorplanVariant.ALU, bench="perlbmk")
            for interval in intervals])
        return [(interval, result.ipc, result.alu_turnoffs,
                 result.global_stalls)
                for interval, result in zip(intervals, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(("interval", "IPC", "turnoffs", "stalls"), rows,
                       title="Ablation: sensing interval (perlbmk, ALU)"))


def test_ablation_turnoff_hysteresis(benchmark, cycles):
    def sweep():
        hystereses = (0.1, 0.4, 1.5)
        results = _ENGINE.run_many([
            _config(cycles,
                    thermal=dataclasses.replace(
                        ThermalConfig(), turnoff_hysteresis_k=hysteresis),
                    techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
                    variant=FloorplanVariant.ALU, bench="perlbmk")
            for hysteresis in hystereses])
        return [(hysteresis, result.ipc, result.alu_turnoffs)
                for hysteresis, result in zip(hystereses, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(("hysteresis K", "IPC", "turnoffs"), rows,
                       title="Ablation: turnoff hysteresis (perlbmk, ALU)"))
    # Larger hysteresis keeps copies off longer: fewer on/off events.
    assert rows[0][2] >= rows[-1][2]


def test_ablation_completely_balanced_mapping(benchmark, cycles):
    def sweep():
        kinds = (MappingKind.PRIORITY, MappingKind.BALANCED,
                 MappingKind.COMPLETELY_BALANCED)
        results = _ENGINE.run_many([
            _config(cycles,
                    techniques=TechniqueConfig(
                        regfile=RegFilePolicy(kind,
                                              fine_grain_turnoff=True)),
                    variant=FloorplanVariant.REGFILE, bench="eon")
            for kind in kinds])
        return [(kind.value, result.ipc, result.rf_turnoffs,
                 result.global_stalls)
                for kind, result in zip(kinds, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(("mapping", "IPC", "turnoffs", "stalls"), rows,
                       title="Ablation: third mapping (eon, regfile)"))
    # Completely-balanced cannot turn copies off (every ALU straddles
    # both copies), so it falls back to stalling.
    assert rows[2][2] == 0


def test_ablation_temporal_fallback(benchmark, cycles):
    """Stall vs duty-cycle throttling as the temporal technique, under
    the base (no spatial technique) policy on a hot chip."""
    import dataclasses as _dc

    from repro.pipeline.config import ThermalConfig as _TC

    def sweep():
        techniques = ("stall", "throttle")
        results = _ENGINE.run_many([
            _config(cycles,
                    thermal=_dc.replace(_TC(),
                                        temporal_technique=technique),
                    techniques=TechniqueConfig(),
                    variant=FloorplanVariant.ALU, bench="perlbmk")
            for technique in techniques])
        return [(technique, result.ipc, result.global_stalls,
                 result.stall_cycles)
                for technique, result in zip(techniques, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(("fallback", "IPC", "events", "stall cycles"),
                       rows,
                       title="Ablation: temporal fallback (perlbmk, ALU)"))
