"""Figure 7: IPC under round-robin (ideal), fine-grain turnoff, and
the stall-on-overheat baseline on the ALU-constrained chip (§4.2)."""

from repro.sim.experiments import alu_experiment


def test_figure7_fine_grain_turnoff(benchmark, cycles, benchmarks):
    exp = benchmark.pedantic(
        alu_experiment,
        kwargs=dict(benchmarks=benchmarks, max_cycles=cycles),
        rounds=1, iterations=1)
    print()
    print(exp.format())
    benchmark.extra_info["avg_speedup_all"] = exp.average_speedup()
    benchmark.extra_info["fg_vs_rr"] = exp.fine_grain_vs_round_robin()

    # Shape: fine-grain turnoff approaches the round-robin upper bound
    # (paper: within ~1%) and beats the baseline overall.
    assert exp.fine_grain_vs_round_robin() > -0.10
    assert exp.average_speedup() > 0.0
    if "parser" in exp.benchmarks:
        assert abs(exp.speedup("parser")) < 0.02
