"""Batched grid execution: identity, grouping, decline, throughput.

The batched kernel path (``repro.sim.batch`` + ``run_batch`` in
``repro.pipeline.kernel``) locks a whole technique grid of one
benchmark in step through one process.  It must be a perfect stand-in
for per-run execution: every run's :class:`SimulationResult` —
counters, metrics, timelines, energies — ``dataclasses.asdict``-equal
to both the per-run kernel (``REPRO_BATCH=0``) and the reference
per-cycle loop (``REPRO_KERNEL=0``), across the figure-6/7/8 grids,
with sanitize/trace declines and checkpoint restores in the mix.
"""

import dataclasses
import gc
import random
import time

import numpy as np
import pytest

from repro.core.mapping import MappingKind
from repro.core.policies import (ALUPolicy, IssueQueuePolicy,
                                 RegFilePolicy, TechniqueConfig)
from repro.pipeline.kernel import BatchStats, batch_enabled
from repro.pipeline.soa import RunAxisStore
from repro.sim import batch as batch_mod
from repro.sim.batch import (BatchDispatcher, batch_key,
                             batch_shm_enabled, plan_groups, run_group)
from repro.sim.parallel import ExperimentEngine, WorkerOutcome
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant


def config(benchmark="gzip", variant=FloorplanVariant.ALU,
           techniques=None, **overrides):
    base = dict(benchmark=benchmark, variant=variant,
                max_cycles=2_500, warmup_cycles=1_000)
    if techniques is not None:
        base["techniques"] = techniques
    base.update(overrides)
    return SimulationConfig(**base)


def fig6_grid(**overrides):
    """Issue-queue study: toggling vs base, two benchmarks."""
    return [config(bench, FloorplanVariant.ISSUE_QUEUE,
                   TechniqueConfig(issue_queue=policy), **overrides)
            for bench in ("gzip", "mesa")
            for policy in (IssueQueuePolicy.ACTIVITY_TOGGLING,
                           IssueQueuePolicy.BASE)]


def fig7_grid(**overrides):
    """ALU study: the hot constrained floorplan forks execution
    classes mid-measurement (fine-grain and base diverge at the first
    throttled boundary)."""
    return [config(bench, FloorplanVariant.ALU,
                   TechniqueConfig(alus=policy), **overrides)
            for bench in ("perlbmk", "mesa")
            for policy in (ALUPolicy.ROUND_ROBIN, ALUPolicy.FINE_GRAIN,
                           ALUPolicy.BASE)]


def fig8_grid(**overrides):
    """Register-file study: the mapping kind is warm-relevant (it
    shapes warm-up traffic), so the four policies batch as two groups
    of two — fine-grain turnoff only matters during measurement."""
    return [config("gzip", FloorplanVariant.REGFILE,
                   TechniqueConfig(regfile=RegFilePolicy(kind, fine)),
                   **overrides)
            for kind in (MappingKind.BALANCED, MappingKind.PRIORITY)
            for fine in (True, False)]


GRIDS = {"fig6": fig6_grid, "fig7": fig7_grid, "fig8": fig8_grid}


def run_grid(monkeypatch, configs, batch="1", kernel="1", jobs=1):
    monkeypatch.setenv("REPRO_BATCH", batch)
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    engine = ExperimentEngine(jobs=jobs, use_cache=False,
                              use_checkpoints=False)
    return engine.run_many(configs), engine.stats


def assert_all_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestBatchEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled() is True

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert batch_enabled() is False


class TestPlanGroups:
    def test_groups_by_warm_key(self):
        configs = fig6_grid()
        groups = plan_groups(configs, range(len(configs)))
        # One group per benchmark; toggling joins its benchmark's
        # group (it batches as a singleton *execution class*, which is
        # an intra-batch concern, not a grouping one).
        assert sorted(sorted(g) for g in groups) == [[0, 1], [2, 3]]

    def test_round_robin_warm_key_differs(self):
        configs = fig7_grid()
        groups = plan_groups(configs, range(len(configs)))
        # Round-robin rotation warms differently, so each benchmark's
        # group holds only fine-grain + base.
        assert sorted(sorted(g) for g in groups) == [[1, 2], [4, 5]]

    def test_singletons_and_ineligible_stay_out(self):
        configs = [config("gzip"), config("mesa"),
                   config("gzip", sanitize=True),
                   config("gzip", trace_events=True)]
        assert plan_groups(configs, range(len(configs))) == []

    def test_only_pending_indices_considered(self):
        configs = fig8_grid()
        groups = plan_groups(configs, [0, 1])
        assert sorted(sorted(g) for g in groups) == [[0, 1]]
        # The two mapping kinds warm differently and never group.
        assert plan_groups(configs, [1, 3]) == []

    def test_batch_key_separates_cycle_budgets(self):
        a = config("gzip")
        b = config("gzip", max_cycles=5_000)
        assert batch_key(a) != batch_key(b)
        assert batch_key(a) == batch_key(config("gzip"))


class TestBatchIdentity:
    """The three execution paths agree run for run, grid for grid."""

    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_grid_matches_per_run_kernel(self, monkeypatch, name):
        configs = GRIDS[name]()
        batched, stats = run_grid(monkeypatch, configs, batch="1")
        per_run, off_stats = run_grid(monkeypatch, configs, batch="0")
        assert_all_identical(batched, per_run)
        assert stats.batched_runs > 0
        assert off_stats.batched_runs == 0

    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_grid_matches_reference_loop(self, monkeypatch, name):
        configs = GRIDS[name]()
        batched, _ = run_grid(monkeypatch, configs, batch="1")
        reference, _ = run_grid(monkeypatch, configs,
                                batch="0", kernel="0")
        assert_all_identical(batched, reference)

    def test_expected_group_shapes(self, monkeypatch):
        _, stats6 = run_grid(monkeypatch, fig6_grid())
        assert (stats6.batch_groups, stats6.batched_runs) == (2, 4)
        _, stats7 = run_grid(monkeypatch, fig7_grid())
        assert (stats7.batch_groups, stats7.batched_runs) == (2, 4)
        _, stats8 = run_grid(monkeypatch, fig8_grid())
        assert (stats8.batch_groups, stats8.batched_runs) == (2, 4)

    def test_mid_interval_warm_state(self, monkeypatch):
        """A warm-up that is NOT a multiple of the sensing interval:
        the shared warm restore must resume toward the next *absolute*
        boundary in every run of the group."""
        configs = fig8_grid(warmup_cycles=1_117)
        batched, stats = run_grid(monkeypatch, configs, batch="1")
        per_run, _ = run_grid(monkeypatch, configs, batch="0")
        assert stats.batched_runs == len(configs)
        assert_all_identical(batched, per_run)

    def test_batch_from_disk_checkpoints(self, monkeypatch, tmp_path):
        """The group leader restoring the cell's on-disk warm
        checkpoint yields the same grid as warming from scratch."""
        configs = fig8_grid()
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_KERNEL", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cold_engine = ExperimentEngine(jobs=1, use_cache=False,
                                       use_checkpoints=True)
        cold = cold_engine.run_many(configs)
        warm_engine = ExperimentEngine(jobs=1, use_cache=False,
                                       use_checkpoints=True)
        warm = warm_engine.run_many(configs)
        assert_all_identical(cold, warm)
        assert warm_engine.stats.batched_runs == len(configs)


class TestSeparability:
    """Per-run observability survives batching: each run's metrics
    payload and thermal timelines are exactly what a solo run of the
    same config reports (regression for cross-run bleed through the
    shared run-axis store or the broadcast deltas)."""

    def test_per_run_metrics_and_timelines(self, monkeypatch):
        configs = fig8_grid()
        batched, stats = run_grid(monkeypatch, configs, batch="1")
        assert stats.batched_runs == len(configs)
        for cfg, result in zip(configs, batched):
            solo = Simulator(cfg).run()
            assert result.metrics == solo.metrics
            assert result.timelines == solo.timelines
            assert (result.timeline_interval_cycles
                    == solo.timeline_interval_cycles)

    def test_runs_differ_from_each_other(self, monkeypatch):
        """Sanity: the four RF policies do produce distinct metrics —
        identity above is not vacuous."""
        batched, _ = run_grid(monkeypatch, fig8_grid(), batch="1")
        payloads = [dataclasses.asdict(r) for r in batched]
        assert any(p != payloads[0] for p in payloads[1:])


class TestDecline:
    """Ineligible work flows through the per-run path unchanged."""

    @pytest.mark.parametrize("flag", ["sanitize", "trace_events"])
    def test_flagged_configs_decline(self, monkeypatch, flag):
        configs = fig8_grid(**{flag: True})
        flagged, stats = run_grid(monkeypatch, configs, batch="1")
        assert stats.batched_runs == 0
        serial, _ = run_grid(monkeypatch, configs, batch="0")
        assert_all_identical(flagged, serial)

    @pytest.mark.parametrize("env, value", [
        ("REPRO_SANITIZE", "1"), ("REPRO_TRACE", "1")])
    def test_env_flags_decline(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        _, stats = run_grid(monkeypatch, fig8_grid(), batch="1")
        assert stats.batched_runs == 0

    def test_mixed_grid_splits(self, monkeypatch):
        """A grid mixing eligible and sanitized runs batches the
        former and falls back for the latter, with identical output."""
        configs = fig8_grid() + [config("gzip", sanitize=True)]
        mixed, stats = run_grid(monkeypatch, configs, batch="1")
        assert stats.batched_runs == 4
        serial, _ = run_grid(monkeypatch, configs, batch="0")
        assert_all_identical(mixed, serial)


class TestEngineBookkeeping:
    def test_pool_skipped_when_batch_covers_grid(self, monkeypatch):
        """With the whole grid in one batch group there is nothing
        left for the worker pool even at jobs > 1."""
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_KERNEL", "1")
        engine = ExperimentEngine(jobs=2, use_cache=False,
                                  use_checkpoints=False)

        def no_pool(*args, **kwargs):
            raise AssertionError("worker pool must not start")

        monkeypatch.setattr(engine, "_run_pool", no_pool)
        results = engine.run_many(fig8_grid())
        assert len(results) == 4
        assert engine.stats.batched_runs == 4
        assert engine.stats.parallel_runs == 0

    def test_custom_runner_bypasses_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        calls = []

        def runner(cfg):
            calls.append(cfg.benchmark)
            return WorkerOutcome(Simulator(cfg).run(),
                                 sanitized=False, sanitizer_checks=0)

        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False, runner=runner)
        engine.run_many(fig8_grid())
        assert len(calls) == 4
        assert engine.stats.batched_runs == 0


class TestRunAxisStore:
    def test_views_alias_rows(self):
        store = RunAxisStore(3, n_int_alus=4, n_fp_adders=2,
                             n_rf_copies=2)
        view = store.view(1, "int_ops")
        view += np.arange(4)
        assert store.row(1).sum() == 6
        assert store.row(0).sum() == 0 and store.row(2).sum() == 0

    def test_adopted_processor_writes_through(self):
        sim = Simulator(config("gzip"))
        sim.prepare()
        proc = sim.processor
        store = RunAxisStore(2, len(proc.int_alus),
                             len(proc.fp_adders), proc.regfile.n_copies)
        before = proc.activity_snapshot()
        proc.adopt_run_axis(store, 1)
        assert proc.activity_snapshot() == before
        assert proc._int_bank.ops.base is store.data
        assert store.row(0).sum() == 0  # other rows untouched


def divergence_grid(**overrides):
    """One warm-state group whose follower can be forced to diverge:
    fine-grain + base on one benchmark (round-robin warms apart)."""
    return [config("gzip", FloorplanVariant.ALU,
                   TechniqueConfig(alus=policy), **overrides)
            for policy in (ALUPolicy.FINE_GRAIN, ALUPolicy.BASE)]


def install_gating_schedule(monkeypatch, schedule):
    """Inject a ``{(boundary_now, run_pos): off_flag}`` gating schedule
    into BOTH execution paths: the batched boundary hook (after each
    class's sampling + DTM, exactly where real DTM divergence appears)
    and ``Simulator._on_sample`` for solo runs whose ``_sched_pos``
    attribute is set.  Toggling the last FP adder's turnoff flag is a
    pure gating change on an int-heavy benchmark, so diverged runs can
    genuinely re-converge."""

    def apply(proc, pos):
        flag = schedule.get((proc.now, pos))
        if flag is not None and proc.fp_adders[-1].busy != flag:
            proc.fp_adders[-1].busy = flag
            proc._busy_count[0] += 1 if flag else -1

    orig_boundary = batch_mod._sample_boundary

    def boundary(sims, class_runs):
        orig_boundary(sims, class_runs)
        for run in class_runs:
            apply(run.proc, run.index)

    monkeypatch.setattr(batch_mod, "_sample_boundary", boundary)
    orig_sample = Simulator._on_sample

    def on_sample(self, processor):
        orig_sample(self, processor)
        pos = getattr(self, "_sched_pos", None)
        if pos is not None:
            apply(processor, pos)

    monkeypatch.setattr(Simulator, "_on_sample", on_sample)


def solo_results(configs):
    """Per-run reference executions with the schedule applied."""
    results = []
    for pos, cfg in enumerate(configs):
        sim = Simulator(cfg)
        sim._sched_pos = pos
        results.append(sim.run())
    return results


def assert_outcomes_match(outcomes, results):
    assert len(outcomes) == len(results)
    for outcome, result in zip(outcomes, results):
        assert (dataclasses.asdict(outcome.result)
                == dataclasses.asdict(result))


class TestDivergenceMerging:
    """Forced divergence: fork → re-convergence merge → re-fork must
    be bit-identical to solo execution, with honest stats."""

    # Boundaries sit at multiples of the 250-cycle sensor interval;
    # warm-up ends at 1000 (or mid-interval at 1117), so 1250 is the
    # first measured boundary.  Run 1 (base) diverges at 1250, merges
    # back at 1500, re-diverges at 2000, re-merges at 2250.
    SCHEDULE = {(1250, 1): True, (1500, 1): False,
                (2000, 1): True, (2250, 1): False}

    @pytest.mark.parametrize("warmup", [1_000, 1_117])
    def test_fork_merge_refork_identity(self, monkeypatch, warmup):
        """Full cycle incl. a mid-interval warm restore: the follower
        forks off, folds back in, and forks again, and every run stays
        asdict-identical to running alone."""
        configs = divergence_grid(warmup_cycles=warmup)
        install_gating_schedule(monkeypatch, self.SCHEDULE)
        stats = BatchStats()
        outcomes = run_group(configs, stats=stats)
        assert stats.fork_count == 2
        assert stats.merge_count == 2
        assert set(stats.class_occupancy) >= {1, 2}
        assert_outcomes_match(outcomes, solo_results(configs))

    def test_merge_env_opt_out(self, monkeypatch):
        """REPRO_BATCH_MERGE=0: forks still happen, merges never, and
        identity is unaffected."""
        monkeypatch.setenv("REPRO_BATCH_MERGE", "0")
        configs = divergence_grid()
        install_gating_schedule(monkeypatch, self.SCHEDULE)
        stats = BatchStats()
        outcomes = run_group(configs, stats=stats)
        assert stats.fork_count >= 1
        assert stats.merge_count == 0
        assert_outcomes_match(outcomes, solo_results(configs))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_divergence_schedules(self, monkeypatch, seed):
        """Random gating-divergence schedules across seeds: whatever
        fork/merge pattern falls out, results match the per-run
        reference bit for bit."""
        rng = random.Random(seed)
        schedule = {}
        state = {0: False, 1: False}
        for now in range(1_250, 3_500, 250):
            for pos in (0, 1):
                if rng.random() < 0.4:
                    state[pos] = not state[pos]
                    schedule[(now, pos)] = state[pos]
        configs = divergence_grid()
        install_gating_schedule(monkeypatch, schedule)
        stats = BatchStats()
        outcomes = run_group(configs, stats=stats)
        assert_outcomes_match(outcomes, solo_results(configs))

    def test_schedule_matches_reference_loop(self, monkeypatch):
        """The same forced fork/merge cycle holds against the
        REPRO_KERNEL=0 per-cycle reference loop."""
        configs = divergence_grid()
        install_gating_schedule(monkeypatch, self.SCHEDULE)
        outcomes = run_group(configs, stats=BatchStats())
        monkeypatch.setenv("REPRO_KERNEL", "0")
        assert_outcomes_match(outcomes, solo_results(configs))

    def test_engine_surfaces_divergence_stats(self, monkeypatch):
        """EngineStats carries fork/merge counts and per-boundary
        execution-class occupancy up from the batched groups."""
        configs = divergence_grid()
        install_gating_schedule(monkeypatch, self.SCHEDULE)
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False)
        engine.run_many(configs)
        stats = engine.stats
        assert stats.fork_count == 2
        assert stats.merge_count == 2
        assert stats.batch_class_occupancy
        assert sum(stats.batch_class_occupancy.values()) > 0


class TestSharedMemoryWaves:
    """Dispatcher-backed parallel waves: warm offload of singleton
    classes, live mid-measurement handoff, and the shared-memory
    counter store — all bit-identical to serial execution."""

    def toggling_group(self):
        return [config("gzip", FloorplanVariant.ISSUE_QUEUE,
                       TechniqueConfig(issue_queue=policy))
                for policy in (IssueQueuePolicy.BASE,
                               IssueQueuePolicy.ACTIVITY_TOGGLING)]

    def test_shm_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_SHM", raising=False)
        assert batch_shm_enabled() is True

    def test_shm_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SHM", "0")
        assert batch_shm_enabled() is False

    def test_warm_offload_identity(self):
        """A pipeline-reading follower ships to the pool whole and
        comes back identical to running it locally."""
        configs = self.toggling_group()
        stats = BatchStats()
        dispatcher = BatchDispatcher(jobs=2)
        try:
            outcomes = run_group(configs, stats=stats,
                                 dispatcher=dispatcher)
        finally:
            dispatcher.shutdown()
        assert stats.offloaded_runs == 1
        assert_outcomes_match(outcomes,
                              [Simulator(cfg).run() for cfg in configs])

    def test_live_offload_identity(self, monkeypatch):
        """A forked singleton that stays diverged is handed off
        mid-measurement from its live state; the pool worker finishes
        it bit-identically."""
        monkeypatch.setenv("REPRO_BATCH_MERGE", "0")
        schedule = {(1_250, 1): True}  # diverge once, never return
        install_gating_schedule(monkeypatch, schedule)
        configs = divergence_grid()
        stats = BatchStats()
        dispatcher = BatchDispatcher(jobs=2)
        try:
            outcomes = run_group(configs, stats=stats,
                                 dispatcher=dispatcher)
        finally:
            dispatcher.shutdown()
        assert stats.fork_count == 1
        assert stats.offloaded_runs == 1
        assert_outcomes_match(outcomes, solo_results(configs))

    def test_shm_disabled_dispatch_identity(self, monkeypatch):
        """REPRO_BATCH_SHM=0 keeps the store private: workers receive
        no share spec and still return identical results."""
        monkeypatch.setenv("REPRO_BATCH_SHM", "0")
        configs = self.toggling_group()
        stats = BatchStats()
        dispatcher = BatchDispatcher(jobs=2)
        try:
            outcomes = run_group(configs, stats=stats,
                                 dispatcher=dispatcher)
        finally:
            dispatcher.shutdown()
        assert stats.offloaded_runs == 1
        assert_outcomes_match(outcomes,
                              [Simulator(cfg).run() for cfg in configs])

    def test_engine_pool_waves_match_serial(self, monkeypatch):
        """The whole engine path at jobs=2 (dispatcher, shared store,
        warm offloads) equals the jobs=1 batched-serial grid.  BASE
        leads each group so the pipeline-reading follower actually
        ships to the pool."""
        configs = [config(bench, FloorplanVariant.ISSUE_QUEUE,
                          TechniqueConfig(issue_queue=policy))
                   for bench in ("gzip", "mesa")
                   for policy in (IssueQueuePolicy.BASE,
                                  IssueQueuePolicy.ACTIVITY_TOGGLING)]
        parallel, par_stats = run_grid(monkeypatch, configs, jobs=2)
        serial, _ = run_grid(monkeypatch, configs, jobs=1)
        assert_all_identical(parallel, serial)
        assert par_stats.offloaded_runs >= 1


class TestThroughput:
    def test_grid_throughput_floor(self, monkeypatch):
        """Acceptance: the batched fig-8 grid sustains >= 30k grid
        cycles/s (sum of all runs' measured cycles over the wall
        clock), matching the single-run floor while carrying four
        runs."""
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_KERNEL", "1")
        configs = fig8_grid(max_cycles=20_000, warmup_cycles=2_000)
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False)
        engine.run_many(configs)  # warm interpreter/caches
        walls = []
        for _ in range(2):
            gc.collect()
            fresh = ExperimentEngine(jobs=1, use_cache=False,
                                     use_checkpoints=False)
            start = time.perf_counter()
            results = fresh.run_many(configs)
            walls.append(time.perf_counter() - start)
        total_cycles = sum(r.cycles for r in results)
        best = total_cycles / min(walls)
        assert best >= 30_000, (
            f"grid throughput regressed: {best:,.0f} grid cycles/s")
