"""Tests for branch predictors."""

import pytest

from repro.pipeline.branch import GSharePredictor, TracePredictor
from repro.pipeline.isa import MicroOp, OpClass


def branch(pc, taken=True, mispredicted=False):
    return MicroOp(0, OpClass.BRANCH, src1=1, pc=pc, taken=taken,
                   mispredicted=mispredicted)


class TestGShare:
    def test_learns_always_taken(self):
        predictor = GSharePredictor(history_bits=8)
        for _ in range(50):
            predictor.mispredicted(branch(100, taken=True), taken=True)
        wrong = sum(predictor.mispredicted(branch(100, True), True)
                    for _ in range(50))
        assert wrong == 0

    def test_learns_alternating_pattern(self):
        predictor = GSharePredictor(history_bits=8)
        outcomes = [True, False] * 100
        wrongs = [predictor.mispredicted(branch(64, t), t)
                  for t in outcomes]
        # After warm-up the global history disambiguates the pattern.
        assert sum(wrongs[100:]) == 0

    def test_stats_accumulate(self):
        predictor = GSharePredictor()
        for i in range(10):
            predictor.mispredicted(branch(i * 4, True), True)
        assert predictor.stats.branches == 10

    def test_history_bits_validated(self):
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)


class TestTracePredictor:
    def test_passes_through_stamp(self):
        predictor = TracePredictor()
        assert predictor.mispredicted(
            branch(0, mispredicted=True), taken=True) is True
        assert predictor.mispredicted(
            branch(0, mispredicted=False), taken=True) is False

    def test_rejects_non_branch(self):
        predictor = TracePredictor()
        with pytest.raises(ValueError):
            predictor.mispredicted(MicroOp(0, OpClass.INT_ALU, dst=1),
                                   taken=False)

    def test_rate(self):
        predictor = TracePredictor()
        predictor.mispredicted(branch(0, mispredicted=True), True)
        predictor.mispredicted(branch(0, mispredicted=False), True)
        assert predictor.stats.mispredict_rate == pytest.approx(0.5)
