"""Kernel-vs-reference bit-identity and macro-step semantics.

The macro-stepped kernel (:mod:`repro.pipeline.kernel`) must be a
perfect stand-in for the reference per-cycle loop: every counter,
metric, timeline, and energy figure of a :class:`SimulationResult`
identical, across the full technique × floorplan matrix and with the
sanitizer and tracer both off and on.  ``REPRO_KERNEL=0`` selects the
reference loop; the default runs the kernel.
"""

import dataclasses
import gc
import time

import pytest

from repro.core.mapping import MappingKind
from repro.core.policies import (ALL_TECHNIQUES, BASELINE, ALUPolicy,
                                 IssueQueuePolicy, RegFilePolicy,
                                 TechniqueConfig)
from repro.pipeline.kernel import kernel_enabled
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant


def small_config(**overrides):
    base = dict(benchmark="gzip", max_cycles=2_500, warmup_cycles=1_000)
    base.update(overrides)
    return SimulationConfig(**base)


def run_pair(monkeypatch, config):
    """Run ``config`` through the reference loop and the kernel."""
    monkeypatch.setenv("REPRO_KERNEL", "0")
    reference = Simulator(config).run()
    monkeypatch.setenv("REPRO_KERNEL", "1")
    kernel = Simulator(config).run()
    return reference, kernel


def assert_identical(reference, kernel):
    assert (dataclasses.asdict(reference)
            == dataclasses.asdict(kernel))


class TestKernelEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_enabled() is True

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        assert kernel_enabled() is False

    def test_env_one_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "1")
        assert kernel_enabled() is True


#: Figure 6: issue-queue study.  Figure 7: ALU study.  Figure 8: the
#: four register-file configurations.  Each runs on its own figure's
#: constrained floorplan and on the BASE floorplan.
TECHNIQUE_MATRIX = {
    "fig6-base": (TechniqueConfig(issue_queue=IssueQueuePolicy.BASE),
                  FloorplanVariant.ISSUE_QUEUE),
    "fig6-toggling": (
        TechniqueConfig(issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
        FloorplanVariant.ISSUE_QUEUE),
    "fig7-base": (TechniqueConfig(alus=ALUPolicy.BASE),
                  FloorplanVariant.ALU),
    "fig7-fine-grain": (TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
                        FloorplanVariant.ALU),
    "fig7-round-robin": (TechniqueConfig(alus=ALUPolicy.ROUND_ROBIN),
                         FloorplanVariant.ALU),
    "fig8-fg-balanced": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.BALANCED, fine_grain_turnoff=True)),
        FloorplanVariant.REGFILE),
    "fig8-fg-priority": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.PRIORITY, fine_grain_turnoff=True)),
        FloorplanVariant.REGFILE),
    "fig8-balanced-only": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.BALANCED, fine_grain_turnoff=False)),
        FloorplanVariant.REGFILE),
    "fig8-priority-only": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.PRIORITY, fine_grain_turnoff=False)),
        FloorplanVariant.REGFILE),
}


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(TECHNIQUE_MATRIX))
    def test_technique_on_figure_floorplan(self, monkeypatch, name):
        techniques, variant = TECHNIQUE_MATRIX[name]
        config = small_config(techniques=techniques, variant=variant)
        assert_identical(*run_pair(monkeypatch, config))

    @pytest.mark.parametrize("name", sorted(TECHNIQUE_MATRIX))
    def test_technique_on_base_floorplan(self, monkeypatch, name):
        techniques, _ = TECHNIQUE_MATRIX[name]
        config = small_config(techniques=techniques,
                              variant=FloorplanVariant.BASE)
        assert_identical(*run_pair(monkeypatch, config))

    @pytest.mark.parametrize("sanitize", [False, True],
                             ids=["plain", "sanitized"])
    @pytest.mark.parametrize("trace", [False, True],
                             ids=["untraced", "traced"])
    def test_sanitize_and_trace_combinations(self, monkeypatch,
                                             sanitize, trace):
        config = small_config(techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.ALU,
                              sanitize=sanitize, trace_events=trace)
        assert_identical(*run_pair(monkeypatch, config))

    @pytest.mark.parametrize("bench", ["mesa", "perlbmk"])
    def test_other_benchmarks(self, monkeypatch, bench):
        config = small_config(benchmark=bench, techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.ISSUE_QUEUE)
        assert_identical(*run_pair(monkeypatch, config))

    def test_stall_heavy_run(self, monkeypatch):
        """A hot constrained floorplan forces global stalls, covering
        the kernel's bulk stall skip."""
        config = small_config(benchmark="perlbmk", techniques=BASELINE,
                              variant=FloorplanVariant.ALU,
                              max_cycles=6_000, warmup_cycles=2_000)
        reference, kernel = run_pair(monkeypatch, config)
        assert_identical(reference, kernel)

    def test_longer_run_all_techniques(self, monkeypatch):
        config = small_config(techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.ALU,
                              max_cycles=8_000, warmup_cycles=2_000)
        assert_identical(*run_pair(monkeypatch, config))


class TestSamplingAlignment:
    """Sampling boundaries are absolute cycle numbers, not offsets from
    wherever the measured loop happened to start."""

    def _sample_cycles(self, sim):
        seen = []
        inner = sim._on_sample
        def spy(proc):
            seen.append(proc.now)
            inner(proc)
        sim._on_sample = spy
        return seen

    @pytest.mark.parametrize("kernel", ["0", "1"],
                             ids=["reference", "kernel"])
    def test_samples_land_on_absolute_boundaries(self, monkeypatch,
                                                 kernel):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        # A warm-up that is NOT a multiple of the sensing interval:
        # measurement starts mid-interval.
        config = small_config(warmup_cycles=1_117, max_cycles=2_000)
        sim = Simulator(config)
        interval = config.thermal.sensor_interval_cycles
        seen = self._sample_cycles(sim)
        sim.run()
        assert seen, "run produced no samples"
        assert all(cycle % interval == 0 for cycle in seen)

    @pytest.mark.parametrize("kernel", ["0", "1"],
                             ids=["reference", "kernel"])
    def test_mid_interval_restore_is_bit_identical(self, monkeypatch,
                                                   kernel):
        """Regression: restoring a checkpoint captured at a
        non-boundary cycle must resume the countdown toward the next
        *absolute* boundary, matching a fresh run exactly."""
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        config = small_config(warmup_cycles=1_117, max_cycles=2_000)
        donor = Simulator(config)
        donor.prepare()
        assert donor.processor.now % config.thermal.sensor_interval_cycles
        blob = donor.capture_warm_state()
        fresh = Simulator(config).run()
        restored_sim = Simulator.from_checkpoint(config, blob)
        seen = self._sample_cycles(restored_sim)
        restored = restored_sim.run()
        assert dataclasses.asdict(fresh) == dataclasses.asdict(restored)
        interval = config.thermal.sensor_interval_cycles
        assert all(cycle % interval == 0 for cycle in seen)

    def test_restore_matches_across_paths(self, monkeypatch):
        """Fresh-reference vs restored-kernel: the strictest cross
        pairing of checkpointing and kernelization."""
        config = small_config(warmup_cycles=1_117, max_cycles=2_000)
        monkeypatch.setenv("REPRO_KERNEL", "0")
        donor = Simulator(config)
        donor.prepare()
        blob = donor.capture_warm_state()
        fresh_reference = Simulator(config).run()
        monkeypatch.setenv("REPRO_KERNEL", "1")
        restored_kernel = Simulator.from_checkpoint(config, blob).run()
        assert (dataclasses.asdict(fresh_reference)
                == dataclasses.asdict(restored_kernel))


class TestThroughput:
    def test_single_run_throughput_floor(self, monkeypatch):
        """Acceptance: >= 30k cycles/s on the gzip 20k-cycle benchmark
        (2x the recorded pre-kernel baseline of 15,283)."""
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        config = SimulationConfig(
            benchmark="gzip",
            variant=FloorplanVariant.ALU,
            techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
            max_cycles=20_000)
        Simulator(config).run()  # warm interpreter/caches
        walls = []
        for _ in range(3):
            # Collect the previous run's garbage outside the timed
            # window (the run itself pauses the GC); best-of-3 rejects
            # scheduler noise on shared single-core machines.
            gc.collect()
            start = time.perf_counter()
            Simulator(config).run()
            walls.append(time.perf_counter() - start)
        best = config.max_cycles / min(walls)
        assert best >= 30_000, (
            f"single-run throughput regressed: {best:,.0f} cycles/s")
