"""Tests for select trees and the serialized select network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.issue_queue import CompactingIssueQueue, QueueMode
from repro.pipeline.select import SelectNetwork, SelectTree


def ready_op(seq):
    return MicroOp(seq, OpClass.INT_ALU, dst=1, src1=2, src2=3)


def queue_with_ready(n, positions, toggle=False):
    """A queue with ready entries at the given *logical* positions."""
    q = CompactingIssueQueue(n, 2, replay_window=1)
    if toggle:
        q.toggle()
    top = max(positions) + 1 if positions else 0
    for logical in range(top):
        waiting = set() if logical in positions else {999}
        q.insert(ready_op(logical), logical, waiting)
    return q


class TestSelectTree:
    def test_grants_lowest_physical_in_normal_mode(self):
        tree = SelectTree(16)
        requests = [False] * 16
        requests[5] = requests[9] = True
        assert tree.select(requests, QueueMode.NORMAL) == 5

    def test_toggled_mode_prefers_upper_half(self):
        tree = SelectTree(16)
        requests = [False] * 16
        requests[3] = requests[10] = True
        assert tree.select(requests, QueueMode.TOGGLED) == 10

    def test_no_request_no_grant(self):
        tree = SelectTree(16)
        assert tree.select([False] * 16, QueueMode.NORMAL) is None

    def test_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            SelectTree(15)

    def test_rejects_wrong_vector_length(self):
        tree = SelectTree(16)
        with pytest.raises(ValueError):
            tree.select([True] * 8, QueueMode.NORMAL)


class TestSelectNetwork:
    def test_serialized_grants_in_priority_order(self):
        q = queue_with_ready(16, {0, 1, 2, 3})
        net = SelectNetwork(16, 3)
        grants = net.arbitrate(q, [False] * 3)
        assert grants == [0, 1, 2]

    def test_busy_tree_skipped(self):
        q = queue_with_ready(16, {0, 1})
        net = SelectNetwork(16, 3)
        grants = net.arbitrate(q, [True, False, False])
        assert grants == [None, 0, 1]

    def test_limit_caps_grants(self):
        q = queue_with_ready(16, {0, 1, 2, 3, 4})
        net = SelectNetwork(16, 6)
        grants = net.arbitrate(q, [False] * 6, limit=2)
        assert sum(g is not None for g in grants) == 2

    def test_eligibility_filter(self):
        q = queue_with_ready(16, {0, 1, 2})
        net = SelectNetwork(16, 2)
        grants = net.arbitrate(q, [False] * 2, eligible=lambda p: p != 0)
        assert grants == [1, 2]

    def test_round_robin_rotates_priority(self):
        net = SelectNetwork(16, 4, round_robin=True)
        first_trees = []
        for _ in range(4):
            q = queue_with_ready(16, {0})
            grants = net.arbitrate(q, [False] * 4)
            first_trees.append(grants.index(0))
        assert first_trees == [0, 1, 2, 3]

    def test_static_priority_concentrates_grants(self):
        net = SelectNetwork(16, 4)
        for _ in range(10):
            q = queue_with_ready(16, {0})
            net.arbitrate(q, [False] * 4)
        assert net.counters.grants_per_tree == [10, 0, 0, 0]

    def test_round_robin_balances_grants(self):
        net = SelectNetwork(16, 4, round_robin=True)
        for _ in range(12):
            q = queue_with_ready(16, {0})
            net.arbitrate(q, [False] * 4)
        assert net.counters.grants_per_tree == [3, 3, 3, 3]

    def test_wrong_busy_length_rejected(self):
        q = queue_with_ready(16, {0})
        net = SelectNetwork(16, 4)
        with pytest.raises(ValueError):
            net.arbitrate(q, [False] * 3)


# ---------------------------------------------------------------------------
# equivalence of the fast path and the per-tree hardware walk
# ---------------------------------------------------------------------------

@given(positions=st.sets(st.integers(min_value=0, max_value=15),
                         max_size=16),
       toggled=st.booleans(),
       busy=st.lists(st.booleans(), min_size=4, max_size=4))
@settings(max_examples=150, deadline=None)
def test_fast_path_matches_hardware_trees(positions, toggled, busy):
    q1 = queue_with_ready(16, positions, toggle=toggled)
    q2 = queue_with_ready(16, positions, toggle=toggled)
    fast = SelectNetwork(16, 4)
    slow = SelectNetwork(16, 4)
    assert fast.arbitrate(q1, busy) == slow.arbitrate_with_trees(q2, busy)


@given(positions=st.sets(st.integers(min_value=0, max_value=15),
                         max_size=16),
       toggled=st.booleans())
@settings(max_examples=100, deadline=None)
def test_no_double_grants(positions, toggled):
    q = queue_with_ready(16, positions, toggle=toggled)
    net = SelectNetwork(16, 6)
    grants = [g for g in net.arbitrate(q, [False] * 6) if g is not None]
    assert len(grants) == len(set(grants))
    assert len(grants) == min(6, len(positions))
