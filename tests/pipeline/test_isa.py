"""Tests for the micro-op ISA and the tiny assembly interpreter."""

import pytest

from repro.pipeline.isa import (DEFAULT_LATENCY, AssemblyError, MicroOp,
                                OpClass, Program)


class TestOpClass:
    def test_fp_classes(self):
        assert OpClass.FP_ADD.is_fp
        assert OpClass.FP_MUL.is_fp
        assert not OpClass.INT_ALU.is_fp
        assert not OpClass.LOAD.is_fp

    def test_mem_classes(self):
        assert OpClass.LOAD.is_mem
        assert OpClass.STORE.is_mem
        assert not OpClass.BRANCH.is_mem

    def test_every_class_has_latency(self):
        for opclass in OpClass:
            assert DEFAULT_LATENCY[opclass] >= 1


class TestMicroOp:
    def test_sources_skips_absent(self):
        op = MicroOp(0, OpClass.INT_ALU, dst=3, src1=1)
        assert op.sources() == (1,)

    def test_sources_both(self):
        op = MicroOp(0, OpClass.INT_ALU, dst=3, src1=1, src2=2)
        assert op.sources() == (1, 2)

    def test_sources_empty(self):
        op = MicroOp(0, OpClass.NOP)
        assert op.sources() == ()

    def test_latency_from_class(self):
        op = MicroOp(0, OpClass.INT_MUL, dst=1, src1=2, src2=3)
        assert op.latency == DEFAULT_LATENCY[OpClass.INT_MUL]


class TestProgramAssembly:
    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            Program("")

    def test_comment_only_rejected(self):
        with pytest.raises(AssemblyError):
            Program("# nothing here\n   # still nothing")

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            Program("frobnicate r1, r2, r3")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            Program("a: nop\na: nop")

    def test_bad_register(self):
        # Operands are decoded when the instruction executes.
        with pytest.raises(AssemblyError):
            list(Program("add r1, r2, x3\nhalt").run())

    def test_register_out_of_range(self):
        with pytest.raises(AssemblyError, match="out of range"):
            list(Program("add r31, r0, r32").run())

    def test_labels_resolve(self):
        program = Program("start: nop\nloop: jmp loop")
        assert program.labels == {"start": 0, "loop": 1}


class TestProgramExecution:
    def test_simple_add(self):
        regs = {1: 5, 2: 7}
        program = Program("add r3, r1, r2\nhalt")
        trace = list(program.run(registers=regs))
        assert regs[3] == 12
        assert [op.opclass for op in trace] == [OpClass.INT_ALU]

    def test_r0_is_hardwired_zero(self):
        regs = {}
        program = Program("addi r0, r0, 99\nadd r1, r0, r0\nhalt")
        list(program.run(registers=regs))
        assert regs.get(1, 0) == 0

    def test_loop_sums_memory(self):
        # Sum mem[0..4*8) into r5.
        source = """
            addi r1, r0, 0       # pointer
            addi r2, r0, 4       # count
        loop:
            ld   r3, r1, 0
            add  r5, r5, r3
            addi r1, r1, 8
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
        """
        memory = {0: 10, 8: 20, 16: 30, 24: 40}
        regs = {}
        trace = list(Program(source).run(registers=regs, memory=memory))
        assert regs[5] == 100
        branches = [op for op in trace if op.opclass is OpClass.BRANCH]
        assert [b.taken for b in branches] == [True, True, True, False]

    def test_store_writes_memory(self):
        memory = {}
        regs = {1: 42, 2: 64}
        list(Program("st r1, r2, 8\nhalt").run(registers=regs,
                                               memory=memory))
        assert memory[72] == 42

    def test_load_address_recorded(self):
        regs = {2: 100}
        trace = list(Program("ld r1, r2, 4\nhalt").run(registers=regs))
        assert trace[0].mem_addr == 104

    def test_mul(self):
        regs = {1: 6, 2: 7}
        list(Program("mul r3, r1, r2\nhalt").run(registers=regs))
        assert regs[3] == 42

    def test_fp_ops_emit_fp_classes(self):
        trace = list(Program("fadd f1, f2, f3\nfmul f4, f1, f1\nhalt").run())
        assert [op.opclass for op in trace] == [OpClass.FP_ADD,
                                                OpClass.FP_MUL]

    def test_jmp_is_taken_branch(self):
        trace = list(Program("jmp end\nnop\nend: halt").run())
        assert trace[0].opclass is OpClass.BRANCH
        assert trace[0].taken
        assert len(trace) == 1  # the skipped nop never executes

    def test_runaway_guard(self):
        program = Program("loop: jmp loop")
        with pytest.raises(RuntimeError, match="exceeded"):
            list(program.run(max_ops=100))

    def test_sequence_numbers_monotone(self):
        source = "addi r1, r0, 1\naddi r1, r1, 1\naddi r1, r1, 1\nhalt"
        trace = list(Program(source).run())
        assert [op.seq for op in trace] == [0, 1, 2]

    def test_slt(self):
        regs = {1: 3, 2: 9}
        list(Program("slt r3, r1, r2\nslt r4, r2, r1\nhalt")
             .run(registers=regs))
        assert regs[3] == 1
        assert regs[4] == 0

    def test_logical_ops(self):
        regs = {1: 0b1100, 2: 0b1010}
        list(Program("and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nhalt")
             .run(registers=regs))
        assert regs[3] == 0b1000
        assert regs[4] == 0b1110
        assert regs[5] == 0b0110
