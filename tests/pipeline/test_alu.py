"""Tests for functional units."""

import pytest

from repro.pipeline.alu import (FP_ADD_OPCLASSES, INT_OPCLASSES,
                                FunctionalUnit, make_fp_adders,
                                make_fp_multiplier, make_int_alus)
from repro.pipeline.isa import MicroOp, OpClass


def alu():
    return FunctionalUnit(0, INT_OPCLASSES, "IntExec0")


class TestCapabilities:
    def test_int_alu_accepts_int_classes(self):
        unit = alu()
        for opclass in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.LOAD,
                        OpClass.STORE, OpClass.BRANCH):
            assert unit.can_execute(opclass)

    def test_int_alu_rejects_fp(self):
        assert not alu().can_execute(OpClass.FP_ADD)

    def test_start_rejects_wrong_class(self):
        with pytest.raises(ValueError):
            alu().start(MicroOp(0, OpClass.FP_ADD, dst=1), 0, now=1)


class TestTiming:
    def test_single_cycle_op_finishes_next_cycle(self):
        unit = alu()
        finish = unit.start(MicroOp(0, OpClass.INT_ALU, dst=1), 0, now=5)
        assert finish == 6
        assert unit.drain(5) == []
        done = unit.drain(6)
        assert len(done) == 1
        assert done[0].op.seq == 0

    def test_single_cycle_ops_are_pipelined(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_ALU, dst=1), 0, now=1)
        assert unit.can_accept(2)
        unit.start(MicroOp(1, OpClass.INT_ALU, dst=2), 1, now=2)
        assert unit.in_flight() == 2

    def test_multiplier_occupies_unit(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_MUL, dst=1, src1=2, src2=3),
                   0, now=1)
        assert not unit.can_accept(2)
        assert not unit.can_accept(3)
        assert unit.can_accept(4)

    def test_start_while_occupied_raises(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_MUL, dst=1, src1=2, src2=3),
                   0, now=1)
        with pytest.raises(RuntimeError):
            unit.start(MicroOp(1, OpClass.INT_MUL, dst=4, src1=5, src2=6),
                       1, now=2)

    def test_load_extra_latency(self):
        unit = alu()
        finish = unit.start(MicroOp(0, OpClass.LOAD, dst=1, src1=2,
                                    mem_addr=64), 0, now=1,
                            extra_latency=14)
        assert finish == 16

    def test_drain_leaves_unfinished_work(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_ALU, dst=1), 0, now=1)
        unit.start(MicroOp(1, OpClass.LOAD, dst=2, src1=3, mem_addr=0),
                   1, now=1, extra_latency=10)
        assert len(unit.drain(2)) == 1
        assert unit.in_flight() == 1

    def test_ops_counted(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_ALU, dst=1), 0, now=1)
        assert unit.counters.ops == 1


class TestBusyFlag:
    def test_set_busy_counts_turnoffs(self):
        unit = alu()
        unit.set_busy(True)
        unit.set_busy(True)  # idempotent: still one event
        unit.set_busy(False)
        unit.set_busy(True)
        assert unit.counters.turnoff_events == 2

    def test_busy_does_not_block_drain(self):
        unit = alu()
        unit.start(MicroOp(0, OpClass.INT_ALU, dst=1), 0, now=1)
        unit.set_busy(True)
        assert len(unit.drain(2)) == 1


class TestFactories:
    def test_int_alus_named_by_priority(self):
        units = make_int_alus(6)
        assert [u.name for u in units] == [f"IntExec{i}" for i in range(6)]

    def test_fp_adders(self):
        units = make_fp_adders(4)
        assert all(u.opclasses == FP_ADD_OPCLASSES for u in units)

    def test_fp_multiplier(self):
        unit = make_fp_multiplier()
        assert unit.can_execute(OpClass.FP_MUL)
        assert not unit.can_execute(OpClass.FP_ADD)
