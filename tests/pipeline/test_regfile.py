"""Tests for rename and the replicated register file."""

import pytest

from repro.core.mapping import (balanced_mapping,
                                completely_balanced_mapping,
                                priority_mapping)
from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.regfile import (RegisterFileBank, RenameError,
                                    RenameTable)


def int_op(seq, dst=None, src1=None, src2=None):
    return MicroOp(seq, OpClass.INT_ALU, dst=dst, src1=src1, src2=src2)


class TestRenameTable:
    def test_initial_mappings_ready(self):
        table = RenameTable(8, 32)
        for arch in range(8):
            assert table.is_ready(table.lookup(arch))

    def test_rename_allocates_fresh_tag(self):
        table = RenameTable(8, 32)
        renamed = table.rename(int_op(0, dst=1, src1=2))
        assert renamed.dst_tag not in range(8)
        assert not table.is_ready(renamed.dst_tag)
        assert table.lookup(1) == renamed.dst_tag

    def test_sources_resolve_through_map(self):
        table = RenameTable(8, 32)
        first = table.rename(int_op(0, dst=1))
        second = table.rename(int_op(1, dst=3, src1=1))
        assert second.src_tags == (first.dst_tag,)

    def test_freed_tag_is_previous_mapping(self):
        table = RenameTable(8, 32)
        old = table.lookup(1)
        renamed = table.rename(int_op(0, dst=1))
        assert renamed.freed_tag == old

    def test_release_recycles(self):
        table = RenameTable(8, 32)
        renamed = table.rename(int_op(0, dst=1))
        free_before = table.free_count()
        table.release(renamed.freed_tag)
        assert table.free_count() == free_before + 1

    def test_release_none_is_noop(self):
        table = RenameTable(8, 32)
        table.release(None)

    def test_double_release_rejected(self):
        table = RenameTable(8, 32)
        renamed = table.rename(int_op(0, dst=1))
        table.release(renamed.freed_tag)
        with pytest.raises(ValueError):
            table.release(renamed.freed_tag)

    def test_exhaustion_raises(self):
        table = RenameTable(4, 8)
        for i in range(4):
            table.rename(int_op(i, dst=1))
        with pytest.raises(RenameError):
            table.rename(int_op(9, dst=1))

    def test_too_small_physical_file_rejected(self):
        with pytest.raises(ValueError):
            RenameTable(8, 8)

    def test_fp_offset_separates_namespaces(self):
        table = RenameTable(16, 64)
        fp_op = MicroOp(0, OpClass.FP_ADD, dst=1, src1=1, src2=2)
        renamed = table.rename(fp_op, fp_offset=8)
        assert table.lookup(8 + 1) == renamed.dst_tag
        # Integer r1 mapping untouched.
        assert table.lookup(1) == 1

    def test_waw_chain_each_gets_new_tag(self):
        table = RenameTable(8, 32)
        tags = {table.rename(int_op(i, dst=1)).dst_tag for i in range(4)}
        assert len(tags) == 4


class TestRegisterFileBank:
    def test_reads_charged_to_mapped_copy_priority(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.read_for_issue(alu=0, n_operands=2)
        bank.read_for_issue(alu=5, n_operands=2)
        assert bank.counters.reads == [2, 2]

    def test_reads_charged_to_mapped_copy_balanced(self):
        bank = RegisterFileBank(balanced_mapping(6, 2))
        bank.read_for_issue(alu=0, n_operands=2)
        bank.read_for_issue(alu=1, n_operands=2)
        assert bank.counters.reads == [2, 2]

    def test_completely_balanced_splits_operands(self):
        bank = RegisterFileBank(completely_balanced_mapping(6, 2))
        bank.read_for_issue(alu=0, n_operands=2)
        assert bank.counters.reads == [1, 1]

    def test_single_operand_uses_first_port(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.read_for_issue(alu=3, n_operands=1)
        assert bank.counters.reads == [0, 1]

    def test_operand_count_validated(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        with pytest.raises(ValueError):
            bank.read_for_issue(alu=0, n_operands=3)

    def test_writes_go_to_all_copies(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.write()
        assert bank.counters.writes == [1, 1]

    def test_writes_continue_to_turned_off_copy(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.turn_off(0)
        bank.write()
        assert bank.counters.writes == [1, 1]

    def test_turnoff_returns_mapped_alus(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        assert bank.turn_off(0) == [0, 1, 2]
        assert bank.blocked_alus() == {0, 1, 2}

    def test_read_from_off_copy_rejected(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.turn_off(0)
        with pytest.raises(RuntimeError):
            bank.read_for_issue(alu=0, n_operands=2)

    def test_turn_on_restores_reads(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        bank.turn_off(0)
        bank.turn_on(0)
        bank.read_for_issue(alu=0, n_operands=2)
        assert bank.counters.reads[0] == 2

    def test_all_off(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        assert not bank.all_off()
        bank.turn_off(0)
        bank.turn_off(1)
        assert bank.all_off()

    def test_bad_copy_index(self):
        bank = RegisterFileBank(priority_mapping(6, 2))
        with pytest.raises(IndexError):
            bank.turn_off(5)
