"""Tests for duty-cycle throttling (the alternative temporal technique)."""

import dataclasses

import pytest

from repro.core.policies import TechniqueConfig
from repro.pipeline.config import ThermalConfig
from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.processor import Processor
from repro.sim.runner import SimulationConfig, run_simulation
from repro.thermal.floorplan import FloorplanVariant


def ops(n):
    for seq in range(n):
        yield MicroOp(seq, OpClass.INT_ALU, dst=1 + seq % 20)


class TestThrottleMechanism:
    def test_throttle_halves_throughput(self):
        fast = Processor(ops(100_000))
        slow = Processor(ops(100_000))
        slow.throttle(2_000)
        fast.run(2_000)
        slow.run(2_000)
        ratio = slow.stats.committed / fast.stats.committed
        assert 0.4 < ratio < 0.6
        assert slow.stats.throttled_cycles == pytest.approx(1_000, abs=2)

    def test_throttle_still_makes_progress(self):
        p = Processor(ops(1_000))
        p.throttle(10_000)
        p.run(10_000)
        assert p.finished

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Processor(ops(10)).throttle(-1)

    def test_config_validates_technique(self):
        with pytest.raises(ValueError):
            dataclasses.replace(ThermalConfig(),
                                temporal_technique="overclock")


class TestThrottleAsDTMFallback:
    def test_throttled_run_outperforms_stalled_run_when_hot(self):
        kwargs = dict(benchmark="perlbmk", variant=FloorplanVariant.ALU,
                      techniques=TechniqueConfig(),  # base policy
                      max_cycles=30_000, warmup_cycles=5_000)
        stall = run_simulation(SimulationConfig(**kwargs))
        throttled = run_simulation(SimulationConfig(
            thermal=dataclasses.replace(
                ThermalConfig(), temporal_technique="throttle"),
            **kwargs))
        if stall.global_stalls == 0:
            pytest.skip("chip never overheated in this short run")
        # Throttling keeps half throughput during cooling, so it should
        # not do worse than the full stall.
        assert throttled.ipc >= stall.ipc * 0.95
