"""Tests for the active list and load/store queue."""

import pytest

from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.rob import ActiveList, LoadStoreQueue, ROBEntry


def entry(seq, opclass=OpClass.INT_ALU):
    return ROBEntry(op=MicroOp(seq, opclass, dst=1), dst_tag=100 + seq,
                    freed_tag=seq)


class TestActiveList:
    def test_allocate_returns_index(self):
        rob = ActiveList(4)
        assert rob.allocate(entry(0)) == 0
        assert rob.allocate(entry(1)) == 1

    def test_full_rejected(self):
        rob = ActiveList(2)
        rob.allocate(entry(0))
        rob.allocate(entry(1))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.allocate(entry(2))

    def test_commit_ready_stops_at_incomplete(self):
        rob = ActiveList(4)
        for i in range(3):
            rob.allocate(entry(i))
        rob.mark_done(0)
        rob.mark_done(2)  # out of order completion
        ready = rob.commit_ready()
        assert [e.op.seq for e in ready] == [0]

    def test_retire_in_order(self):
        rob = ActiveList(4)
        for i in range(3):
            rob.allocate(entry(i))
        for i in range(3):
            rob.mark_done(i)
        retired = rob.retire(2)
        assert [e.op.seq for e in retired] == [0, 1]
        assert len(rob) == 1
        assert rob.retired == 2

    def test_retire_incomplete_raises(self):
        rob = ActiveList(4)
        rob.allocate(entry(0))
        with pytest.raises(RuntimeError):
            rob.retire(1)

    def test_wraps_around(self):
        rob = ActiveList(2)
        for round_trip in range(5):
            index = rob.allocate(entry(round_trip))
            rob.mark_done(index)
            rob.retire(1)
        assert len(rob) == 0
        assert rob.retired == 5

    def test_get_missing_raises(self):
        rob = ActiveList(4)
        with pytest.raises(IndexError):
            rob.get(0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ActiveList(0)


class TestLoadStoreQueue:
    def test_occupancy(self):
        lsq = LoadStoreQueue(2)
        lsq.allocate()
        assert len(lsq) == 1
        lsq.release()
        assert len(lsq) == 0

    def test_full(self):
        lsq = LoadStoreQueue(1)
        lsq.allocate()
        assert lsq.full
        with pytest.raises(RuntimeError):
            lsq.allocate()

    def test_underflow(self):
        lsq = LoadStoreQueue(1)
        with pytest.raises(RuntimeError):
            lsq.release()

    def test_needs_entry(self):
        assert LoadStoreQueue.needs_entry(
            MicroOp(0, OpClass.LOAD, dst=1, src1=2, mem_addr=0))
        assert LoadStoreQueue.needs_entry(
            MicroOp(0, OpClass.STORE, src1=1, src2=2, mem_addr=0))
        assert not LoadStoreQueue.needs_entry(
            MicroOp(0, OpClass.INT_ALU, dst=1))
