"""End-to-end tests of the out-of-order core."""

import pytest

from repro.pipeline.branch import GSharePredictor
from repro.pipeline.isa import MicroOp, OpClass, Program
from repro.pipeline.processor import Processor
from repro.workloads import workload


def chain_ops(n):
    """Each op depends on the previous one: IPC must approach 1."""
    for seq in range(n):
        yield MicroOp(seq, OpClass.INT_ALU, dst=1, src1=1, src2=1)


def independent_ops(n):
    """No dependences at all: IPC should approach the issue width."""
    for seq in range(n):
        dst = 1 + (seq % 20)
        yield MicroOp(seq, OpClass.INT_ALU, dst=dst)


def moderate_ilp_ops(n, strands=2):
    """``strands`` interleaved serial chains: sustained ILP equals the
    strand count, so the low-priority ALUs are rarely needed."""
    for seq in range(n):
        reg = 1 + (seq % strands)
        yield MicroOp(seq, OpClass.INT_ALU, dst=reg, src1=reg)


class TestTiming:
    def test_dependent_chain_ipc_near_one(self):
        p = Processor(chain_ops(2000))
        p.run(10_000)
        assert p.finished
        assert p.stats.committed == 2000
        assert 0.8 <= p.stats.ipc <= 1.05

    def test_independent_ops_reach_high_ipc(self):
        p = Processor(independent_ops(6000))
        p.run(10_000)
        assert p.finished
        assert p.stats.ipc > 3.0

    def test_program_mode_executes_correctly(self):
        source = """
            addi r1, r0, 0
            addi r2, r0, 10
        loop:
            ld   r3, r1, 0
            add  r4, r4, r3
            addi r1, r1, 8
            addi r2, r2, -1
            bne  r2, r0, loop
            st   r4, r0, 512
            halt
        """
        memory = {i * 8: i for i in range(10)}
        trace = Program(source).run(memory=memory)
        p = Processor(trace, predictor=GSharePredictor())
        p.run(50_000)
        assert p.finished
        # The timing model observed the store of the correct sum.
        assert memory[512] == sum(range(10))

    def test_static_priority_concentrates_alu_use(self):
        p = Processor(moderate_ilp_ops(6000))
        p.run(10_000)
        ops = [u.counters.ops for u in p.int_alus]
        assert ops == sorted(ops, reverse=True)
        assert ops[0] > 2 * max(1, ops[-1])

    def test_round_robin_balances_alu_use(self):
        p = Processor(independent_ops(6000), round_robin_alus=True)
        p.run(10_000)
        ops = [u.counters.ops for u in p.int_alus]
        assert max(ops) < 1.5 * min(ops)


class TestDTMHooks:
    def test_global_stall_freezes_commit(self):
        p = Processor(independent_ops(2000))
        p.run(100)
        committed = p.stats.committed
        p.global_stall(51)
        p.run(50)
        assert p.stats.committed == committed
        assert p.stats.stall_cycles == 50

    def test_alu_busy_redirects_issue(self):
        p = Processor(independent_ops(6000))
        p.set_alu_busy(0, True)
        p.run(5000)
        assert p.int_alus[0].counters.ops == 0
        assert p.int_alus[1].counters.ops > 0

    def test_regfile_copy_turnoff_blocks_its_alus(self):
        p = Processor(independent_ops(6000))
        p.turn_off_regfile_copy(0)
        p.run(3000)
        blocked = p.mapping.alus_on_copy(0)
        for alu in blocked:
            assert p.int_alus[alu].counters.ops == 0
        assert p.regfile.counters.reads[0] == 0

    def test_regfile_copy_turn_on_restores(self):
        p = Processor(independent_ops(6000))
        p.turn_off_regfile_copy(0)
        p.run(500)
        p.turn_on_regfile_copy(0)
        before = p.int_alus[0].counters.ops
        p.run(2000)
        assert p.int_alus[0].counters.ops > before

    def test_toggle_issue_queues(self):
        p = Processor(independent_ops(1000))
        p.toggle_issue_queues()
        assert p.int_iq.counters.toggles == 1
        assert p.fp_iq.counters.toggles == 1
        p.run(3000)
        assert p.finished


class TestActivitySnapshot:
    def test_counts_monotone(self):
        p = Processor(workload("gzip"))
        p.run(300)
        first = p.activity_snapshot()
        p.run(300)
        second = p.activity_snapshot()
        assert second.committed >= first.committed
        assert second.fetched >= first.fetched
        assert all(b >= a for a, b in zip(first.alu_ops, second.alu_ops))
        assert all(b >= a for a, b in zip(first.rf_reads, second.rf_reads))

    def test_snapshot_is_decoupled(self):
        p = Processor(workload("gzip"))
        p.run(300)
        snap = p.activity_snapshot()
        committed = snap.committed
        p.run(300)
        assert snap.committed == committed

    def test_synthetic_workload_runs(self):
        p = Processor(workload("mcf"))
        p.run(2000)
        assert p.stats.committed > 0


class TestBusyAccounting:
    def test_busy_cycles_counted(self):
        p = Processor(independent_ops(3000))
        p.set_alu_busy(0, True)
        p.run(100)
        assert p.int_alus[0].counters.busy_cycles > 90
        assert p.int_alus[1].counters.busy_cycles == 0
