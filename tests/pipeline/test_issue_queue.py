"""Tests for the compacting issue queue, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.issue_queue import CompactingIssueQueue, QueueMode


def op(seq):
    return MicroOp(seq, OpClass.INT_ALU, dst=1, src1=2, src2=3)


def make_queue(n=8, width=2, replay=1):
    return CompactingIssueQueue(n, width, replay_window=replay)


def drain_ticks(queue, count=4):
    for _ in range(count):
        queue.tick()


class TestConstruction:
    def test_odd_entries_rejected(self):
        with pytest.raises(ValueError):
            CompactingIssueQueue(7, 2)

    def test_tiny_rejected(self):
        with pytest.raises(ValueError):
            CompactingIssueQueue(2, 1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            CompactingIssueQueue(8, 0)


class TestPositionMapping:
    def test_normal_identity(self):
        q = make_queue(8)
        assert [q.phys(i) for i in range(8)] == list(range(8))

    def test_toggled_offset(self):
        q = make_queue(8)
        q.toggle()
        assert [q.phys(i) for i in range(8)] == [4, 5, 6, 7, 0, 1, 2, 3]

    def test_logical_inverts_phys(self):
        q = make_queue(16)
        for mode_toggles in range(2):
            for logical in range(16):
                assert q.logical(q.phys(logical)) == logical
            q.toggle()

    def test_half_of(self):
        q = make_queue(8)
        assert q.half_of(0) == 0
        assert q.half_of(3) == 0
        assert q.half_of(4) == 1
        assert q.half_of(7) == 1

    def test_bounds_checked(self):
        q = make_queue(8)
        with pytest.raises(IndexError):
            q.phys(8)
        with pytest.raises(IndexError):
            q.logical(-9)


class TestInsertAndOccupancy:
    def test_insert_fills_in_order(self):
        q = make_queue(8)
        for i in range(3):
            q.insert(op(i), i, set())
        positions = [(l, e.op.seq) for l, e in q.entries()]
        assert positions == [(0, 0), (1, 1), (2, 2)]

    def test_capacity(self):
        q = make_queue(8)
        for i in range(8):
            assert q.can_insert()
            q.insert(op(i), i, set())
        assert not q.can_insert()
        with pytest.raises(RuntimeError):
            q.insert(op(9), 9, set())

    def test_multi_insert_capacity_check(self):
        q = make_queue(8)
        for i in range(6):
            q.insert(op(i), i, set())
        assert q.can_insert(2)
        assert not q.can_insert(3)

    def test_len_counts_entries(self):
        q = make_queue(8)
        q.insert(op(0), 0, set())
        q.insert(op(1), 1, set())
        assert len(q) == 2


class TestWakeupAndRequests:
    def test_waiting_entry_not_ready(self):
        q = make_queue(8)
        q.insert(op(0), 0, {42})
        assert q.ready_physical_in_priority() == []

    def test_wakeup_enables_request(self):
        q = make_queue(8)
        q.insert(op(0), 0, {42})
        q.wakeup(42)
        assert q.ready_physical_in_priority() == [0]

    def test_wakeup_counts_broadcast(self):
        q = make_queue(8)
        q.wakeup(1)
        q.wakeup(2)
        assert q.counters.broadcasts == 2

    def test_ready_order_is_priority_order(self):
        q = make_queue(8)
        for i in range(4):
            q.insert(op(i), i, set())
        assert q.ready_physical_in_priority() == [0, 1, 2, 3]

    def test_request_vector_matches_ready(self):
        q = make_queue(8)
        q.insert(op(0), 0, set())
        q.insert(op(1), 1, {9})
        vec = q.request_vector()
        assert vec[0] is True
        assert vec[1] is False


class TestGrantAndCompaction:
    def test_grant_marks_issued(self):
        q = make_queue(8)
        q.insert(op(0), 0, set())
        entry = q.grant(0)
        assert entry.issued_at is not None
        assert q.ready_physical_in_priority() == []

    def test_grant_requires_ready(self):
        q = make_queue(8)
        q.insert(op(0), 0, {7})
        with pytest.raises(RuntimeError):
            q.grant(0)

    def test_issued_entry_removed_after_replay_window(self):
        q = make_queue(8, replay=2)
        q.insert(op(0), 0, set())
        q.grant(0)
        q.tick()
        assert len(q) == 1  # still inside the replay window
        q.tick()
        q.tick()
        assert len(q) == 0

    def test_compaction_shifts_younger_entries_down(self):
        q = make_queue(8, width=2, replay=1)
        for i in range(4):
            q.insert(op(i), i, set())
        q.grant(0)
        drain_ticks(q)
        positions = [(l, e.op.seq) for l, e in q.entries()]
        assert positions == [(0, 1), (1, 2), (2, 3)]

    def test_compaction_width_limits_shift(self):
        q = make_queue(8, width=1, replay=1)
        for i in range(5):
            q.insert(op(i), i, set())
        q.grant(0)
        q.grant(1)
        # Two slots freed but each entry may shift at most one per cycle.
        drain_ticks(q, 2)
        assert [e.op.seq for _, e in q.entries()] == [2, 3, 4]
        first = next(iter(q.entries()))[0]
        assert first == 0

    def test_compaction_counters_charged_to_halves(self):
        q = make_queue(8, width=2, replay=1)
        for i in range(8):
            q.insert(op(i), i, set())
        q.grant(0)
        drain_ticks(q)
        counters = q.counters
        assert sum(counters.compaction_moves) > 0
        assert sum(counters.counter_evals) > 0

    def test_no_activity_when_idle(self):
        q = make_queue(8)
        q.insert(op(0), 0, {5})
        before = q.counters.snapshot()
        drain_ticks(q, 3)
        after = q.counters
        assert after.compaction_moves == before.compaction_moves
        assert after.counter_evals == before.counter_evals

    def test_gating_charge_applies_while_invalid_sits_below(self):
        # An issued (invalid-marked) entry below defeats the clock
        # gating of entries above it on every cycle of the replay
        # window (paper 2.1), even before any movement happens.
        q = make_queue(8, width=2, replay=3)
        for i in range(4):
            q.insert(op(i), i, set())
        q.grant(0)
        q.tick()
        evals_after_one = sum(q.counters.counter_evals)
        q.tick()
        evals_after_two = sum(q.counters.counter_evals)
        assert evals_after_one == 3  # three valid entries above
        assert evals_after_two > evals_after_one


class TestToggling:
    def test_toggle_does_not_move_entries(self):
        q = make_queue(8)
        for i in range(3):
            q.insert(op(i), i, set())
        before = list(q.slots)
        q.toggle()
        assert q.slots == before

    def test_toggle_relabels_priorities(self):
        q = make_queue(8)
        q.insert(op(0), 0, set())
        q.toggle()
        # The entry at physical slot 0 is now logical position 4.
        assert [(l, e.op.seq) for l, e in q.entries()] == [(4, 0)]

    def test_insert_after_toggle_lands_in_upper_half(self):
        q = make_queue(8)
        q.toggle()
        q.insert(op(0), 0, set())
        assert q.slots[4] is not None

    def test_wraparound_compaction_charges_long_moves(self):
        q = make_queue(8, width=2, replay=1)
        q.toggle()
        for i in range(6):
            q.insert(op(i), i, set())
        # Entries occupy logical 0..5 -> physical 4..7, 0, 1.
        q.grant(4)  # head entry at physical 4
        drain_ticks(q, 3)
        assert sum(q.counters.long_moves) > 0

    def test_double_toggle_restores_mode(self):
        q = make_queue(8)
        q.toggle()
        q.toggle()
        assert q.mode is QueueMode.NORMAL
        assert q.counters.toggles == 2

    def test_occupancy_by_half(self):
        q = make_queue(8)
        for i in range(5):
            q.insert(op(i), i, set())
        assert q.occupancy_by_half() == (4, 1)

    def test_flush_empties_queue(self):
        q = make_queue(8)
        for i in range(5):
            q.insert(op(i), i, set())
        q.grant(0)
        q.flush()
        assert len(q) == 0
        assert q.can_insert(8)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

@st.composite
def queue_script(draw):
    """A random interleaving of inserts, grants, ticks, and toggles."""
    return draw(st.lists(
        st.sampled_from(["insert", "grant", "tick", "toggle"]),
        min_size=1, max_size=60))


@given(queue_script())
@settings(max_examples=120, deadline=None)
def test_queue_never_loses_or_duplicates_entries(script):
    q = CompactingIssueQueue(8, 2, replay_window=1)
    live = {}  # seq -> issued?
    seq = 0
    issued_not_removed = set()
    for action in script:
        if action == "insert":
            if q.can_insert():
                q.insert(op(seq), seq, set())
                live[seq] = False
                seq += 1
        elif action == "grant":
            ready = q.ready_physical_in_priority()
            if ready:
                entry = q.grant(ready[0])
                live[entry.op.seq] = True
                issued_not_removed.add(entry.op.seq)
        elif action == "tick":
            q.tick()
        elif action == "toggle":
            q.toggle()
        # Invariant: every un-issued entry is still present exactly once.
        present = [e.op.seq for _, e in q.entries()]
        assert len(present) == len(set(present))
        waiting = {s for s, isd in live.items() if not isd}
        assert waiting <= set(present)


@given(queue_script())
@settings(max_examples=120, deadline=None)
def test_unissued_entries_stay_in_age_order(script):
    """Within one mode epoch, un-issued entries appear in insertion
    order when walked in priority order (compaction preserves order;
    toggles may relabel but never reorder relative positions)."""
    q = CompactingIssueQueue(8, 2, replay_window=1)
    seq = 0
    toggled_recently = False
    for action in script:
        if action == "insert" and q.can_insert():
            q.insert(op(seq), seq, set())
            seq += 1
        elif action == "grant":
            ready = q.ready_physical_in_priority()
            if ready:
                q.grant(ready[0])
        elif action == "tick":
            q.tick()
        elif action == "toggle":
            q.toggle()
            toggled_recently = True
        if not toggled_recently:
            seqs = [e.op.seq for _, e in q.entries()
                    if e.issued_at is None]
            assert seqs == sorted(seqs)


@given(st.integers(min_value=0, max_value=7),
       st.booleans())
@settings(max_examples=60, deadline=None)
def test_phys_logical_roundtrip(logical, toggled):
    q = make_queue(8)
    if toggled:
        q.toggle()
    assert q.logical(q.phys(logical)) == logical
