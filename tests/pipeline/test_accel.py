"""Accelerator backends: identity, declines, provenance, honesty.

The lowered macro-step interpreter (:mod:`repro.pipeline.accel`) must
be a perfect stand-in for the Python kernel, which is itself a perfect
stand-in for the reference per-cycle loop: every ``SimulationResult``
``dataclasses.asdict``-identical across all three, for every backend
``REPRO_ACCEL`` can select.  The ``numpy`` backend runs the lowered
interpreter as plain Python, so it exercises the exact source the
numba backend compiles and is always available; a ``numba`` leg joins
the matrix automatically when the ``repro[accel]`` extra is installed
(CI runs one such leg).
"""

import dataclasses
import gc
import time

import pytest

from repro.cli import _timed_best_of
from repro.core.mapping import MappingKind
from repro.core.policies import (ALL_TECHNIQUES, ALUPolicy,
                                 IssueQueuePolicy, RegFilePolicy,
                                 TechniqueConfig)
from repro.pipeline import accel
from repro.sim.parallel import ExperimentEngine
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant

try:
    import numba  # noqa: F401
    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

#: Backends whose bit-identity is asserted in this environment.  The
#: lowered interpreter is one function; ``numpy`` runs it as plain
#: Python, ``numba`` runs the jitted compilation of the same source.
BACKENDS = ["numpy"] + (["numba"] if HAVE_NUMBA else [])


def small_config(**overrides):
    base = dict(benchmark="gzip", max_cycles=2_500, warmup_cycles=1_000)
    base.update(overrides)
    return SimulationConfig(**base)


#: Same shape as the kernel identity matrix: each figure's techniques
#: on that figure's constrained floorplan.
TECHNIQUE_MATRIX = {
    "fig6-toggling": (
        TechniqueConfig(issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
        FloorplanVariant.ISSUE_QUEUE),
    "fig7-base": (TechniqueConfig(alus=ALUPolicy.BASE),
                  FloorplanVariant.ALU),
    "fig7-fine-grain": (TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
                        FloorplanVariant.ALU),
    "fig7-round-robin": (TechniqueConfig(alus=ALUPolicy.ROUND_ROBIN),
                         FloorplanVariant.ALU),
    "fig8-fg-balanced": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.BALANCED, fine_grain_turnoff=True)),
        FloorplanVariant.REGFILE),
    "fig8-priority-only": (
        TechniqueConfig(regfile=RegFilePolicy(
            MappingKind.PRIORITY, fine_grain_turnoff=False)),
        FloorplanVariant.REGFILE),
}


def run_triple(monkeypatch, config, backend):
    """Reference loop, Python kernel, and accelerator backend runs."""
    monkeypatch.setenv("REPRO_ACCEL", "0")
    monkeypatch.setenv("REPRO_KERNEL", "0")
    reference = Simulator(config).run()
    monkeypatch.setenv("REPRO_KERNEL", "1")
    kernel = Simulator(config).run()
    monkeypatch.setenv("REPRO_ACCEL", backend)
    accelerated = Simulator(config).run()
    return reference, kernel, accelerated


def assert_identical(*results):
    first = dataclasses.asdict(results[0])
    for other in results[1:]:
        assert first == dataclasses.asdict(other)


class TestBackendSelection:
    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        assert accel.accel_mode() == "auto"

    def test_off_resolves_to_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "0")
        assert accel.resolve_backend() is None
        assert accel.active_backend() == "kernel"

    def test_numpy_always_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        assert accel.resolve_backend() == "numpy"
        assert accel.active_backend() == "numpy"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_numba_degrades_to_numpy_when_missing(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numba")
        assert accel.resolve_backend() == "numpy"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_auto_prefers_kernel_over_plain_python(self, monkeypatch):
        """Without numba, auto keeps the Python kernel: running the
        lowered interpreter as plain Python is slower, so auto must
        never pick it."""
        monkeypatch.setenv("REPRO_ACCEL", "auto")
        assert accel.resolve_backend() is None

    @pytest.mark.skipif(not HAVE_NUMBA, reason="needs repro[accel]")
    def test_auto_selects_numba_when_installed(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "auto")
        assert accel.resolve_backend() == "numba"
        monkeypatch.setenv("REPRO_ACCEL", "numba")
        assert accel.resolve_backend() == "numba"


class TestBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(TECHNIQUE_MATRIX))
    def test_technique_matrix(self, monkeypatch, name, backend):
        techniques, variant = TECHNIQUE_MATRIX[name]
        config = small_config(techniques=techniques, variant=variant)
        assert_identical(*run_triple(monkeypatch, config, backend))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_techniques_base_floorplan(self, monkeypatch, backend):
        config = small_config(techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.BASE)
        assert_identical(*run_triple(monkeypatch, config, backend))

    @pytest.mark.parametrize("bench", ["mesa", "perlbmk"])
    def test_other_benchmarks(self, monkeypatch, bench):
        config = small_config(benchmark=bench, techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.ISSUE_QUEUE)
        assert_identical(*run_triple(monkeypatch, config, "numpy"))

    def test_stall_heavy_run(self, monkeypatch):
        """The hot constrained floorplan forces global stalls,
        covering the interpreter's stall/throttle handling."""
        config = small_config(benchmark="perlbmk",
                              variant=FloorplanVariant.ALU,
                              max_cycles=6_000, warmup_cycles=2_000)
        assert_identical(*run_triple(monkeypatch, config, "numpy"))


class TestDecline:
    """Runs needing per-cycle Python visibility fall back silently."""

    def _session(self, config):
        sim = Simulator(config)
        sim.prepare()
        return accel.maybe_session(sim.processor)

    def test_plain_run_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        session = self._session(small_config())
        assert session is not None
        session.materialize()  # clean detach, no cycles run

    def test_off_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "0")
        assert self._session(small_config()) is None

    def test_sanitize_declines(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        assert self._session(small_config(sanitize=True)) is None

    def test_trace_declines(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        assert self._session(small_config(trace_events=True)) is None

    @pytest.mark.parametrize("sanitize", [False, True],
                             ids=["plain", "sanitized"])
    @pytest.mark.parametrize("trace", [False, True],
                             ids=["untraced", "traced"])
    def test_declined_runs_stay_identical(self, monkeypatch, sanitize,
                                          trace):
        config = small_config(techniques=ALL_TECHNIQUES,
                              variant=FloorplanVariant.ALU,
                              sanitize=sanitize, trace_events=trace)
        assert_identical(*run_triple(monkeypatch, config, "numpy"))


class TestCheckpointRestore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_interval_restore_bit_identical(self, monkeypatch,
                                                backend):
        """A checkpoint captured mid-sensing-interval must resume the
        countdown toward the next absolute boundary under the
        accelerator exactly as under the kernel."""
        monkeypatch.setenv("REPRO_ACCEL", backend)
        config = small_config(warmup_cycles=1_117, max_cycles=2_000)
        donor = Simulator(config)
        donor.prepare()
        assert donor.processor.now % config.thermal.sensor_interval_cycles
        blob = donor.capture_warm_state()
        fresh = Simulator(config).run()
        restored = Simulator.from_checkpoint(config, blob).run()
        assert_identical(fresh, restored)

    def test_restored_accel_matches_fresh_reference(self, monkeypatch):
        """Strictest cross pairing: reference-loop donor and fresh
        run vs accelerator-run restore."""
        config = small_config(warmup_cycles=1_117, max_cycles=2_000)
        monkeypatch.setenv("REPRO_ACCEL", "0")
        monkeypatch.setenv("REPRO_KERNEL", "0")
        donor = Simulator(config)
        donor.prepare()
        blob = donor.capture_warm_state()
        fresh_reference = Simulator(config).run()
        monkeypatch.setenv("REPRO_KERNEL", "1")
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        restored_accel = Simulator.from_checkpoint(config, blob).run()
        assert_identical(fresh_reference, restored_accel)


def fig7_grid():
    """ALU study: fine-grain and base fork at the first throttled
    boundary on the hot constrained floorplan."""
    return [SimulationConfig(benchmark=bench, variant=FloorplanVariant.ALU,
                             techniques=TechniqueConfig(alus=policy),
                             max_cycles=2_500, warmup_cycles=1_000)
            for bench in ("perlbmk", "mesa")
            for policy in (ALUPolicy.ROUND_ROBIN, ALUPolicy.FINE_GRAIN,
                           ALUPolicy.BASE)]


def run_grid(monkeypatch, configs, batch):
    monkeypatch.setenv("REPRO_BATCH", batch)
    engine = ExperimentEngine(jobs=1, use_cache=False,
                              use_checkpoints=False)
    return engine.run_many(configs), engine.stats


class TestBatchedGrids:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fig7_fork_heavy_identity(self, monkeypatch, backend):
        configs = fig7_grid()
        monkeypatch.setenv("REPRO_KERNEL", "1")
        monkeypatch.setenv("REPRO_ACCEL", backend)
        batched, stats = run_grid(monkeypatch, configs, batch="1")
        # Round-robin warms differently, so each benchmark batches
        # fine-grain + base: two groups of two, forking mid-grid.
        assert stats.batched_runs == 4
        assert stats.batch_groups == 2
        assert stats.accel_backend == backend
        per_run, _ = run_grid(monkeypatch, configs, batch="0")
        monkeypatch.setenv("REPRO_ACCEL", "0")
        plain, _ = run_grid(monkeypatch, configs, batch="0")
        monkeypatch.setenv("REPRO_KERNEL", "0")
        reference, _ = run_grid(monkeypatch, configs, batch="0")
        for quad in zip(batched, per_run, plain, reference):
            assert_identical(*quad)


class TestEngineProvenance:
    def test_stats_record_forced_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False)
        engine.run_many([small_config()])
        assert engine.stats.accel_backend == "numpy"
        assert engine.stats.accel_compile_s == accel.accel_compile_s()

    def test_stats_default_to_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "0")
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False)
        engine.run_many([small_config()])
        assert engine.stats.accel_backend == "kernel"
        assert engine.stats.accel_compile_s == accel.accel_compile_s()


class TestBenchHonesty:
    def test_first_call_excluded_from_timing(self):
        """The bench's best-of-N helper must absorb first-invocation
        cost (JIT compilation, cache warming) in an untimed warmup
        call, not report it inside ``cycles_per_s``."""
        calls = []

        def fn():
            calls.append(None)
            # First call simulates a JIT compile; steady state is fast.
            time.sleep(0.25 if len(calls) == 1 else 0.01)

        wall = _timed_best_of(fn)
        assert len(calls) == 4, "expected 1 warmup + 3 timed calls"
        assert wall < 0.15, (
            f"first-call compile leaked into the timed window: {wall:.3f}s")

    def test_compile_time_is_additive_only(self, monkeypatch):
        """Running the numpy backend never charges compile time; the
        numba backend's compile is measured once, outside run loops."""
        monkeypatch.setenv("REPRO_ACCEL", "numpy")
        before = accel.accel_compile_s()
        Simulator(small_config()).run()
        assert accel.accel_compile_s() == before
        if HAVE_NUMBA:
            monkeypatch.setenv("REPRO_ACCEL", "numba")
            Simulator(small_config()).run()
            assert accel.accel_compile_s() > 0.0


class TestThroughput:
    def test_auto_never_slower_than_kernel_floor(self, monkeypatch):
        """Acceptance: ``REPRO_ACCEL=auto`` keeps the existing >= 30k
        cycles/s gate — auto resolves to numba when installed and to
        the Python macro-step kernel otherwise, never to the slower
        plain-Python run of the lowered interpreter."""
        monkeypatch.setenv("REPRO_ACCEL", "auto")
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        config = SimulationConfig(
            benchmark="gzip",
            variant=FloorplanVariant.ALU,
            techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
            max_cycles=20_000)
        Simulator(config).run()  # warm caches / compile untimed
        walls = []
        # Best-of-5 (vs 3 elsewhere): this floor sits closer to the
        # measured throughput on a noisy 1-vCPU container, and one
        # clean window is all a floor needs.
        for _ in range(5):
            gc.collect()
            start = time.perf_counter()
            Simulator(config).run()
            walls.append(time.perf_counter() - start)
        best = config.max_cycles / min(walls)
        assert best >= 30_000, (
            f"auto-backend throughput regressed: {best:,.0f} cycles/s")
