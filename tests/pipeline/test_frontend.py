"""Tests for the fetch unit."""

from repro.pipeline.branch import TracePredictor
from repro.pipeline.frontend import FetchUnit
from repro.pipeline.isa import MicroOp, OpClass


def ops(n, branch_at=(), mispredicted=()):
    for seq in range(n):
        if seq in branch_at:
            yield MicroOp(seq, OpClass.BRANCH, src1=1, taken=True,
                          mispredicted=seq in mispredicted)
        else:
            yield MicroOp(seq, OpClass.INT_ALU, dst=1, src1=2, src2=3)


def make_fetch(trace, width=4, penalty=5):
    return FetchUnit(trace, width, TracePredictor(), penalty)


class TestFetch:
    def test_fetch_width_per_cycle(self):
        fetch = make_fetch(ops(100), width=4)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        assert len(fetch.buffer) == 4

    def test_buffer_capacity_bounds(self):
        fetch = make_fetch(ops(100), width=4)
        for cycle in range(1, 6):
            fetch.begin_cycle()
            fetch.fetch_cycle(cycle)
        assert len(fetch.buffer) == fetch.buffer_capacity

    def test_pop_and_unpop(self):
        fetch = make_fetch(ops(100), width=4)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        popped = fetch.pop_ready(3)
        assert [op.seq for op in popped] == [0, 1, 2]
        fetch.unpop(popped[1:])
        assert [op.seq for op in fetch.buffer][:2] == [1, 2]

    def test_mispredict_blocks_fetch(self):
        fetch = make_fetch(ops(100, branch_at={2}, mispredicted={2}),
                           width=4)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        assert len(fetch.buffer) == 3  # stops after the bad branch
        assert fetch.blocked
        fetch.begin_cycle()
        fetch.fetch_cycle(2)
        assert len(fetch.buffer) == 3  # still blocked

    def test_resolution_plus_penalty_resumes(self):
        fetch = make_fetch(ops(100, branch_at={0}, mispredicted={0}),
                           width=4, penalty=3)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        fetch.branch_resolved(0, now=10)
        for cycle in (11, 12):
            fetch.begin_cycle()
            fetch.fetch_cycle(cycle)
            assert len(fetch.buffer) == 1  # penalty not yet served
        fetch.begin_cycle()
        fetch.fetch_cycle(13)
        assert len(fetch.buffer) > 1

    def test_well_predicted_branch_does_not_block(self):
        fetch = make_fetch(ops(100, branch_at={1}), width=4)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        assert not fetch.blocked
        assert len(fetch.buffer) == 4

    def test_drained(self):
        fetch = make_fetch(ops(2), width=4)
        fetch.begin_cycle()
        fetch.fetch_cycle(1)
        assert fetch.exhausted
        assert not fetch.drained
        fetch.pop_ready(10)
        assert fetch.drained
