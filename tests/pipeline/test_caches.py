"""Tests for the cache hierarchy."""

import pytest

from repro.pipeline.caches import Cache, MemoryHierarchy
from repro.pipeline.config import CacheConfig, ProcessorConfig


def small_cache(size=1024, assoc=2, latency=2, block=64):
    return Cache(CacheConfig(size, assoc, latency, block))


class TestCache:
    def test_first_access_misses(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_block_granularity(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(63) is True   # same 64B line
        assert cache.access(64) is False  # next line

    def test_lru_eviction(self):
        cache = small_cache(size=256, assoc=2, block=64)  # 2 sets
        n_sets = cache.config.n_sets
        stride = n_sets * 64  # same-set addresses
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts address 0
        assert cache.access(0) is False

    def test_lru_updated_on_hit(self):
        cache = small_cache(size=256, assoc=2, block=64)
        stride = cache.config.n_sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)           # refresh 0
        cache.access(2 * stride)  # evicts stride, not 0
        assert cache.access(0) is True

    def test_probe_does_not_touch_state(self):
        cache = small_cache()
        cache.access(0)
        before = cache.stats.accesses
        assert cache.probe(0) is True
        assert cache.probe(4096) is False
        assert cache.stats.accesses == before

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            small_cache().access(-1)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert cache.probe(0) is False

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 3, 2)  # 16 blocks not divisible by 3


class TestMemoryHierarchy:
    def test_l1_hit_latency(self):
        mem = MemoryHierarchy(ProcessorConfig())
        mem.load_latency(0)
        assert mem.load_latency(0) == 2

    def test_l2_hit_latency(self):
        cfg = ProcessorConfig()
        mem = MemoryHierarchy(cfg)
        mem.l2.access(0)  # warm only the L2
        assert mem.load_latency(0) == cfg.l1d.latency + cfg.l2.latency

    def test_memory_latency(self):
        cfg = ProcessorConfig()
        mem = MemoryHierarchy(cfg)
        assert mem.load_latency(0) == (cfg.l1d.latency + cfg.l2.latency
                                       + cfg.memory_latency)

    def test_warm_resets_stats(self):
        mem = MemoryHierarchy(ProcessorConfig())
        mem.warm(l1_addresses=range(0, 4096, 64))
        assert mem.l1d.stats.accesses == 0
        assert mem.load_latency(0) == 2  # warmed line hits

    def test_store_allocates(self):
        mem = MemoryHierarchy(ProcessorConfig())
        mem.store(128)
        assert mem.l1d.probe(128)
        assert mem.stores == 1
