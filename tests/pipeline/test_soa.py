"""Unit tests for the SoA counter storage (`repro.pipeline.soa`).

`tests/pipeline/test_kernel.py` proves the macro-step kernel is
bit-identical end to end; these tests pin the *storage contract* the
kernel and the object layer both rely on: bank slots are independent,
the per-object counter views write through to the shared arrays, and
snapshot/restore round-trips are exact.
"""

import numpy as np
import pytest

from repro.pipeline.alu import make_fp_adders, make_int_alus
from repro.pipeline.issue_queue import (CompactingIssueQueue,
                                        IssueQueueCounters)
from repro.pipeline.soa import (IQC_BROADCASTS, IQC_COMPACTION_MOVES_0,
                                IQC_COMPACTION_MOVES_1, IQC_NFIELDS,
                                UnitBank, new_iq_counter_array)


class TestUnitBank:
    def test_arrays_are_preallocated_int64(self):
        bank = UnitBank(6)
        for arr in (bank.ops, bank.busy_cycles, bank.turnoff_events):
            assert arr.dtype == np.int64
            assert arr.shape == (6,)
            assert not arr.any()

    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            UnitBank(0)

    def test_vectorized_add_matches_scalar_bumps(self):
        vec, scalar = UnitBank(4), UnitBank(4)
        delta = [3, 0, 7, 1]
        vec.ops += np.asarray(delta)
        for slot, n in enumerate(delta):
            for _ in range(n):
                scalar.ops[slot] += 1
        assert vec.ops.tolist() == scalar.ops.tolist()


class TestUnitCounterViews:
    def test_units_share_one_bank_with_independent_slots(self):
        alus = make_int_alus(6)
        assert len({id(u._bank) for u in alus}) == 1
        alus[2].counters.ops = 5
        alus[4].counters.busy_cycles = 9
        assert alus[2]._bank.ops.tolist() == [0, 0, 5, 0, 0, 0]
        assert [u.counters.ops for u in alus] == [0, 0, 5, 0, 0, 0]
        assert [u.counters.busy_cycles for u in alus] == [0, 0, 0, 0, 9, 0]

    def test_view_reads_are_plain_ints(self):
        adder = make_fp_adders(4)[1]
        adder.counters.ops += 2
        assert type(adder.counters.ops) is int
        assert adder.counters.values() == {
            "ops": 2, "busy_cycles": 0, "turnoff_events": 0}

    def test_banks_are_per_make_call(self):
        a, b = make_int_alus(6), make_int_alus(6)
        a[0].counters.ops = 3
        assert b[0].counters.ops == 0


class TestIssueQueueCounterArray:
    def queue(self):
        return CompactingIssueQueue(n_entries=8, compact_width=4)

    def test_array_layout(self):
        arr = new_iq_counter_array()
        assert arr.dtype == np.int64
        assert arr.shape == (IQC_NFIELDS,)

    def test_half_pair_writes_through(self):
        q = self.queue()
        q.counters.compaction_moves[0] += 2
        q.counters.compaction_moves[1] = 7
        assert q._c[IQC_COMPACTION_MOVES_0] == 2
        assert q._c[IQC_COMPACTION_MOVES_1] == 7
        assert q.counters.compaction_moves == [2, 7]
        assert list(q.counters.compaction_moves) == [2, 7]
        assert len(q.counters.compaction_moves) == 2

    def test_scalar_slots_write_through(self):
        q = self.queue()
        q._c[IQC_BROADCASTS] = 11
        assert q.counters.broadcasts == 11
        assert type(q.counters.broadcasts) is int

    def test_snapshot_restore_round_trip(self):
        q = self.queue()
        q._c[:] = np.arange(1, IQC_NFIELDS + 1)
        dto = q.counters.snapshot()
        assert isinstance(dto, IssueQueueCounters)

        other = self.queue()
        other.counters.restore(dto)
        assert other._c.tolist() == q._c.tolist()
        # The DTO is a value copy, not a live view.
        q._c[IQC_BROADCASTS] = 0
        assert dto.broadcasts != 0


class TestRegFileCounterViews:
    def test_reads_writes_come_back_as_lists(self):
        from repro.core.mapping import balanced_mapping
        from repro.pipeline.regfile import RegisterFileBank

        bank = RegisterFileBank(balanced_mapping(6, 2))
        bank.read_for_issue(alu=0, n_operands=2)
        bank.write()
        reads = bank.counters.reads
        assert type(reads) is list and sum(reads) == 2
        assert bank.counters.writes == [1] * bank.n_copies
        assert bank._reads.dtype == np.int64
        assert bank._writes.dtype == np.int64
