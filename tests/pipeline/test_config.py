"""Tests for configuration validation."""

import dataclasses

import pytest

from repro.pipeline.config import (CacheConfig, ProcessorConfig,
                                   ThermalConfig, scaled_thermal)


class TestProcessorConfig:
    def test_defaults_match_paper_table2(self):
        cfg = ProcessorConfig()
        assert cfg.issue_width == 6
        assert cfg.active_list_entries == 128
        assert cfg.lsq_entries == 64
        assert cfg.int_queue_entries == 32
        assert cfg.fp_queue_entries == 32
        assert cfg.num_int_alus == 6
        assert cfg.num_fp_adders == 4
        assert cfg.num_regfile_copies == 2
        assert cfg.memory_latency == 250
        assert cfg.l1d.size_bytes == 64 * 1024
        assert cfg.l2.size_bytes == 2 * 1024 * 1024

    def test_odd_queue_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(ProcessorConfig(), int_queue_entries=31)

    def test_alu_copy_divisibility(self):
        with pytest.raises(ValueError):
            dataclasses.replace(ProcessorConfig(), num_int_alus=5)

    def test_physical_regs_floor(self):
        with pytest.raises(ValueError):
            dataclasses.replace(ProcessorConfig(), num_physical_regs=100)


class TestThermalConfig:
    def test_defaults_match_paper(self):
        cfg = ThermalConfig()
        assert cfg.frequency_hz == pytest.approx(4.2e9)
        assert cfg.vdd == pytest.approx(1.2)
        assert cfg.max_temperature_k == pytest.approx(358.0)
        assert cfg.convection_resistance_k_per_w == pytest.approx(0.8)
        assert cfg.cooling_time_s == pytest.approx(10e-3)
        assert cfg.heatsink_thickness_m == pytest.approx(6.9e-3)
        assert cfg.toggle_threshold_k == pytest.approx(0.5)

    def test_cooling_cycles_scale_with_acceleration(self):
        slow = scaled_thermal(acceleration=1000.0)
        fast = scaled_thermal(acceleration=4000.0)
        assert slow.cooling_cycles == pytest.approx(
            4 * fast.cooling_cycles, rel=0.01)

    def test_ceiling_above_ambient(self):
        with pytest.raises(ValueError):
            scaled_thermal(max_temperature_k=300.0)

    def test_acceleration_floor(self):
        with pytest.raises(ValueError):
            scaled_thermal(acceleration=0.5)

    def test_cycle_time(self):
        assert ThermalConfig().cycle_time_s == pytest.approx(1 / 4.2e9)
