"""Tests for materialized replayable traces."""

from itertools import islice

import pytest

from repro.workloads.spec2000 import workload
from repro.workloads.trace import (MaterializedTrace, ReplayTrace,
                                   clear_registry, replay_trace)


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_registry()
    yield
    clear_registry()


def op_tuple(op):
    return (op.seq, op.opclass, op.dst, op.src1, op.src2, op.mem_addr,
            op.taken, op.mispredicted)


class TestReplayIdentity:
    def test_replay_matches_generator_stream(self):
        generated = list(islice(workload("gzip", seed=1), 500))
        replayed = list(islice(replay_trace("gzip", seed=1), 500))
        assert ([op_tuple(a) for a in generated]
                == [op_tuple(b) for b in replayed])

    def test_two_cursors_share_one_buffer(self):
        first = replay_trace("gzip")
        second = replay_trace("gzip")
        assert first.buffer is second.buffer
        a = [op_tuple(op) for op in islice(first, 100)]
        b = [op_tuple(op) for op in islice(second, 100)]
        assert a == b

    def test_seek_replays_from_position(self):
        trace = replay_trace("mesa")
        head = [op_tuple(op) for op in islice(trace, 200)]
        trace.seek(50)
        assert trace.position == 50
        replay = [op_tuple(op) for op in islice(trace, 150)]
        assert replay == head[50:]

    def test_never_exhausts(self):
        trace = replay_trace("gzip")
        trace.seek(10_000)
        assert next(trace) is not None

    def test_warm_footprint_passthrough(self):
        assert (replay_trace("gzip").warm_footprint()
                == workload("gzip").warm_footprint())


class TestRegistry:
    def test_lru_eviction(self):
        names = ["gzip", "mesa", "perlbmk", "parser", "vpr"]
        traces = {name: replay_trace(name) for name in names}
        # Capacity is 4: "gzip" (oldest) was evicted, the rest weren't.
        assert replay_trace("mesa").buffer is traces["mesa"].buffer
        assert replay_trace("gzip").buffer is not traces["gzip"].buffer

    def test_distinct_seeds_distinct_buffers(self):
        assert (replay_trace("gzip", seed=1).buffer
                is not replay_trace("gzip", seed=2).buffer)


class TestValidation:
    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            replay_trace("gzip").seek(-1)
        with pytest.raises(ValueError):
            ReplayTrace(MaterializedTrace(workload("gzip")), position=-5)
