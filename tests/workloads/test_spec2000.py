"""Tests for the SPEC2000 profile suite."""

import itertools

import pytest

from repro.pipeline.processor import Processor
from repro.workloads.spec2000 import (BENCHMARK_NAMES, PROFILES,
                                      all_profiles, profile, workload)


class TestSuite:
    def test_twenty_two_benchmarks(self):
        """The paper runs 22 of the 26 SPEC2000 benchmarks."""
        assert len(BENCHMARK_NAMES) == 22
        assert set(BENCHMARK_NAMES) == set(PROFILES)

    def test_paper_anchor_benchmarks_present(self):
        for name in ("art", "facerec", "mesa", "eon", "parser",
                     "perlbmk", "wupwise", "apsi", "gcc"):
            assert name in PROFILES

    def test_all_profiles_valid(self):
        # Construction validates; just touch every profile.
        for prof in all_profiles():
            assert sum(prof.mix.values()) == pytest.approx(1.0)

    def test_every_profile_is_phased(self):
        """Profiles alternate calm/burst phases (real programs do)."""
        for prof in all_profiles():
            assert prof.bursty

    def test_lookup_by_name(self):
        assert profile("mesa").name == "mesa"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            profile("doom3")

    def test_workload_factory(self):
        w = workload("gzip", seed=3)
        ops = list(itertools.islice(w, 10))
        assert len(ops) == 10


class TestRegimes:
    """The paper's qualitative anchors (DESIGN.md 2)."""

    def test_art_and_mcf_are_memory_bound(self):
        for name in ("art", "mcf"):
            prof = profile(name)
            assert prof.l1_miss >= 0.25
            assert prof.l2_frac >= 0.5

    def test_facerec_has_strong_bursts(self):
        prof = profile("facerec")
        assert prof.burst_dep_mean >= 3 * prof.dep_mean

    def test_perlbmk_has_high_ilp(self):
        assert profile("perlbmk").dep_mean > 2 * profile("parser").dep_mean

    def test_parser_low_ipc_perlbmk_high_ipc(self):
        ipcs = {}
        for name in ("parser", "perlbmk"):
            w = workload(name)
            p = Processor(w)
            l1, l2 = w.warm_footprint()
            p.memory.warm(l1, l2)
            p.run(4000)
            ipcs[name] = p.stats.ipc
        assert ipcs["perlbmk"] > 2 * ipcs["parser"]

    def test_int_benchmarks_have_no_fp(self):
        for name in ("bzip", "crafty", "gcc", "gzip", "mcf", "parser",
                     "perlbmk", "twolf", "vortex", "vpr", "eon"):
            assert profile(name).fp_fraction == 0.0

    def test_fp_benchmarks_have_fp(self):
        for name in ("applu", "apsi", "art", "facerec", "fma3d", "lucas",
                     "mesa", "mgrid", "sixtrack", "swim", "wupwise"):
            assert profile(name).fp_fraction > 0.15
