"""Tests for the synthetic workload generator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.isa import OpClass
from repro.workloads.generator import SyntheticWorkload, WorkloadProfile


def simple_profile(**overrides):
    params = dict(
        name="test",
        mix={OpClass.INT_ALU: 0.5, OpClass.LOAD: 0.25,
             OpClass.STORE: 0.1, OpClass.BRANCH: 0.15},
        dep_mean=4.0, l1_miss=0.05, l2_frac=0.2, mispredict_rate=0.05,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


class TestProfileValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sums to"):
            simple_profile(mix={OpClass.INT_ALU: 0.5})

    def test_dep_mean_floor(self):
        with pytest.raises(ValueError):
            simple_profile(dep_mean=0.5)

    def test_probabilities_bounded(self):
        with pytest.raises(ValueError):
            simple_profile(l1_miss=1.5)
        with pytest.raises(ValueError):
            simple_profile(mispredict_rate=-0.1)
        with pytest.raises(ValueError):
            simple_profile(independent_frac=2.0)

    def test_burst_fields_paired(self):
        with pytest.raises(ValueError):
            simple_profile(burst_len=100)  # calm_len missing

    def test_bursty_flag(self):
        profile = simple_profile(burst_len=100, calm_len=100,
                                 burst_dep_mean=8.0)
        assert profile.bursty
        assert not simple_profile().bursty

    def test_fp_fraction(self):
        profile = simple_profile(
            mix={OpClass.INT_ALU: 0.5, OpClass.FP_ADD: 0.3,
                 OpClass.FP_MUL: 0.2})
        assert profile.fp_fraction == pytest.approx(0.5)


class TestGeneration:
    def test_reproducible_for_same_seed(self):
        a = SyntheticWorkload(simple_profile(), seed=7)
        b = SyntheticWorkload(simple_profile(), seed=7)
        ops_a = [(o.opclass, o.dst, o.src1, o.mem_addr)
                 for o in itertools.islice(a, 200)]
        ops_b = [(o.opclass, o.dst, o.src1, o.mem_addr)
                 for o in itertools.islice(b, 200)]
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        a = SyntheticWorkload(simple_profile(), seed=1)
        b = SyntheticWorkload(simple_profile(), seed=2)
        ops_a = [(o.opclass, o.mem_addr) for o in itertools.islice(a, 200)]
        ops_b = [(o.opclass, o.mem_addr) for o in itertools.islice(b, 200)]
        assert ops_a != ops_b

    def test_mix_frequencies_approximate_profile(self):
        workload = SyntheticWorkload(simple_profile(), seed=3)
        counts = {c: 0 for c in OpClass}
        n = 5000
        for op in itertools.islice(workload, n):
            counts[op.opclass] += 1
        assert counts[OpClass.INT_ALU] / n == pytest.approx(0.5, abs=0.05)
        assert counts[OpClass.LOAD] / n == pytest.approx(0.25, abs=0.05)
        assert counts[OpClass.FP_ADD] == 0

    def test_sequence_numbers_increase(self):
        workload = SyntheticWorkload(simple_profile())
        seqs = [op.seq for op in itertools.islice(workload, 50)]
        assert seqs == list(range(50))

    def test_loads_have_addresses(self):
        workload = SyntheticWorkload(simple_profile())
        for op in itertools.islice(workload, 500):
            if op.opclass in (OpClass.LOAD, OpClass.STORE):
                assert op.mem_addr is not None
                assert op.mem_addr % 64 == 0

    def test_mispredict_rate_approximated(self):
        workload = SyntheticWorkload(
            simple_profile(mispredict_rate=0.3), seed=5)
        branches = [op for op in itertools.islice(workload, 8000)
                    if op.opclass is OpClass.BRANCH]
        rate = sum(op.mispredicted for op in branches) / len(branches)
        assert rate == pytest.approx(0.3, abs=0.06)

    def test_take_yields_exact_count(self):
        workload = SyntheticWorkload(simple_profile())
        assert len(list(workload.take(123))) == 123

    def test_burst_phases_alternate(self):
        profile = simple_profile(burst_len=50, calm_len=50,
                                 burst_dep_mean=10.0)
        workload = SyntheticWorkload(profile)
        states = []
        for _ in range(400):
            workload.generate()
            states.append(workload.in_burst)
        assert any(states) and not all(states)

    def test_warm_footprint_covers_pools(self):
        workload = SyntheticWorkload(simple_profile())
        l1, l2 = workload.warm_footprint()
        assert len(list(l1)) > 0
        assert len(list(l2)) > 0

    def test_independent_ops_have_no_sources(self):
        profile = simple_profile(independent_frac=1.0)
        workload = SyntheticWorkload(profile)
        for op in itertools.islice(workload, 200):
            if op.opclass is OpClass.INT_ALU:
                assert op.sources() == ()


class TestSeededReproducibility:
    """Bit-identical streams are the foundation of every paper delta;
    these lock the full MicroOp contents, not just a field sample."""

    def test_every_field_identical_for_same_seed(self):
        import dataclasses
        a = SyntheticWorkload(simple_profile(), seed=11)
        b = SyntheticWorkload(simple_profile(), seed=11)
        ops_a = [dataclasses.astuple(o) for o in itertools.islice(a, 1000)]
        ops_b = [dataclasses.astuple(o) for o in itertools.islice(b, 1000)]
        assert ops_a == ops_b

    def test_benchmark_workload_reproducible(self):
        import dataclasses
        from repro.workloads.spec2000 import workload
        a = [dataclasses.astuple(o)
             for o in itertools.islice(workload("gzip", seed=3), 500)]
        b = [dataclasses.astuple(o)
             for o in itertools.islice(workload("gzip", seed=3), 500)]
        assert a == b

    def test_warm_footprint_reproducible(self):
        a = SyntheticWorkload(simple_profile(), seed=4)
        b = SyntheticWorkload(simple_profile(), seed=4)
        l1_a, l2_a = a.warm_footprint()
        l1_b, l2_b = b.warm_footprint()
        assert list(l1_a) == list(l1_b)
        assert list(l2_a) == list(l2_b)


@given(dep=st.floats(min_value=1.0, max_value=20.0),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_generator_never_crashes(dep, seed):
    profile = simple_profile(dep_mean=dep)
    workload = SyntheticWorkload(profile, seed=seed)
    ops = list(workload.take(100))
    assert len(ops) == 100
