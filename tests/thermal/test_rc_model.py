"""Tests for the RC thermal network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.floorplan import FloorplanVariant, ev6_floorplan
from repro.thermal.package import PackageConfig
from repro.thermal.rc_model import SINK_NODE, ThermalModel

AMBIENT = 315.0


def make_model(acceleration=1.0):
    return ThermalModel(ev6_floorplan(FloorplanVariant.BASE),
                        ambient_k=AMBIENT, acceleration=acceleration)


def uniform_powers(model, watts):
    return {name: watts for name in model.floorplan.names}


class TestSteadyState:
    def test_zero_power_settles_at_ambient(self):
        model = make_model()
        steady = model.steady_state({})
        for temp in steady.values():
            assert temp == pytest.approx(AMBIENT, abs=1e-6)

    def test_sink_rise_equals_power_times_convection(self):
        model = make_model()
        total = 25.0
        per_block = total / len(model.floorplan.names)
        steady = model.steady_state(uniform_powers(model, per_block))
        expected = AMBIENT + total * model.package.convection_resistance_k_per_w
        assert steady[SINK_NODE] == pytest.approx(expected, rel=1e-6)

    def test_more_power_means_hotter_block(self):
        model = make_model()
        powers = uniform_powers(model, 1.0)
        powers["IntExec0"] = 3.0
        steady = model.steady_state(powers)
        assert steady["IntExec0"] > steady["IntExec5"] + 0.5

    def test_vertical_dominates_lateral(self):
        """A hot block's immediate neighbour stays much cooler than the
        hot block itself (the paper's premise)."""
        model = make_model()
        powers = {name: 0.5 for name in model.floorplan.names}
        powers["IntExec0"] = 4.0
        steady = model.steady_state(powers)
        hot_rise = steady["IntExec0"] - steady[SINK_NODE]
        # IntExec0's physical row neighbour:
        neighbour_rise = steady["IntExec5"] - steady[SINK_NODE]
        assert neighbour_rise < 0.55 * hot_rise


class TestTransient:
    def test_step_converges_to_steady_state(self):
        """Die blocks converge to their steady-state *offsets above the
        sink* quickly; the sink itself is deliberately slow (its time
        constant is the package's, not the die's)."""
        model = make_model(acceleration=1000.0)
        powers = uniform_powers(model, 0.8)
        steady = model.steady_state(powers)
        for _ in range(8000):
            model.step(powers, dt=1e-6)
        sink_now = model.sink_temperature()
        sink_ss = steady[SINK_NODE]
        for name in model.floorplan.names:
            offset_now = model.temperature(name) - sink_now
            offset_ss = steady[name] - sink_ss
            assert abs(offset_now - offset_ss) < 0.5, name

    def test_monotone_heating_from_cold(self):
        model = make_model(acceleration=1000.0)
        powers = uniform_powers(model, 1.0)
        last = model.temperature("IntExec0")
        for _ in range(50):
            model.step(powers, dt=1e-6)
            current = model.temperature("IntExec0")
            assert current >= last - 1e-9
            last = current

    def test_cooling_after_power_drop(self):
        model = make_model(acceleration=1000.0)
        hot = uniform_powers(model, 2.0)
        for _ in range(2000):
            model.step(hot, dt=1e-6)
        peak = model.temperature("IntExec0")
        for _ in range(500):
            model.step({}, dt=1e-6)
        assert model.temperature("IntExec0") < peak

    def test_acceleration_speeds_dynamics(self):
        slow = make_model(acceleration=1.0)
        fast = make_model(acceleration=100.0)
        powers_slow = uniform_powers(slow, 1.0)
        for _ in range(100):
            slow.step(powers_slow, dt=1e-6)
            fast.step(powers_slow, dt=1e-6)
        assert (fast.temperature("IntExec0")
                > slow.temperature("IntExec0") + 0.1)

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            make_model().step({}, dt=0.0)

    def test_bad_acceleration_rejected(self):
        with pytest.raises(ValueError):
            make_model(acceleration=0.1)


class TestStateAccess:
    def test_initialize_steady_state(self):
        model = make_model()
        powers = uniform_powers(model, 1.0)
        model.initialize_steady_state(powers)
        steady = model.steady_state(powers)
        for name in model.floorplan.names:
            assert model.temperature(name) == pytest.approx(steady[name])

    def test_temperatures_excludes_sink(self):
        model = make_model()
        temps = model.temperatures()
        assert SINK_NODE not in temps
        assert set(temps) == set(model.floorplan.names)

    def test_hottest(self):
        model = make_model()
        model.set_temperatures({"IntReg0": 400.0})
        assert model.hottest() == "IntReg0"


@given(watts=st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=25, deadline=None)
def test_steady_state_never_below_ambient(watts):
    model = make_model()
    steady = model.steady_state(uniform_powers(model, watts))
    assert all(t >= AMBIENT - 1e-6 for t in steady.values())


@given(extra=st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=25, deadline=None)
def test_superposition(extra):
    """The network is linear: adding power to one block raises its own
    steady temperature by a fixed resistance times the power."""
    model = make_model()
    base = model.steady_state(uniform_powers(model, 1.0))
    powers = uniform_powers(model, 1.0)
    powers["Dcache"] += extra
    bumped = model.steady_state(powers)
    rise_per_watt = (bumped["Dcache"] - base["Dcache"]) / extra
    powers["Dcache"] += extra  # double the bump
    doubled = model.steady_state(powers)
    assert (doubled["Dcache"] - base["Dcache"]) / (2 * extra) == \
        pytest.approx(rise_per_watt, rel=1e-6)


class TestStepVector:
    def test_matches_dict_step(self):
        """The vector fast path advances the network exactly like the
        dict interface fed the same powers."""
        import numpy as np

        by_dict = make_model()
        by_vector = make_model()
        names = by_dict.floorplan.names
        powers = {name: 0.3 + 0.01 * i for i, name in enumerate(names)}
        vector = np.array([powers[name] for name in names])
        for _ in range(5):
            by_dict.step(powers, 1e-4)
            by_vector.step_vector(vector, 1e-4)
        assert np.array_equal(by_dict.temps, by_vector.temps)

    def test_rejects_wrong_length(self):
        import numpy as np

        model = make_model()
        with pytest.raises(ValueError):
            model.step_vector(np.zeros(3), 1e-4)

    def test_rejects_nonpositive_dt(self):
        import numpy as np

        model = make_model()
        n_die = len(model.floorplan.names)
        with pytest.raises(ValueError):
            model.step_vector(np.zeros(n_die), 0.0)


class TestUpdateMatrixCache:
    def test_one_entry_per_distinct_dt(self):
        """Alternating dt values must not recompute the matrix
        exponential: each distinct dt gets one cached (Ad, Bd)."""
        model = make_model()
        powers = uniform_powers(model, 0.5)
        model.step(powers, 1e-4)
        model.step(powers, 2e-4)
        model.step(powers, 1e-4)
        model.step(powers, 2e-4)
        assert len(model._ops) == 2

    def test_cache_shared_with_vector_path(self):
        import numpy as np

        model = make_model()
        model.step(uniform_powers(model, 0.5), 1e-4)
        model.step_vector(np.zeros(len(model.floorplan.names)), 1e-4)
        assert len(model._ops) == 1
