"""Tests for floorplan geometry."""

import itertools

import pytest

from repro.thermal.floorplan import (Block, Floorplan, FloorplanVariant,
                                     FP_ADD_BLOCKS, INT_ALU_BLOCKS,
                                     INT_QUEUE_BLOCKS, INT_REG_BLOCKS,
                                     ev6_floorplan)


class TestBlock:
    def test_area(self):
        block = Block("a", 0, 0, 2e-3, 3e-3)
        assert block.area == pytest.approx(6e-6)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Block("a", 0, 0, 0, 1e-3)

    def test_shared_edge_vertical_neighbours(self):
        a = Block("a", 0, 0, 1e-3, 1e-3)
        b = Block("b", 0, 1e-3, 1e-3, 1e-3)
        assert a.shared_edge(b) == pytest.approx(1e-3)

    def test_shared_edge_partial_overlap(self):
        a = Block("a", 0, 0, 1e-3, 1e-3)
        b = Block("b", 1e-3, 0.5e-3, 1e-3, 1e-3)
        assert a.shared_edge(b) == pytest.approx(0.5e-3)

    def test_no_edge_for_distant_blocks(self):
        a = Block("a", 0, 0, 1e-3, 1e-3)
        b = Block("b", 5e-3, 5e-3, 1e-3, 1e-3)
        assert a.shared_edge(b) == 0.0


def overlap(a: Block, b: Block) -> float:
    w = min(a.x2, b.x2) - max(a.x, b.x)
    h = min(a.y2, b.y2) - max(a.y, b.y)
    return max(0.0, w) * max(0.0, h)


@pytest.mark.parametrize("variant", list(FloorplanVariant))
class TestEV6Floorplan:
    def test_blocks_do_not_overlap(self, variant):
        plan = ev6_floorplan(variant)
        for a, b in itertools.combinations(plan.blocks.values(), 2):
            assert overlap(a, b) < 1e-12, (a.name, b.name)

    def test_tiles_full_die(self, variant):
        plan = ev6_floorplan(variant)
        assert plan.total_area() == pytest.approx(64e-6, rel=1e-6)

    def test_required_granularity(self, variant):
        plan = ev6_floorplan(variant)
        for name in (*INT_ALU_BLOCKS, *FP_ADD_BLOCKS, *INT_REG_BLOCKS,
                     *INT_QUEUE_BLOCKS, "FPQ0", "FPQ1", "FPMul", "FPReg",
                     "Icache", "Dcache"):
            assert name in plan

    def test_queue_halves_equal_area(self, variant):
        plan = ev6_floorplan(variant)
        assert plan.area("IntQ0") == pytest.approx(plan.area("IntQ1"))
        assert plan.area("FPQ0") == pytest.approx(plan.area("FPQ1"))

    def test_adjacency_has_positive_edges(self, variant):
        plan = ev6_floorplan(variant)
        pairs = plan.adjacency()
        assert pairs
        assert all(edge > 0 for _, _, edge in pairs)

    def test_queue_halves_are_adjacent(self, variant):
        plan = ev6_floorplan(variant)
        assert plan["IntQ0"].shared_edge(plan["IntQ1"]) > 0


class TestConstrainedVariants:
    def test_issue_queue_variant_shrinks_queues(self):
        base = ev6_floorplan(FloorplanVariant.BASE)
        constrained = ev6_floorplan(FloorplanVariant.ISSUE_QUEUE)
        assert constrained.area("IntQ0") < 0.5 * base.area("IntQ0")

    def test_alu_variant_shrinks_alus(self):
        base = ev6_floorplan(FloorplanVariant.BASE)
        constrained = ev6_floorplan(FloorplanVariant.ALU)
        assert constrained.area("IntExec0") < 0.5 * base.area("IntExec0")

    def test_regfile_variant_shrinks_copies(self):
        base = ev6_floorplan(FloorplanVariant.BASE)
        constrained = ev6_floorplan(FloorplanVariant.REGFILE)
        assert constrained.area("IntReg0") < 0.5 * base.area("IntReg0")

    def test_scale_bounds_validated(self):
        with pytest.raises(ValueError):
            ev6_floorplan(FloorplanVariant.BASE, iq_scale=0.01)

    def test_duplicate_names_rejected(self):
        blocks = [Block("a", 0, 0, 1e-3, 1e-3),
                  Block("a", 1e-3, 0, 1e-3, 1e-3)]
        with pytest.raises(ValueError):
            Floorplan(blocks)
