"""Tests for the sensor bank."""

import pytest

from repro.thermal.floorplan import FloorplanVariant, ev6_floorplan
from repro.thermal.rc_model import ThermalModel
from repro.thermal.sensors import SensorBank


def make_model():
    return ThermalModel(ev6_floorplan(FloorplanVariant.BASE),
                        ambient_k=315.0)


class TestSensorBank:
    def test_read_matches_model(self):
        model = make_model()
        model.set_temperatures({"Icache": 350.0})
        sensors = SensorBank(model)
        assert sensors.read("Icache") == pytest.approx(350.0)

    def test_offset_applied(self):
        model = make_model()
        model.set_temperatures({"Icache": 350.0})
        sensors = SensorBank(model, offsets={"Icache": 2.0})
        assert sensors.read("Icache") == pytest.approx(352.0)

    def test_quantization(self):
        model = make_model()
        model.set_temperatures({"Icache": 350.3})
        sensors = SensorBank(model, quantization_k=1.0)
        assert sensors.read("Icache") == pytest.approx(350.0)

    def test_negative_quantization_rejected(self):
        with pytest.raises(ValueError):
            SensorBank(make_model(), quantization_k=-1.0)

    def test_statistics(self):
        model = make_model()
        sensors = SensorBank(model)
        model.set_temperatures({"Icache": 350.0})
        sensors.read("Icache")
        model.set_temperatures({"Icache": 354.0})
        sensors.read("Icache")
        assert sensors.mean("Icache") == pytest.approx(352.0)
        assert sensors.maximum("Icache") == pytest.approx(354.0)

    def test_read_all(self):
        sensors = SensorBank(make_model())
        temps = sensors.read_all()
        assert set(temps) == set(sensors.model.floorplan.names)
