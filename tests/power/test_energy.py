"""Tests for the energy model, including the paper's Table 3."""

import pytest

from repro.power.energy import (DEFAULT_ENERGY_MODEL, EnergyModel,
                                IssueQueueEnergies)


class TestTable3:
    """The issue-queue component energies are the paper's Table 3,
    reproduced verbatim (nanojoules)."""

    def test_values_match_paper(self):
        e = IssueQueueEnergies()
        assert e.compact_entry == pytest.approx(0.0123)
        assert e.compact_mux == pytest.approx(0.0023)
        assert e.long_compaction == pytest.approx(0.0687)
        assert e.counter_stage1 == pytest.approx(0.0011)
        assert e.counter_stage2 == pytest.approx(0.0021)
        assert e.clock_gating == pytest.approx(0.0015)
        assert e.tag_broadcast == pytest.approx(0.0450)
        assert e.payload_ram == pytest.approx(0.0675)
        assert e.select_access == pytest.approx(0.0051)

    def test_table_has_all_nine_rows(self):
        assert len(IssueQueueEnergies().as_table()) == 9

    def test_long_compaction_most_expensive_wire(self):
        e = IssueQueueEnergies()
        assert e.long_compaction > e.compact_entry > e.compact_mux


class TestEnergyModel:
    def test_leakage_scales_with_area(self):
        model = EnergyModel()
        assert model.leakage_watts("Icache", 2e-6) == pytest.approx(
            2 * model.leakage_watts("Icache", 1e-6))

    def test_override_applies(self):
        model = EnergyModel(leakage_overrides={"IntQ0": 1e6})
        generic = model.leakage_watts("Dcache", 1e-6)
        queue = model.leakage_watts("IntQ0", 1e-6)
        assert queue != generic
        assert queue == pytest.approx(1.0)

    def test_default_model_exists(self):
        assert DEFAULT_ENERGY_MODEL.int_alu_op > 0
