"""Tests for the power accountant."""

import pytest

from repro.pipeline.processor import Processor
from repro.power.accounting import PowerAccountant
from repro.thermal.floorplan import FloorplanVariant, ev6_floorplan
from repro.workloads import workload

INTERVAL_S = 1000 / 4.2e9


def accountant_and_processor(bench="gzip"):
    plan = ev6_floorplan(FloorplanVariant.BASE)
    acc = PowerAccountant(plan)
    w = workload(bench)
    p = Processor(w)
    l1, l2 = w.warm_footprint()
    p.memory.warm(l1, l2)
    return acc, p


class TestPowerAccountant:
    def test_requires_baseline(self):
        acc, p = accountant_and_processor()
        with pytest.raises(RuntimeError):
            acc.sample(p.activity_snapshot(), INTERVAL_S)

    def test_interval_validated(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        with pytest.raises(ValueError):
            acc.sample(p.activity_snapshot(), 0.0)

    def test_idle_interval_is_leakage_only(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        powers = acc.sample(p.activity_snapshot(), INTERVAL_S)
        assert powers == acc.leakage_powers()

    def test_active_interval_exceeds_leakage(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        p.run(1000)
        powers = acc.sample(p.activity_snapshot(), INTERVAL_S)
        leak = acc.leakage_powers()
        assert powers["IntExec0"] > leak["IntExec0"]
        assert powers["Icache"] > leak["Icache"]
        assert powers["IntQ0"] > leak["IntQ0"]

    def test_every_block_has_power(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        p.run(500)
        powers = acc.sample(p.activity_snapshot(), INTERVAL_S)
        assert set(powers) == set(acc.floorplan.names)
        assert all(v > 0 for v in powers.values())

    def test_alu_power_follows_priority_ladder(self):
        acc, p = accountant_and_processor("parser")
        acc.reset(p.activity_snapshot())
        p.run(4000)
        powers = acc.sample(p.activity_snapshot(), 4000 / 4.2e9)
        assert powers["IntExec0"] > powers["IntExec5"]

    def test_consecutive_samples_diff_correctly(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        p.run(1000)
        first = acc.sample(p.activity_snapshot(), INTERVAL_S)
        # No further work: next sample must fall back to leakage.
        second = acc.sample(p.activity_snapshot(), INTERVAL_S)
        assert second == acc.leakage_powers()
        assert first != second

    def test_typical_powers_bounds(self):
        acc, _ = accountant_and_processor()
        with pytest.raises(ValueError):
            acc.typical_powers(1.5)
        powers = acc.typical_powers(0.5)
        leak = acc.leakage_powers()
        assert all(powers[n] > leak[n] for n in powers)


class TestVectorPath:
    def test_sample_powers_matches_dict(self):
        """The vector fast path and the dict view agree element for
        element, in floorplan.names order."""
        acc, p = accountant_and_processor()
        acc2, _ = accountant_and_processor()
        snap0 = p.activity_snapshot()
        acc.reset(snap0)
        acc2.reset(snap0)
        p.run(1000)
        snap1 = p.activity_snapshot()
        vector = acc.sample_powers(snap1, INTERVAL_S)
        powers = acc2.sample(snap1, INTERVAL_S)
        assert list(vector) == [powers[name]
                                for name in acc.floorplan.names]

    def test_energy_totals_agree_between_paths(self):
        acc, p = accountant_and_processor()
        acc.reset(p.activity_snapshot())
        p.run(2000)
        acc.sample_powers(p.activity_snapshot(), INTERVAL_S)
        assert acc.total_energy_j == pytest.approx(
            sum(acc.block_energy_j.values()), rel=1e-9)

    def test_leakage_vector_cached(self):
        """leakage is constant, so the cached vector matches the dict
        recomputation exactly."""
        acc, _ = accountant_and_processor()
        leak = acc.leakage_powers()
        assert list(acc._leak_vec_w) == [leak[name]
                                         for name in acc.floorplan.names]
