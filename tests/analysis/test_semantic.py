"""Fixture tests for the deep semantic pass (REP101–REP104).

Each rule gets a seeded violation in a synthetic source tree laid out
like the real package (``power/``, ``pipeline/``, ``core/`` path
segments drive rule scoping), plus a suppressed and a
baseline-accepted variant, exercised through the real driver
(``lint_paths(..., deep=True)``).
"""

import json
import subprocess
import sys
from collections import Counter

import pytest

from repro.analysis.dimensions import (DIMENSIONLESS, dim_of_name,
                                       format_dim, parse_unit_chain)
from repro.analysis.lint import (lint_paths, load_baseline, main,
                                 write_baseline)
from repro.analysis.semantic import DEEP_RULES


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def deep_findings(root, select=None, baseline=None):
    report = lint_paths([str(root)], select=select, deep=True,
                        baseline=baseline)
    return report


def rule_ids(report):
    return [f.rule_id for f in report.findings]


class TestDeepRuleRegistry:
    def test_ids_are_stable_and_ordered(self):
        assert [r.rule_id for r in DEEP_RULES] == [
            "REP101", "REP102", "REP103", "REP104"]

    def test_every_rule_documents_itself(self):
        for rule in DEEP_RULES:
            assert rule.title
            assert rule.autofix_hint
            assert (rule.__class__.__doc__ or "").startswith(rule.rule_id)


class TestDimensionAlgebra:
    def test_suffix_chains_parse(self):
        assert parse_unit_chain("k") == (("K", 1),)
        assert parse_unit_chain("k_per_w") == (("J", -1), ("K", 1),
                                               ("s", 1))
        assert parse_unit_chain("bogus") is None

    def test_watts_are_joules_per_second(self):
        assert dim_of_name("power_w") == (("J", 1), ("s", -1))
        assert dim_of_name("energy_j") == (("J", 1),)
        assert dim_of_name("interval_s") == (("s", 1),)

    def test_unsuffixed_names_are_unknown(self):
        assert dim_of_name("utilization") is None
        assert dim_of_name("temps") is None

    def test_format_pretty_names(self):
        assert format_dim((("J", 1), ("s", -1))) == "W"
        assert format_dim(DIMENSIONLESS) == "1"
        assert format_dim((("K", 1),)) == "K"


class TestREP101Dimensional:
    def test_additive_mix_fires(self, tmp_path):
        write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]
        assert "[J]" in report.findings[0].message
        assert "[s]" in report.findings[0].message

    def test_missing_interval_conversion_fires(self, tmp_path):
        """Energy assigned to a watts name without / interval_s."""
        write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    power_w = energy_j * 1.0\n"
            "    return power_w\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]

    def test_correct_conversion_clean(self, tmp_path):
        write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    power_w = energy_j / interval_s\n"
            "    temp_k = 300.0\n"
            "    return power_w\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == []

    def test_nanojoule_constant_converts(self, tmp_path):
        write_tree(tmp_path, {"power/acct.py": (
            "NANOJOULE = 1e-9\n"
            "def sample(events_nj, interval_s):\n"
            "    power_w = events_nj * NANOJOULE / interval_s\n"
            "    return power_w\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == []

    def test_raw_nanojoule_joule_mix_fires(self, tmp_path):
        write_tree(tmp_path, {"power/acct.py": (
            "def total(events_nj, leak_j):\n"
            "    return events_nj + leak_j\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]

    def test_cross_module_return_dim(self, tmp_path):
        write_tree(tmp_path, {
            "power/conv.py": (
                "def to_watts(energy_j, interval_s):\n"
                "    return energy_j / interval_s\n"),
            "power/use.py": (
                "def report(x_j, dt_s):\n"
                "    temp_k = to_watts(x_j, dt_s)\n"
                "    return temp_k\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]
        assert "temp_k" in report.findings[0].message

    def test_call_argument_dimension_checked(self, tmp_path):
        write_tree(tmp_path, {
            "power/conv.py": (
                "def to_watts(energy_j, interval_s):\n"
                "    return energy_j / interval_s\n"),
            "power/use.py": (
                "def report(dt_s):\n"
                "    return to_watts(dt_s, dt_s)\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]
        assert "energy_j" in report.findings[0].message

    def test_cycles_scale_products_but_do_not_add(self, tmp_path):
        write_tree(tmp_path, {"pipeline/cfg.py": (
            "def interval(sensor_interval_cycles, cycle_time_s):\n"
            "    ok_s = sensor_interval_cycles * cycle_time_s\n"
            "    bad = sensor_interval_cycles + cycle_time_s\n"
            "    return ok_s, bad\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == ["REP101"]
        assert report.findings[0].line == 3

    def test_out_of_scope_file_not_reported(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == []

    def test_noqa_suppresses(self, tmp_path):
        write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s  # repro: noqa[REP101]\n")})
        report = deep_findings(tmp_path, select=["REP101"])
        assert rule_ids(report) == []
        assert report.suppressed == 1


REP102_FILES = {
    "pipeline/proc.py": (
        "class Processor:\n"
        "    def __init__(self):\n"
        "        self.stalled_until = 0\n"
        "    def step(self):\n"
        "        self.stalled_until = 5\n"
        "    def throttle(self, cycles):\n"
        "        self.throttled_until = cycles\n"
        "    def restore_state(self, state):\n"
        "        self.stalled_until = state['stalled_until']\n"),
    "core/dtm.py": (
        "class DTM:\n"
        "    def on_sample(self, proc):\n"
        "        proc.throttle(3)\n"),
}


class TestREP102MacroStep:
    def test_write_outside_boundary_fires(self, tmp_path):
        write_tree(tmp_path, REP102_FILES)
        report = deep_findings(tmp_path, select=["REP102"])
        assert rule_ids(report) == ["REP102"]
        finding = report.findings[0]
        assert finding.line == 5  # the write inside step()
        assert "stalled_until" in finding.message

    def test_on_sample_reachable_write_clean(self, tmp_path):
        """throttle() is called from on_sample: legal, line 7 quiet."""
        write_tree(tmp_path, REP102_FILES)
        report = deep_findings(tmp_path, select=["REP102"])
        assert all(f.line != 7 for f in report.findings)

    def test_callback_reachable_write_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pipeline/alu.py": (
                "class Unit:\n"
                "    def set_busy(self, value):\n"
                "        self.busy = value\n"),
            "core/fg.py": (
                "class Controller:\n"
                "    def __init__(self, turn_off):\n"
                "        self._turn_off = turn_off\n"
                "    def observe(self):\n"
                "        self._turn_off(True)\n"),
            "core/dtm.py": (
                "class DTM:\n"
                "    def __init__(self, unit):\n"
                "        self.ctrl = Controller(\n"
                "            turn_off=lambda v: unit.set_busy(v))\n"
                "    def on_sample(self):\n"
                "        self.ctrl.observe()\n"),
        })
        report = deep_findings(tmp_path, select=["REP102"])
        assert rule_ids(report) == []

    def test_off_set_mutation_fires(self, tmp_path):
        write_tree(tmp_path, {"pipeline/regfile.py": (
            "class Bank:\n"
            "    def poke(self, copy):\n"
            "        self._off.add(copy)\n")})
        report = deep_findings(tmp_path, select=["REP102"])
        assert rule_ids(report) == ["REP102"]

    def test_noqa_suppresses(self, tmp_path):
        files = dict(REP102_FILES)
        files["pipeline/proc.py"] = files["pipeline/proc.py"].replace(
            "        self.stalled_until = 5\n",
            "        self.stalled_until = 5  # repro: noqa[REP102]\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP102"])
        assert rule_ids(report) == []
        assert report.suppressed == 1


class TestREP103SoaDiscipline:
    def test_write_outside_pipeline_fires(self, tmp_path):
        write_tree(tmp_path, {"obs/report.py": (
            "def tally(bank):\n"
            "    bank.ops[0] += 1\n")})
        report = deep_findings(tmp_path, select=["REP103"])
        assert rule_ids(report) == ["REP103"]
        assert "'ops'" in report.findings[0].message

    def test_local_alias_write_fires(self, tmp_path):
        write_tree(tmp_path, {"obs/report.py": (
            "def tally(queue):\n"
            "    c = queue._c\n"
            "    c[3] += 1\n")})
        report = deep_findings(tmp_path, select=["REP103"])
        assert rule_ids(report) == ["REP103"]

    def test_write_inside_pipeline_clean(self, tmp_path):
        write_tree(tmp_path, {"pipeline/kernel.py": (
            "def flush(bank, acc):\n"
            "    bank.ops += acc\n")})
        report = deep_findings(tmp_path, select=["REP103"])
        assert rule_ids(report) == []

    def test_read_outside_pipeline_clean(self, tmp_path):
        write_tree(tmp_path, {"obs/report.py": (
            "def total(bank):\n"
            "    return int(bank.ops.sum())\n")})
        report = deep_findings(tmp_path, select=["REP103"])
        assert rule_ids(report) == []

    def test_noqa_suppresses(self, tmp_path):
        write_tree(tmp_path, {"obs/report.py": (
            "def tally(bank):\n"
            "    bank.ops[0] += 1  # repro: noqa[REP103]\n")})
        report = deep_findings(tmp_path, select=["REP103"])
        assert rule_ids(report) == []
        assert report.suppressed == 1


REP104_FILES = {
    "pipeline/processor.py": (
        "class Processor:\n"
        "    def step(self):\n"
        "        self.bank.ops[0] += 1\n"
        "        self.bank.busy_cycles[0] += 1\n"
        "        c = self._c\n"
        "        c[IQC_CYCLES] += 1\n"),
    "pipeline/kernel.py": (
        "def run_kernel(proc, ops_acc, ticks):\n"
        "    proc.bank.ops += ops_acc\n"
        "    c = proc._c\n"
        "    c[IQC_CYCLES] += ticks\n"),
}


class TestREP104KernelParity:
    def test_unlanded_counter_fires(self, tmp_path):
        """busy_cycles is bumped by step() but never by the kernel."""
        write_tree(tmp_path, REP104_FILES)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == ["REP104"]
        finding = report.findings[0]
        assert "busy_cycles" in finding.message
        assert finding.line == 4

    def test_landed_counters_clean(self, tmp_path):
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []

    def test_missing_kernel_file_is_silent(self, tmp_path):
        write_tree(tmp_path, {
            "pipeline/processor.py":
                REP104_FILES["pipeline/processor.py"]})
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []

    def test_noqa_suppresses(self, tmp_path):
        files = dict(REP104_FILES)
        files["pipeline/processor.py"] = files[
            "pipeline/processor.py"].replace(
            "        self.bank.busy_cycles[0] += 1\n",
            "        self.bank.busy_cycles[0] += 1"
            "  # repro: noqa[REP104]\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []
        assert report.suppressed == 1

    def test_batch_path_unlanded_fires(self, tmp_path):
        """Counters landed by run_kernel but unreachable from run_batch
        fire with the batched-path message."""
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n"
            "def run_batch(runs, ops_acc):\n"
            "    for run in runs:\n"
            "        run.proc.bank.ops += ops_acc\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == ["REP104", "REP104"]
        messages = [f.message for f in report.findings]
        assert all("batched kernel path" in m for m in messages)
        assert any("busy_cycles" in m for m in messages)
        assert any("IQC_CYCLES" in m for m in messages)

    def test_batch_path_via_helper_clean(self, tmp_path):
        """run_batch landing counters through a reachable helper is
        clean — parity is judged on the call graph, not one function."""
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def _land(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n"
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    _land(proc, ops_acc, busy_acc, ticks)\n"
            "def run_batch(runs, ops_acc, busy_acc, ticks):\n"
            "    for run in runs:\n"
            "        _land(run.proc, ops_acc, busy_acc, ticks)\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []

    def test_adoption_without_row_writeback_fires(self, tmp_path):
        """A batched adoption path that restores a leader snapshot but
        never writes the run's own counter row back is flagged."""
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def _land(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n"
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    _land(proc, ops_acc, busy_acc, ticks)\n"
            "def _adopt(run, blob, store):\n"
            "    run.proc.restore_state(pickle.loads(blob))\n"
            "def run_batch(runs, store, ops_acc, busy_acc, ticks):\n"
            "    for run in runs:\n"
            "        _land(run.proc, ops_acc, busy_acc, ticks)\n"
            "        _adopt(run, run.blob, store)\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == ["REP104"]
        message = report.findings[0].message
        assert "restores a leader snapshot" in message
        assert "_adopt" in message

    def test_adoption_with_row_writeback_clean(self, tmp_path):
        """Restoring plus storing the run's own row back is the legal
        merge/fork write-back shape."""
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def _land(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n"
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    _land(proc, ops_acc, busy_acc, ticks)\n"
            "def _adopt(run, blob, store):\n"
            "    own_row = store.row(run.index).copy()\n"
            "    run.proc.restore_state(pickle.loads(blob))\n"
            "    store.data[run.index] = own_row\n"
            "def run_batch(runs, store, ops_acc, busy_acc, ticks):\n"
            "    for run in runs:\n"
            "        _land(run.proc, ops_acc, busy_acc, ticks)\n"
            "        _adopt(run, run.blob, store)\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []

    def test_absent_run_batch_skips_batch_check(self, tmp_path):
        """Trees without a batched entry point are only held to per-run
        kernel parity (mirrors the missing-kernel-file behaviour)."""
        files = dict(REP104_FILES)
        files["pipeline/kernel.py"] = (
            "def run_kernel(proc, ops_acc, busy_acc, ticks):\n"
            "    proc.bank.ops += ops_acc\n"
            "    proc.bank.busy_cycles += busy_acc\n"
            "    c = proc._c\n"
            "    c[IQC_CYCLES] += ticks\n")
        write_tree(tmp_path, files)
        report = deep_findings(tmp_path, select=["REP104"])
        assert rule_ids(report) == []


class TestBaseline:
    def test_baseline_accepts_finding(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        report = deep_findings(root, select=["REP101"])
        assert len(report.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(report.findings, str(baseline_file))
        baseline = load_baseline(str(baseline_file))
        accepted = deep_findings(root, select=["REP101"],
                                 baseline=baseline)
        assert accepted.findings == ()
        assert accepted.baselined == 1
        assert accepted.ok

    def test_baseline_is_a_multiset(self, tmp_path):
        """One baseline entry absorbs one finding, not all lookalikes."""
        root = write_tree(tmp_path / "tree", {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    a = energy_j + interval_s\n"
            "    b = energy_j + interval_s\n"
            "    return a, b\n")})
        report = deep_findings(root, select=["REP101"])
        assert len(report.findings) == 2
        baseline = Counter({(f.rule_id, f.path.replace("\\", "/"),
                             f.message): 1
                            for f in report.findings[:1]})
        kept = deep_findings(root, select=["REP101"], baseline=baseline)
        assert len(kept.findings) == 1
        assert kept.baselined == 1

    def test_new_finding_not_masked_by_baseline(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        baseline = Counter({("REP101", "other/file.py", "unrelated"): 1})
        report = deep_findings(root, select=["REP101"],
                               baseline=baseline)
        assert len(report.findings) == 1


class TestDriverUx:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"power/ok.py": "X = 1\n"})
        assert main(["--deep", str(root), "--baseline", ""]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        assert main(["--deep", str(root), "--baseline", ""]) == 1

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_exit_two_on_rule_crash(self, tmp_path, monkeypatch,
                                    capsys):
        import repro.analysis.lint as lint_mod

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic rule crash")

        monkeypatch.setattr(lint_mod, "check_project", boom)
        root = write_tree(tmp_path, {"power/ok.py": "X = 1\n"})
        assert main(["--deep", str(root), "--baseline", ""]) == 2
        captured = capsys.readouterr()
        assert "internal error" in captured.err

    def test_json_format_includes_deep_findings(self, tmp_path,
                                                capsys):
        root = write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        code = main(["--deep", "--format", "json", str(root),
                     "--baseline", ""])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert "REP101" in {f["rule"] for f in payload["findings"]}
        assert "duration_s" in payload
        assert "baselined" in payload

    def test_stats_reports_wall_time(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"power/ok.py": "X = 1\n"})
        main(["--stats", str(root), "--baseline", ""])
        assert " ms]" in capsys.readouterr().out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        root = write_tree(tmp_path / "tree", {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        baseline_file = tmp_path / "base.json"
        code = main(["--deep", str(root), "--baseline",
                     str(baseline_file), "--write-baseline"])
        assert code == 0
        assert baseline_file.exists()
        # Second run with the freshly-written baseline: clean.
        assert main(["--deep", str(root), "--baseline",
                     str(baseline_file)]) == 0

    def test_select_deep_rule_without_deep_flag_is_quiet(self, tmp_path,
                                                         capsys):
        """--select REP101 without --deep runs no deep pass."""
        root = write_tree(tmp_path, {"power/acct.py": (
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")})
        assert main(["--select", "REP101", str(root),
                     "--baseline", ""]) == 0


class TestRepoIsClean:
    def test_deep_pass_on_src(self):
        """The acceptance gate: zero unsuppressed deep findings on the
        real tree (the checked-in baseline is empty)."""
        report = lint_paths(["src"], deep=True)
        assert report.findings == (), report.format()

    def test_cli_module_deep_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "--deep",
             "src"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
