"""Tests for the runtime sanitizer: clean runs stay silent, tampering
with any watched invariant raises immediately."""

import pytest

from repro.analysis.sanitize import (Sanitizer, SanitizerError,
                                     sanitize_enabled)
from repro.pipeline.isa import MicroOp, OpClass
from repro.sim.runner import SimulationConfig, Simulator, run_simulation


def small_config(**overrides):
    params = dict(benchmark="gzip", max_cycles=3_000, warmup_cycles=1_000,
                  sanitize=True)
    params.update(overrides)
    return SimulationConfig(**params)


class TestEnable:
    def test_env_values(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled()
        for value in ("", "0", "no", "off"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()

    def test_env_enables_full_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = run_simulation(small_config(sanitize=False))
        assert result.committed > 0


class TestCleanRun:
    def test_sanitized_run_completes_without_violations(self):
        sim = Simulator(small_config())
        result = sim.run()
        stats = sim.sanitizer.stats
        assert result.committed > 0
        assert stats.samples > 0
        assert stats.energy_checks > 0
        assert stats.temperature_checks > 0
        assert stats.queue_checks > 0
        assert stats.regfile_checks > 0
        assert stats.issue_checks > 0
        assert stats.violations == []

    def test_sanitized_run_matches_unsanitized(self):
        """The hooks observe; they must not perturb the simulation."""
        plain = run_simulation(small_config(sanitize=False))
        checked = run_simulation(small_config(sanitize=True))
        assert plain.committed == checked.committed
        assert plain.mean_temps == checked.mean_temps


class TestEnergyConservation:
    def test_tampered_total_raises(self):
        sim = Simulator(small_config())
        sim._warmup()
        sim.accountant.total_energy_j += 1.0
        with pytest.raises(SanitizerError, match="energy_conservation"):
            sim._on_sample(sim.processor)

    def test_dropped_block_energy_raises(self):
        sim = Simulator(small_config())
        sim._warmup()
        sim.processor.run(500)
        sim.accountant.block_energy_j["Icache"] = 0.0
        sim.accountant.block_energy_j.pop("Dcache", None)
        with pytest.raises(SanitizerError, match="energy_conservation"):
            sim._on_sample(sim.processor)


class TestTemperatureBounds:
    def test_runaway_power_raises(self):
        sim = Simulator(small_config())
        powers = {name: 1e6 for name in sim.floorplan.names}
        with pytest.raises(SanitizerError, match="temperature_bounds"):
            sim.thermal.step(powers, 1.0)

    def test_normal_step_passes(self):
        sim = Simulator(small_config())
        sim.thermal.step(sim.accountant.leakage_powers(), 1e-4)
        assert sim.sanitizer.stats.temperature_checks > 0
        assert sim.sanitizer.stats.violations == []


class TestQueueCoherence:
    def test_duplicate_uop_raises(self):
        sim = Simulator(small_config())
        op = MicroOp(0, OpClass.INT_ALU, dst=1, src1=2, src2=3)
        for _ in range(2):
            sim.processor.int_iq.insert(op, rob_index=0,
                                        waiting_tags={999})
        with pytest.raises(SanitizerError, match="queue_duplicates"):
            sim.dtm.on_sample(sim.processor)


class TestRegfileCoherence:
    def test_turnoff_without_busy_marking_raises(self):
        sim = Simulator(small_config())
        # Bypass Processor.turn_off_regfile_copy, which would mark the
        # mapped ALUs busy: the sanitizer must notice the gap.
        sim.processor.regfile.turn_off(0)
        with pytest.raises(SanitizerError, match="regfile_turnoff"):
            sim.dtm.on_sample(sim.processor)

    def test_proper_turnoff_passes(self):
        sim = Simulator(small_config())
        sim.processor.turn_off_regfile_copy(0)
        sim.dtm.on_sample(sim.processor)
        assert sim.sanitizer.stats.violations == []


class TestIssueToOffUnit:
    def test_start_on_busy_unit_raises(self):
        sim = Simulator(small_config())
        unit = sim.processor.int_alus[0]
        unit.set_busy(True)
        op = MicroOp(0, OpClass.INT_ALU, dst=1, src1=2, src2=3)
        with pytest.raises(SanitizerError, match="issue_to_off_unit"):
            unit.start(op, rob_index=0, now=0)

    def test_start_on_free_unit_passes(self):
        sim = Simulator(small_config())
        unit = sim.processor.int_alus[0]
        op = MicroOp(0, OpClass.INT_ALU, dst=1, src1=2, src2=3)
        unit.start(op, rob_index=0, now=0)
        assert sim.sanitizer.stats.issue_checks == 1


class TestErrorShape:
    def test_error_names_invariant_and_is_recorded(self):
        sanitizer = Sanitizer()
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer._fail("energy_conservation", "details")
        assert excinfo.value.invariant == "energy_conservation"
        assert "[energy_conservation]" in str(excinfo.value)
        assert sanitizer.stats.violations == ["energy_conservation: details"]
