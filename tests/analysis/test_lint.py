"""Tests for repro-lint: every rule fires on a known-bad fixture,
stays quiet on the sanctioned spelling, and honours suppression."""

import subprocess
import sys

import pytest

from repro.analysis.lint import LintReport, lint_paths, lint_source
from repro.analysis.rules import RULES


def findings_for(source, path="src/repro/thermal/fixture.py", **kwargs):
    report = lint_source(source, path=path, **kwargs)
    return report.findings


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRuleRegistry:
    def test_ids_are_stable_and_ordered(self):
        assert [r.rule_id for r in RULES] == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007"]

    def test_every_rule_documents_itself(self):
        for rule in RULES:
            assert rule.title
            assert rule.autofix_hint
            assert (rule.__class__.__doc__ or "").startswith(rule.rule_id)


class TestREP001UnseededRandom:
    def test_module_level_random_fires(self):
        findings = findings_for(
            "import random\nx = random.random()\n",
            path="src/repro/core/foo.py")
        assert "REP001" in rule_ids(findings)

    def test_unseeded_random_instance_fires(self):
        findings = findings_for(
            "import random\nrng = random.Random()\n",
            path="src/repro/core/foo.py")
        assert "REP001" in rule_ids(findings)

    def test_seeded_random_instance_clean(self):
        findings = findings_for(
            "import random\nrng = random.Random(42)\n",
            path="src/repro/core/foo.py")
        assert "REP001" not in rule_ids(findings)

    def test_import_alias_tracked(self):
        findings = findings_for(
            "import random as rnd\nx = rnd.choice([1, 2])\n",
            path="src/repro/core/foo.py")
        assert "REP001" in rule_ids(findings)

    def test_from_import_tracked(self):
        findings = findings_for(
            "from random import randint\nx = randint(0, 9)\n",
            path="src/repro/core/foo.py")
        assert "REP001" in rule_ids(findings)

    def test_generator_module_is_exempt(self):
        findings = findings_for(
            "import random\nx = random.random()\n",
            path="src/repro/workloads/generator.py")
        assert "REP001" not in rule_ids(findings)


class TestREP002SetIteration:
    def test_iterating_set_call_fires(self):
        findings = findings_for(
            "for x in set([3, 1, 2]):\n    print(x)\n")
        assert "REP002" in rule_ids(findings)

    def test_iterating_dict_keys_fires(self):
        findings = findings_for(
            "d = {'a': 1}\nfor k in d.keys():\n    print(k)\n")
        assert "REP002" in rule_ids(findings)

    def test_name_bound_to_set_fires(self):
        findings = findings_for(
            "def f():\n"
            "    pending = {1, 2, 3}\n"
            "    for x in pending:\n"
            "        print(x)\n")
        assert "REP002" in rule_ids(findings)

    def test_self_attribute_set_fires(self):
        findings = findings_for(
            "class Q:\n"
            "    def __init__(self):\n"
            "        self.off = set()\n"
            "    def drain(self):\n"
            "        for x in self.off:\n"
            "            print(x)\n")
        assert "REP002" in rule_ids(findings)

    def test_sorted_set_is_clean(self):
        findings = findings_for(
            "def f():\n"
            "    pending = {1, 2, 3}\n"
            "    for x in sorted(pending):\n"
            "        print(x)\n")
        assert "REP002" not in rule_ids(findings)

    def test_rebinding_to_list_is_clean(self):
        findings = findings_for(
            "def f():\n"
            "    items = {1, 2}\n"
            "    items = sorted(items)\n"
            "    for x in items:\n"
            "        print(x)\n")
        assert "REP002" not in rule_ids(findings)


class TestREP003UnitSuffix:
    def test_unsuffixed_quantity_param_fires_in_scoped_dir(self):
        findings = findings_for(
            "def step(self, interval_seconds: float) -> None:\n    pass\n",
            path="src/repro/power/foo.py")
        assert "REP003" in rule_ids(findings)

    def test_suffixed_param_clean(self):
        findings = findings_for(
            "def step(self, interval_s: float) -> None:\n    pass\n",
            path="src/repro/power/foo.py")
        assert "REP003" not in rule_ids(findings)

    def test_compound_suffix_clean(self):
        findings = findings_for(
            "class C:\n    convection_resistance_k_per_w: float = 0.8\n",
            path="src/repro/thermal/foo.py")
        assert "REP003" not in rule_ids(findings)

    def test_dataclass_field_fires(self):
        findings = findings_for(
            "class C:\n    die_thickness: float = 0.1\n",
            path="src/repro/thermal/foo.py")
        assert "REP003" in rule_ids(findings)

    def test_outside_scoped_dirs_no_suffix_requirement(self):
        findings = findings_for(
            "def step(self, interval_seconds: float) -> None:\n    pass\n",
            path="src/repro/pipeline/foo.py")
        assert "REP003" not in rule_ids(findings)

    def test_mixed_unit_arithmetic_fires_everywhere(self):
        findings = findings_for(
            "def f(temp_k, power_w):\n    return temp_k + power_w\n",
            path="src/repro/pipeline/foo.py")
        assert "REP003" in rule_ids(findings)

    def test_same_unit_arithmetic_clean(self):
        findings = findings_for(
            "def f(start_k, delta_k):\n    return start_k + delta_k\n",
            path="src/repro/thermal/foo.py")
        assert "REP003" not in rule_ids(findings)


class TestREP004MutableDefault:
    def test_list_default_fires(self):
        findings = findings_for("def f(items=[]):\n    pass\n")
        assert "REP004" in rule_ids(findings)

    def test_dict_call_default_fires(self):
        findings = findings_for("def f(cfg=dict()):\n    pass\n")
        assert "REP004" in rule_ids(findings)

    def test_kwonly_default_fires(self):
        findings = findings_for("def f(*, seen=set()):\n    pass\n")
        assert "REP004" in rule_ids(findings)

    def test_none_default_clean(self):
        findings = findings_for("def f(items=None):\n    pass\n")
        assert "REP004" not in rule_ids(findings)

    def test_tuple_default_clean(self):
        findings = findings_for("def f(items=()):\n    pass\n")
        assert "REP004" not in rule_ids(findings)


class TestREP005FrozenMutation:
    FROZEN = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Cfg:\n"
        "    x: int = 1\n")

    def test_attribute_assignment_fires(self):
        findings = findings_for(
            self.FROZEN + "def f(cfg: Cfg):\n    cfg.x = 2\n")
        assert "REP005" in rule_ids(findings)

    def test_object_setattr_fires(self):
        findings = findings_for(
            self.FROZEN
            + "def f(cfg: Cfg):\n    object.__setattr__(cfg, 'x', 2)\n")
        assert "REP005" in rule_ids(findings)

    def test_object_setattr_in_post_init_allowed(self):
        findings = findings_for(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Cfg:\n"
            "    x: int = 1\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 2)\n")
        assert "REP005" not in rule_ids(findings)

    def test_replace_is_clean(self):
        findings = findings_for(
            self.FROZEN
            + "import dataclasses\n"
            "def f(cfg: Cfg):\n"
            "    return dataclasses.replace(cfg, x=2)\n")
        assert "REP005" not in rule_ids(findings)

    def test_cross_file_frozen_class_via_extra_frozen(self):
        findings = findings_for(
            "def f(cfg: RemoteCfg):\n    cfg.x = 2\n",
            extra_frozen=["RemoteCfg"])
        assert "REP005" in rule_ids(findings)


class TestREP006LibraryPrint:
    SOURCE = "def f(x):\n    print(x)\n    return x\n"

    def test_print_in_library_module_fires(self):
        findings = findings_for(self.SOURCE,
                                path="src/repro/sim/runner.py")
        assert "REP006" in rule_ids(findings)

    @pytest.mark.parametrize("path", [
        "src/repro/cli.py",
        "src/repro/__main__.py",
        "src/repro/analysis/lint.py",
        "tests/sim/test_runner.py",
        "scripts/adhoc.py",
    ])
    def test_cli_entry_points_and_tests_exempt(self, path):
        findings = findings_for(self.SOURCE, path=path)
        assert "REP006" not in rule_ids(findings)

    def test_shadowed_print_is_clean(self):
        findings = findings_for(
            "def f(printer):\n    printer('x')\n",
            path="src/repro/sim/runner.py")
        assert "REP006" not in rule_ids(findings)

    def test_noqa_suppresses(self):
        report = lint_source(
            "def f(x):\n    print(x)  # repro: noqa[REP006]\n",
            path="src/repro/sim/runner.py")
        assert report.ok
        assert report.suppressed == 1

    def test_hint_points_at_obs_layer(self):
        findings = findings_for(self.SOURCE,
                                path="src/repro/sim/runner.py")
        rep006 = [f for f in findings if f.rule_id == "REP006"][0]
        assert "repro.obs" in rep006.format()


class TestREP007HotLoopDiscipline:
    def test_unmarked_function_ignored(self):
        findings = findings_for(
            "class C:\n"
            "    def slow(self):\n"
            "        for x in range(4):\n"
            "            buf = []\n"
            "            buf.append(self.a.b + self.a.b + self.a.b)\n")
        assert "REP007" not in rule_ids(findings)

    def test_marker_on_def_line_allocation_fires(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        buf = []\n"
            "        return buf\n")
        assert "REP007" in rule_ids(findings)

    def test_marker_on_line_above_fires(self):
        findings = findings_for(
            "class C:\n"
            "    # repro: hot-loop\n"
            "    def hot(self):\n"
            "        return list(self.items)\n")
        assert "REP007" in rule_ids(findings)

    def test_comprehension_fires(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        return [x for x in self.items]\n")
        assert "REP007" in rule_ids(findings)

    def test_dict_display_fires(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        return {'k': 1}\n")
        assert "REP007" in rule_ids(findings)

    def test_allocation_free_body_clean(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        self.count += 1\n"
            "        return self.count\n")
        assert "REP007" not in rule_ids(findings)

    def test_repeated_chain_fires_at_threshold(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        a = self.stats.cycles\n"
            "        b = self.stats.cycles\n"
            "        return a + b + self.stats.cycles\n")
        assert "REP007" in rule_ids(findings)
        message = [f for f in findings if f.rule_id == "REP007"][0].message
        assert "self.stats.cycles" in message

    def test_chain_below_threshold_clean(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        return self.stats.cycles + self.stats.cycles\n")
        assert "REP007" not in rule_ids(findings)

    def test_single_level_attribute_not_a_chain(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        return self.a + self.a + self.a + self.a\n")
        assert "REP007" not in rule_ids(findings)

    def test_hoisted_local_is_the_sanctioned_spelling(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        stats = self.stats\n"
            "        return stats.cycles + stats.cycles + stats.cycles\n")
        assert "REP007" not in rule_ids(findings)

    def test_deep_chain_counts_once_per_occurrence(self):
        # self.a.b.c must not double count its inner self.a.b prefix.
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        return self.a.b.c + self.a.b.c\n")
        assert "REP007" not in rule_ids(findings)

    def test_noqa_suppresses(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self):  # repro: hot-loop\n"
            "        buf = []  # repro: noqa[REP007]\n"
            "        return buf\n")
        assert "REP007" not in rule_ids(findings)

    def test_non_self_chains_ignored(self):
        findings = findings_for(
            "class C:\n"
            "    def hot(self, q):  # repro: hot-loop\n"
            "        return q.stats.cycles + q.stats.cycles "
            "+ q.stats.cycles\n")
        assert "REP007" not in rule_ids(findings)


class TestSuppression:
    def test_noqa_with_id_suppresses(self):
        report = lint_source(
            "def f(items=[]):  # repro: noqa[REP004]\n    pass\n")
        assert report.ok
        assert report.suppressed == 1

    def test_bare_noqa_suppresses_all(self):
        report = lint_source(
            "def f(items=[]):  # repro: noqa\n    pass\n")
        assert report.ok

    def test_noqa_for_other_rule_does_not_suppress(self):
        report = lint_source(
            "def f(items=[]):  # repro: noqa[REP001]\n    pass\n")
        assert not report.ok


class TestDriver:
    def test_repo_src_is_clean(self):
        report = lint_paths(["src"])
        assert report.ok, report.format()
        assert report.files_checked > 30

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths(["src"], select=["REP999"])

    def test_missing_path_raises(self):
        with pytest.raises(OSError, match="no such file"):
            lint_paths(["definitely/not/a/path"])

    def test_select_restricts_rules(self):
        report = lint_source("def f(items=[]):\n    pass\n",
                             select=["REP001"])
        assert report.ok

    def test_finding_format_includes_hint(self):
        findings = findings_for("def f(items=[]):\n    pass\n")
        rep004 = [f for f in findings if f.rule_id == "REP004"][0]
        text = rep004.format()
        assert "REP004" in text and "[fix:" in text

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(items=[]):\n    pass\n")
        good = tmp_path / "good.py"
        good.write_text("def f(items=None):\n    pass\n")
        run = lambda *a: subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", *a],
            capture_output=True, text=True)
        assert run(str(good)).returncode == 0
        assert run(str(bad)).returncode == 1
        assert run("--select", "NOPE", str(good)).returncode == 2

    def test_cli_list_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
            capture_output=True, text=True)
        assert result.returncode == 0
        for rule in RULES:
            assert rule.rule_id in result.stdout

    def test_cli_json_format(self, tmp_path):
        import json
        bad = tmp_path / "bad.py"
        bad.write_text("def f(items=[]):\n    pass\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint",
             "--format", "json", str(bad)],
            capture_output=True, text=True)
        payload = json.loads(result.stdout)
        assert payload["findings"][0]["rule"] == "REP004"
