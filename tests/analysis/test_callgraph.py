"""Unit tests for the project index / call graph built for the deep
lint pass, against a small synthetic package."""

import ast

from repro.analysis.callgraph import (CallGraph, build_project_index)
from repro.analysis.rules import FileContext


def ctx(path, source):
    return FileContext(path=path, source=source,
                       tree=ast.parse(source, filename=path))


def build(files):
    contexts = [ctx(path, source) for path, source in files.items()]
    index = build_project_index(contexts)
    return index, CallGraph(index)


PACKAGE = {
    "pkg/core.py": """
class Manager:
    def __init__(self, turn_off=None):
        self._turn_off = turn_off

    def on_sample(self):
        self.observe()

    def observe(self):
        self._turn_off(0)
""",
    "pkg/proc.py": """
class Processor:
    def set_busy(self, i, value):
        self.flags[i] = value

    def wire(self):
        return Manager(turn_off=lambda i: self.set_busy(i, True))

def helper():
    return 41

def unrelated():
    return helper() + 1
""",
}


class TestProjectIndex:
    def test_functions_and_classes_indexed(self):
        index, _ = build(PACKAGE)
        assert "pkg/core.py::Manager.on_sample" in index.functions
        assert index.classes["Manager"] == ["pkg/core.py"]
        names = {i.qualname for i in index.by_name["helper"]}
        assert names == {"pkg/proc.py::helper"}

    def test_method_key_includes_class(self):
        index, _ = build(PACKAGE)
        info = index.functions["pkg/core.py::Manager.observe"]
        assert info.method_key == "Manager.observe"
        assert info.class_name == "Manager"

    def test_lambda_registered_by_position(self):
        index, _ = build(PACKAGE)
        lambdas = [i for i in index.functions.values() if i.is_lambda]
        assert len(lambdas) == 1
        assert lambdas[0].path == "pkg/proc.py"
        assert (lambdas[0].path, lambdas[0].lineno) in index.lambdas_at


class TestCallGraphEdges:
    def test_name_call_resolves_to_project_function(self):
        _, graph = build(PACKAGE)
        assert ("pkg/proc.py::helper"
                in graph.callees("pkg/proc.py::unrelated"))

    def test_method_call_resolves_by_simple_name(self):
        _, graph = build(PACKAGE)
        assert ("pkg/core.py::Manager.observe"
                in graph.callees("pkg/core.py::Manager.on_sample"))

    def test_external_call_contributes_no_edges(self):
        files = dict(PACKAGE)
        files["pkg/ext.py"] = """
import numpy as np

def alloc():
    return np.zeros(4)
"""
        _, graph = build(files)
        assert graph.callees("pkg/ext.py::alloc") == set()

    def test_builtin_shadow_not_linked(self):
        files = {
            "pkg/shadow.py": """
def len(x):
    return 0

def use(x):
    return len(x)
""",
        }
        _, graph = build(files)
        assert graph.callees("pkg/shadow.py::use") == set()

    def test_callback_flows_through_keyword_and_attribute(self):
        """The DTM wiring pattern: a lambda passed as ``turn_off=``,
        stored on an attribute, called through the attribute."""
        index, graph = build(PACKAGE)
        observe = "pkg/core.py::Manager.observe"
        targets = graph.callees(observe)
        lam = next(i.qualname for i in index.functions.values()
                   if i.is_lambda)
        assert lam in targets
        reach = graph.reachable(["pkg/core.py::Manager.on_sample"])
        assert "pkg/proc.py::Processor.set_busy" in reach

    def test_computed_call_expands_to_address_taken(self):
        files = {
            "pkg/tab.py": """
def a():
    pass

def b():
    pass

HANDLERS = [a, b]

def dispatch(i):
    HANDLERS[i]()
""",
        }
        _, graph = build(files)
        targets = graph.callees("pkg/tab.py::dispatch")
        assert {"pkg/tab.py::a", "pkg/tab.py::b"} <= targets


class TestReachability:
    def test_roots_included_and_transitive(self):
        _, graph = build(PACKAGE)
        reach = graph.reachable(["pkg/core.py::Manager.on_sample"])
        assert "pkg/core.py::Manager.on_sample" in reach
        assert "pkg/core.py::Manager.observe" in reach
        assert "pkg/proc.py::unrelated" not in reach

    def test_unknown_root_ignored(self):
        _, graph = build(PACKAGE)
        assert graph.reachable(["no/such.py::f"]) == set()


class TestEnclosingFunction:
    def test_innermost_function_wins(self):
        files = {
            "pkg/nest.py": """
def outer():
    x = 1
    def inner():
        y = 2
        return y
    return inner
""",
        }
        index, graph = build(files)
        inner = index.functions["pkg/nest.py::outer.inner"]
        target = next(n for n in ast.walk(inner.node)
                      if isinstance(n, ast.Assign))
        found = graph.enclosing_function("pkg/nest.py", target)
        assert found is not None and found.name == "inner"

    def test_module_level_returns_none(self):
        files = {"pkg/mod.py": "X = 3\n\ndef f():\n    return X\n"}
        index, graph = build(files)
        tree = index.contexts[0].tree
        assign = tree.body[0]
        assert graph.enclosing_function("pkg/mod.py", assign) is None
