"""SARIF 2.1.0 export tests: structural validation of every emitted
document plus a golden-file snapshot."""

import json
import os

import pytest

from repro.analysis.lint import main
from repro.analysis.rules import RULES, Finding
from repro.analysis.sarif import (SARIF_VERSION, to_sarif,
                                  validate_sarif, write_sarif)
from repro.analysis.semantic import DEEP_RULES

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "lint.sarif")

FINDINGS = (
    Finding(path="src/repro/power/acct.py", line=12, col=4,
            rule_id="REP101",
            message="'a + b' mixes [J] and [s]",
            hint="convert explicitly"),
    Finding(path="src/repro/core/dtm.py", line=3, col=0,
            rule_id="REP102",
            message="gating state '.mode' written in tick(), which is "
                    "not reachable from an on_sample boundary",
            hint="route the write through a DTM mechanism"),
)


class TestToSarif:
    def test_emitted_document_is_valid(self):
        doc = to_sarif(FINDINGS)
        assert validate_sarif(doc) == []

    def test_version_and_schema(self):
        doc = to_sarif(FINDINGS)
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_all_rules_catalogued(self):
        doc = to_sarif(())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == [r.rule_id for r in (*RULES, *DEEP_RULES)]

    def test_result_points_at_finding(self):
        doc = to_sarif(FINDINGS)
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "REP101"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == \
            "src/repro/power/acct.py"
        assert loc["region"]["startLine"] == 12
        # SARIF columns are 1-based; Finding.col is 0-based.
        assert loc["region"]["startColumn"] == 5

    def test_rule_index_references_catalogue(self):
        doc = to_sarif(FINDINGS)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        for result in doc["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_empty_findings_still_valid(self):
        doc = to_sarif(())
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []


class TestGoldenSnapshot:
    def test_matches_checked_in_golden(self):
        rendered = json.dumps(to_sarif(FINDINGS), indent=2,
                              sort_keys=True) + "\n"
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert handle.read() == rendered

    def test_golden_is_valid_sarif(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert validate_sarif(json.load(handle)) == []


class TestValidator:
    def test_rejects_wrong_version(self):
        doc = to_sarif(())
        doc["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(doc))

    def test_rejects_missing_runs(self):
        assert validate_sarif({"version": "2.1.0", "runs": []})

    def test_rejects_message_without_text(self):
        doc = to_sarif(FINDINGS)
        del doc["runs"][0]["results"][0]["message"]["text"]
        assert any("message.text" in p for p in validate_sarif(doc))

    def test_rejects_zero_start_line(self):
        doc = to_sarif(FINDINGS)
        loc = doc["runs"][0]["results"][0]["locations"][0]
        loc["physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(doc))

    def test_rejects_rule_index_out_of_range(self):
        doc = to_sarif(FINDINGS)
        doc["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("ruleIndex" in p for p in validate_sarif(doc))

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["document is not an object"]


class TestWriteSarif:
    def test_roundtrip(self, tmp_path):
        out = tmp_path / "out.sarif"
        write_sarif(FINDINGS, str(out))
        doc = json.loads(out.read_text())
        assert validate_sarif(doc) == []
        assert len(doc["runs"][0]["results"]) == 2

    def test_driver_writes_sarif_for_deep_run(self, tmp_path, capsys):
        tree = tmp_path / "tree" / "power"
        tree.mkdir(parents=True)
        (tree / "acct.py").write_text(
            "def sample(energy_j, interval_s):\n"
            "    return energy_j + interval_s\n")
        out = tmp_path / "deep.sarif"
        code = main(["--deep", str(tmp_path / "tree"),
                     "--sarif", str(out), "--baseline", ""])
        assert code == 1
        doc = json.loads(out.read_text())
        assert validate_sarif(doc) == []
        assert any(r["ruleId"] == "REP101"
                   for r in doc["runs"][0]["results"])
