"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbmk" in out and "mesa" in out

    def test_run_smoke(self, capsys):
        code = main(["run", "gzip", "--cycles", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "hottest blocks" in out

    def test_run_with_techniques(self, capsys):
        code = main(["run", "parser", "--variant", "alu",
                     "--alus", "fine_grain", "--cycles", "2000"])
        assert code == 0

    def test_figure_smoke(self, capsys):
        code = main(["figure", "7", "--benchmarks", "parser",
                     "--cycles", "2000"])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "6", "--benchmarks", "doom3",
                  "--cycles", "2000"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
