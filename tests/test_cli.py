"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.events import event_from_dict


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the on-disk result/checkpoint cache at a throwaway dir."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbmk" in out and "mesa" in out

    def test_run_smoke(self, capsys):
        code = main(["run", "gzip", "--cycles", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "hottest blocks" in out

    def test_run_with_techniques(self, capsys):
        code = main(["run", "parser", "--variant", "alu",
                     "--alus", "fine_grain", "--cycles", "2000"])
        assert code == 0

    def test_figure_smoke(self, capsys):
        code = main(["figure", "7", "--benchmarks", "parser",
                     "--cycles", "2000"])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "6", "--benchmarks", "doom3",
                  "--cycles", "2000"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBench:
    def test_snapshot_and_history_provenance(self, cache_dir, tmp_path,
                                             monkeypatch, capsys):
        monkeypatch.setenv("REPRO_ACCEL", "auto")  # restored on teardown
        out = tmp_path / "bench.json"
        hist = tmp_path / "hist.jsonl"
        argv = ["bench", "--figures", "7", "--benchmarks", "parser",
                "--cycles", "1500", "--jobs", "2", "--accel", "0",
                "--output", str(out), "--history", str(hist)]
        assert main(argv) == 0
        report = json.loads(out.read_text())
        assert report["accel_backend"] == "kernel"
        assert report["accel_compile_s"] == 0.0
        assert report["grids"][0]["figure"] == "7"
        lines = hist.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["commit"]
        assert entry["accel_backend"] == "kernel"
        assert entry["config"] == {
            "figures": ["7"], "benchmarks": ["parser"],
            "cycles": 1500, "seed": 1, "jobs": 2}
        assert entry["grids"][0]["grid_cycles_per_s"] > 0
        # A second bench appends to the history; the snapshot stays
        # a single latest report.
        assert main(argv) == 0
        assert len(hist.read_text().splitlines()) == 2
        assert isinstance(json.loads(out.read_text()), dict)

    def test_accel_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "gzip", "--accel", "numpy"])
        assert args.accel == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gzip", "--accel", "jax"])


class TestRunTracing:
    def test_trace_prints_summary(self, capsys):
        code = main(["run", "perlbmk", "--variant", "alu",
                     "--alus", "fine_grain", "--cycles", "5000",
                     "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        code = main(["run", "perlbmk", "--variant", "alu",
                     "--alus", "fine_grain", "--cycles", "20000",
                     "--trace-out", str(path)])
        assert code == 0
        assert "trace written:" in capsys.readouterr().out
        events = [event_from_dict(json.loads(line))
                  for line in path.read_text().splitlines()]
        assert events
        assert {event.kind for event in events} >= {"ceiling_cross"}

    def test_untraced_run_prints_no_trace_line(self, capsys):
        assert main(["run", "gzip", "--cycles", "2000"]) == 0
        assert "trace:" not in capsys.readouterr().out


class TestProfile:
    def test_profile_smoke(self, capsys):
        code = main(["profile", "gzip", "--cycles", "2000",
                     "--warmup", "1000", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "stage wall-clock breakdown" in out


class TestCache:
    def test_info_empty(self, cache_dir, capsys):
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "results:     0 entries" in out
        assert "checkpoints: 0 entries" in out

    def test_clear_after_figure_run(self, cache_dir, capsys):
        assert main(["figure", "7", "--benchmarks", "parser",
                     "--cycles", "2000"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "results:     0 entries" not in capsys.readouterr().out
        assert main(["cache", "clear", "--checkpoints"]) == 0
        assert "checkpoint(s)" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "results:     0 entries" in capsys.readouterr().out


class TestReport:
    ARGS = ["report", "--figures", "7", "--benchmarks", "parser",
            "--cycles", "2000"]

    def test_markdown_to_stdout(self, cache_dir, capsys):
        assert main(self.ARGS + ["--output", "-"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "Figure 7" in out

    def test_writes_file_and_reports_cache_use(self, cache_dir,
                                               tmp_path, capsys):
        target = tmp_path / "REPORT.md"
        assert main(self.ARGS + ["--output", str(target)]) == 0
        assert "report written to" in capsys.readouterr().out
        assert "Figure 7" in target.read_text()
        # second render answers from cache
        assert main(self.ARGS + ["--output", str(target)]) == 0
        assert "0 parallel, 0 inline" in capsys.readouterr().out

    def test_html_format(self, cache_dir, tmp_path):
        target = tmp_path / "report.html"
        assert main(self.ARGS + ["--format", "html",
                                 "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<h2>Figure 7" in text

    def test_unknown_figure_rejected(self, cache_dir):
        with pytest.raises(SystemExit):
            main(["report", "--figures", "9", "--cycles", "2000"])
