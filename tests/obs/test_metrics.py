"""Tests for the metrics registry and its merge semantics."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               VectorCounter)


class TestCounter:
    def test_inc_and_merge_sums(self):
        registry = MetricsRegistry()
        registry.counter("toggles").inc()
        registry.counter("toggles").inc(4)
        other = MetricsRegistry()
        other.counter("toggles").inc(10)
        registry.merge(other)
        assert registry.counter("toggles").value == 15

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_merge_keeps_maximum(self):
        registry = MetricsRegistry()
        registry.gauge("peak_k").set(357.0)
        other = MetricsRegistry()
        other.gauge("peak_k").set(358.5)
        registry.merge(other)
        assert registry.gauge("peak_k").value == 358.5
        registry.merge(other)  # idempotent under re-merge of a peak
        assert registry.gauge("peak_k").value == 358.5

    def test_unset_gauge_merges_cleanly(self):
        registry = MetricsRegistry()
        registry.gauge("peak_k")
        other = MetricsRegistry()
        other.gauge("peak_k").set(10.0)
        registry.merge(other)
        assert registry.gauge("peak_k").value == 10.0
        registry.merge(MetricsRegistry.from_dict(
            {"peak_k": {"kind": "gauge", "value": None}}))
        assert registry.gauge("peak_k").value == 10.0


class TestVectorCounter:
    def test_add_auto_grows(self):
        vector = VectorCounter("alu.ops")
        vector.add(3, 7)
        assert vector.values == [0, 0, 0, 7]
        with pytest.raises(IndexError):
            vector.add(-1)

    def test_merge_zero_pads_shorter(self):
        registry = MetricsRegistry()
        registry.vector("alu.ops").add(1, 5)  # [0, 5]
        other = MetricsRegistry()
        other.vector("alu.ops").add(3, 2)  # [0, 0, 0, 2]
        registry.merge(other)
        assert registry.vector("alu.ops").values == [0, 5, 0, 2]


class TestHistogram:
    def test_observe_buckets_and_mean(self):
        histogram = Histogram("t", bounds=[350.0, 355.0, 358.0])
        for value in (349.0, 352.0, 356.0, 359.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(354.0)

    def test_merge_requires_matching_bounds(self):
        left = Histogram("t", bounds=[1.0, 2.0])
        left.observe(0.5)
        right = Histogram("t", bounds=[1.0, 2.0])
        right.observe(5.0)
        left.merge_payload(right.to_dict())
        assert left.counts == [1, 0, 1]
        with pytest.raises(ValueError, match="bounds disagree"):
            left.merge_payload(
                Histogram("t", bounds=[1.0, 3.0]).to_dict())

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("t", bounds=[])


class TestMetricsRegistry:
    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x", bounds=[1.0])

    def test_dict_round_trip_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(7.5)
        registry.vector("c").add(2, 9)
        registry.histogram("d", bounds=[1.0, 2.0]).observe(1.5)
        payload = json.loads(json.dumps(registry.to_dict()))
        rebuilt = MetricsRegistry.from_dict(payload)
        assert rebuilt.to_dict() == registry.to_dict()
        assert set(rebuilt.names()) == {"a", "b", "c", "d"}
        assert "a" in rebuilt and len(rebuilt) == 4

    def test_merge_dict_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            registry.merge_dict({"x": {"kind": "mystery", "value": 1}})

    def test_merge_dict_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(TypeError):
            registry.merge_dict({"x": {"kind": "gauge", "value": 1.0}})
