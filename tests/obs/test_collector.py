"""Tests for the ring-buffer collector and tracer adapters."""

import json

import pytest

from repro.obs.collector import (QueueTracer, TraceCollector, UnitTracer,
                                 trace_enabled)
from repro.obs.events import (ToggleEvent, UnitTurnoff, UnitTurnon,
                              event_from_dict)


def _toggle(cycle):
    return ToggleEvent(cycle=cycle, queue="IntQ", mode="toggled",
                       half_temps_k=(356.0, 357.0))


class TestTraceCollector:
    def test_emit_and_order(self):
        collector = TraceCollector(capacity=8)
        for cycle in (250, 500, 750):
            collector.emit(_toggle(cycle))
        assert len(collector) == 3
        assert [e.cycle for e in collector.events()] == [250, 500, 750]
        assert collector.total_emitted == 3
        assert collector.dropped == 0

    def test_ring_wrap_drops_oldest(self):
        collector = TraceCollector(capacity=4)
        for cycle in range(0, 1500, 250):  # 6 events into 4 slots
            collector.emit(_toggle(cycle))
        assert len(collector) == 4
        assert collector.dropped == 2
        assert [e.cycle for e in collector.events()] == [500, 750, 1000,
                                                         1250]
        # per-kind totals survive the wrap
        assert collector.counts == {"toggle": 6}
        assert collector.total_emitted == 6

    def test_events_of_filters_by_kind_or_class(self):
        collector = TraceCollector()
        collector.emit(_toggle(250))
        collector.emit(UnitTurnoff(cycle=500, block="IntExec0", copy=0,
                                   temperature_k=358.2))
        assert [e.cycle for e in collector.events_of("toggle")] == [250]
        assert [e.cycle for e in collector.events_of(UnitTurnoff)] == [500]

    def test_export_jsonl_round_trips(self, tmp_path):
        collector = TraceCollector()
        collector.emit(_toggle(250))
        collector.emit(UnitTurnon(cycle=500, block="IntExec1", copy=1))
        path = tmp_path / "events.jsonl"
        assert collector.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        restored = [event_from_dict(json.loads(line)) for line in lines]
        assert restored == collector.events()

    def test_summary_and_clear(self):
        collector = TraceCollector(capacity=1)
        assert collector.summary() == "no events"
        collector.emit(_toggle(0))
        collector.emit(_toggle(250))
        assert "toggle ×2" in collector.summary()
        assert "dropped" in collector.summary()
        collector.clear()
        assert len(collector) == 0
        assert collector.counts == {}
        assert collector.summary() == "no events"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)


class TestTraceEnabled:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert trace_enabled() is expected

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_enabled() is False


class TestTracerAdapters:
    def test_queue_tracer_stamps_clock_and_queue(self):
        collector = TraceCollector()
        clock = {"now": 1250}
        tracer = QueueTracer(collector, "FPQ", lambda: clock["now"])
        tracer.toggled("toggled", (356.0, 357.5), emergency=True)
        clock["now"] = 1500
        tracer.toggled("normal", (356.5, 356.0))
        first, second = collector.events()
        assert first == ToggleEvent(cycle=1250, queue="FPQ",
                                    mode="toggled",
                                    half_temps_k=(356.0, 357.5),
                                    emergency=True)
        assert second.cycle == 1500 and second.mode == "normal"

    def test_unit_tracer_maps_copy_to_block(self):
        collector = TraceCollector()
        tracer = UnitTracer(collector, ("IntReg0", "IntReg1"),
                            lambda: 4000)
        tracer.turnoff(1, 358.5)
        tracer.turnon(0)
        off, on = collector.events()
        assert off == UnitTurnoff(cycle=4000, block="IntReg1", copy=1,
                                  temperature_k=358.5)
        assert on == UnitTurnon(cycle=4000, block="IntReg0", copy=0,
                                temperature_k=None)
