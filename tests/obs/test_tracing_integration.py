"""End-to-end tracing invariants on full simulation runs.

The acceptance bar for the obs layer, exercised on real Figure-6/7
style configurations:

* tracing off (the default) leaves the result bit-identical and the
  collector absent;
* tracing on emits the documented event kinds with cycle stamps that
  land on sensor-sample boundaries and agree with the recorded sensor
  histories (ground truth for detection cycles);
* checkpoint restores and the parallel engine compose with tracing.
"""

import pytest

from repro.core.policies import (ALUPolicy, IssueQueuePolicy,
                                 TechniqueConfig)
from repro.obs.events import (CheckpointRestore, CoreResume, CoreStall,
                              ThermalCeilingCross, ToggleEvent,
                              UnitTurnoff, UnitTurnon)
from repro.sim.parallel import ExperimentEngine, ResultCache
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant


def _config(**overrides):
    params = dict(benchmark="perlbmk", variant=FloorplanVariant.ALU,
                  techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
                  max_cycles=20_000, warmup_cycles=4_000, seed=3)
    params.update(overrides)
    return SimulationConfig(**params)


def _strip_trace(payload):
    payload = dict(payload)
    payload["metrics"] = {k: v for k, v in payload["metrics"].items()
                          if not k.startswith("trace.")}
    return payload


class TestTracingOffIsFree:
    def test_no_collector_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        simulator = Simulator(_config(max_cycles=2_000))
        assert simulator.collector is None
        assert simulator.processor.collector is None
        assert simulator.dtm.collector is None

    def test_results_bit_identical_with_and_without_tracing(self):
        base = Simulator(_config()).run()
        traced = Simulator(_config(trace_events=True)).run()
        assert _strip_trace(traced.to_dict()) == _strip_trace(
            base.to_dict())

    def test_env_var_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        simulator = Simulator(_config(max_cycles=2_000))
        assert simulator.collector is not None


class TestTracedFigure7Run:
    """One ALU-constrained fine-grain run, traced end to end."""

    @pytest.fixture(scope="class")
    def traced(self):
        simulator = Simulator(_config(trace_events=True))
        result = simulator.run()
        return simulator, result

    def test_emits_at_least_three_event_kinds(self, traced):
        simulator, _ = traced
        kinds = {event.kind for event in simulator.collector.events()}
        assert {"ceiling_cross", "unit_turnoff", "unit_turnon"} <= kinds

    def test_event_cycles_land_on_sample_boundaries(self, traced):
        simulator, _ = traced
        interval = simulator.config.thermal.sensor_interval_cycles
        for event in simulator.collector.events():
            assert event.cycle % interval == 0

    def test_events_are_chronological(self, traced):
        simulator, _ = traced
        cycles = [event.cycle for event in simulator.collector.events()]
        assert cycles == sorted(cycles)

    def test_ceiling_cross_matches_sensor_history(self, traced):
        """Ground truth: the first crossing event for a block is
        stamped with exactly the sample cycle whose recorded reading
        first reached the ceiling."""
        simulator, _ = traced
        config = simulator.config
        interval = config.thermal.sensor_interval_cycles
        ceiling = config.thermal.max_temperature_k
        crossings = simulator.collector.events_of(ThermalCeilingCross)
        assert crossings
        seen = set()
        for event in crossings:
            assert event.temperature_k >= event.ceiling_k == ceiling
            if event.block in seen:
                continue
            seen.add(event.block)
            history = simulator.sensors.history(event.block)
            index = (event.cycle - config.warmup_cycles) // interval - 1
            assert history[index] == pytest.approx(event.temperature_k)
            assert (history[:index] < ceiling).all()

    def test_turnoff_events_carry_hot_blocks_and_match_stats(self, traced):
        simulator, result = traced
        offs = simulator.collector.events_of(UnitTurnoff)
        ons = simulator.collector.events_of(UnitTurnon)
        trigger = simulator.config.thermal.max_temperature_k
        assert len(offs) == result.alu_turnoffs
        for event in offs:
            assert event.block.startswith(("IntExec", "FPAdd"))
            assert event.temperature_k >= trigger
        for event in ons:
            if event.temperature_k is not None:
                hysteresis = simulator.config.thermal.turnoff_hysteresis_k
                assert event.temperature_k <= trigger - hysteresis

    def test_metrics_count_traced_events(self, traced):
        simulator, result = traced
        for kind, count in simulator.collector.counts.items():
            entry = result.metrics[f"trace.events.{kind}"]
            assert entry["value"] == count
        assert result.metrics["trace.dropped"]["value"] == 0


class TestStallEvents:
    @pytest.fixture(scope="class")
    def stalled(self):
        simulator = Simulator(_config(
            techniques=TechniqueConfig(alus=ALUPolicy.BASE),
            trace_events=True))
        result = simulator.run()
        return simulator, result

    def test_stall_events_match_dtm_stats(self, stalled):
        simulator, result = stalled
        stalls = simulator.collector.events_of(CoreStall)
        assert len(stalls) == result.global_stalls > 0
        cooling = simulator.config.thermal.cooling_cycles
        for event in stalls:
            assert event.reason in result.stall_reasons
            assert event.temporal == "stall"
            assert event.until_cycle == event.cycle + cooling

    def test_resume_stamped_with_true_resume_cycle(self, stalled):
        simulator, _ = stalled
        stalls = simulator.collector.events_of(CoreStall)
        resumes = simulator.collector.events_of(CoreResume)
        until = {event.until_cycle for event in stalls}
        assert resumes
        for event in resumes:
            assert event.cycle in until


class TestToggleEvents:
    def test_toggle_events_match_result_count(self):
        simulator = Simulator(_config(
            variant=FloorplanVariant.ISSUE_QUEUE,
            techniques=TechniqueConfig(
                issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
            trace_events=True))
        result = simulator.run()
        toggles = simulator.collector.events_of(ToggleEvent)
        assert len(toggles) == result.iq_toggles
        for event in toggles:
            assert event.queue in ("IntQ", "FPQ")
            assert event.mode in ("normal", "toggled")
            assert len(event.half_temps_k) == 2


class TestCheckpointRestoreEvent:
    def test_restored_run_emits_event_and_same_result(self):
        config = _config(trace_events=True, max_cycles=6_000)
        leader = Simulator(config)
        leader.prepare()
        blob = leader.capture_warm_state()
        fresh = leader.run()
        restored_sim = Simulator.from_checkpoint(config, blob)
        events = restored_sim.collector.events_of(CheckpointRestore)
        assert len(events) == 1
        assert events[0].benchmark == config.benchmark
        assert events[0].cycle == config.warmup_cycles
        restored = restored_sim.run()
        assert _strip_trace(restored.to_dict()) == _strip_trace(
            fresh.to_dict())


class TestFleetMetrics:
    def test_engine_merges_metrics_across_runs_and_cache(self, tmp_path):
        configs = [_config(max_cycles=3_000, benchmark=bench)
                   for bench in ("perlbmk", "parser")]
        cold = ExperimentEngine(jobs=1,
                                cache=ResultCache(tmp_path / "cache"))
        results = cold.run_many(configs)
        fleet = cold.stats.fleet_metrics
        expected = sum(sum(r.metrics["alu.ops"]["values"])
                       for r in results)
        assert sum(fleet.vector("alu.ops").values) == expected
        peaks = [r.metrics["temp.peak_k"]["value"] for r in results]
        assert fleet.gauge("temp.peak_k").value == max(peaks)

        warm = ExperimentEngine(jobs=1,
                                cache=ResultCache(tmp_path / "cache"))
        warm.run_many(configs)
        assert warm.stats.cache_hits == len(configs)
        assert (warm.stats.fleet_metrics.to_dict()
                == cold.stats.fleet_metrics.to_dict())
