"""Tests for the typed trace-event taxonomy."""

import pytest

from repro.obs.events import (EVENT_TYPES, CheckpointRestore, CoreResume,
                              CoreStall, ThermalCeilingCross, ToggleEvent,
                              UnitTurnoff, UnitTurnon, event_from_dict)

ALL_EVENTS = [
    ToggleEvent(cycle=250, queue="IntQ", mode="toggled",
                half_temps_k=(356.5, 357.25), emergency=True),
    UnitTurnoff(cycle=500, block="IntExec5", copy=5, temperature_k=358.2),
    UnitTurnon(cycle=750, block="IntExec5", copy=5, temperature_k=355.9),
    UnitTurnon(cycle=750, block="IntExec5", copy=5, temperature_k=None),
    CoreStall(cycle=1000, reason="issue_queue", until_cycle=43_000,
              temporal="stall"),
    CoreResume(cycle=43_000, reason="issue_queue", temporal="stall"),
    ThermalCeilingCross(cycle=1250, block="IntReg0",
                        temperature_k=358.4, ceiling_k=358.0),
    CheckpointRestore(cycle=12_000, benchmark="gzip", trace_position=9000),
]


class TestEventShape:
    @pytest.mark.parametrize("event", ALL_EVENTS,
                             ids=lambda e: type(e).__name__)
    def test_round_trip(self, event):
        payload = event.to_dict()
        assert payload["kind"] == event.kind
        assert event_from_dict(payload) == event

    def test_to_dict_is_json_shaped(self):
        payload = ALL_EVENTS[0].to_dict()
        assert payload["half_temps_k"] == [356.5, 357.25]
        import json
        json.dumps(payload)

    def test_registry_covers_all_kinds(self):
        kinds = {type(e).kind for e in ALL_EVENTS}
        assert kinds == set(EVENT_TYPES)
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "meltdown", "cycle": 1})
        with pytest.raises(ValueError):
            event_from_dict({"cycle": 1})

    def test_events_are_frozen(self):
        with pytest.raises(AttributeError):
            ALL_EVENTS[0].cycle = 99
