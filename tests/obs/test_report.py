"""Tests for sparklines, the report document model, and generation."""

import pytest

from repro.obs.report import Report, generate
from repro.obs.sparkline import BARS, downsample, sparkline
from repro.sim.parallel import ExperimentEngine, ResultCache


class TestSparkline:
    def test_maps_extremes_to_first_and_last_glyph(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(text) == 4
        assert text[0] == BARS[0]
        assert text[-1] == BARS[-1]

    def test_flat_series_renders_low(self):
        assert sparkline([5.0, 5.0, 5.0]) == BARS[0] * 3

    def test_pinned_scale_clamps(self):
        text = sparkline([0.0, 10.0], lo=2.0, hi=4.0)
        assert text == BARS[0] + BARS[-1]

    def test_empty(self):
        assert sparkline([]) == ""


class TestDownsample:
    def test_short_series_passes_through(self):
        assert downsample([1, 2, 3], 8) == [1.0, 2.0, 3.0]

    def test_window_means(self):
        assert downsample([0.0, 2.0, 4.0, 6.0], 2) == [1.0, 5.0]

    def test_bounded_length(self):
        out = downsample(list(range(1000)), 64)
        assert len(out) <= 64

    def test_points_must_be_positive(self):
        with pytest.raises(ValueError):
            downsample([1.0], 0)


class TestReportDocument:
    def _sample(self):
        report = Report("Title")
        report.heading(2, "Section")
        report.paragraph("Some prose & <markup>.")
        report.table(("a", "b"), [(1, 2.5), ("x", "y")])
        report.pre("line1\nline2")
        return report

    def test_markdown_rendering(self):
        text = self._sample().to_markdown()
        assert "# Title" in text
        assert "## Section" in text
        assert "| a | b |" in text
        assert "| 1 | 2.500 |" in text
        assert "```\nline1\nline2\n```" in text

    def test_html_rendering_escapes(self):
        text = self._sample().to_html()
        assert "<h1>Title</h1>" in text
        assert "&amp; &lt;markup&gt;" in text
        assert "<td>2.500</td>" in text
        assert "<pre>line1\nline2</pre>" in text


class TestGenerate:
    def _engine(self, tmp_path):
        return ExperimentEngine(jobs=1,
                                cache=ResultCache(tmp_path / "cache"))

    def test_report_covers_requested_figures(self, tmp_path):
        engine = self._engine(tmp_path)
        report = generate(figures=("7",), benchmarks=("parser",),
                          max_cycles=3_000, engine=engine)
        text = report.to_markdown()
        assert "Figure 7" in text
        assert "parser" in text
        assert "Thermal timelines" in text
        assert "Run accounting" in text

    def test_cached_results_rerender_without_simulating(self, tmp_path):
        cold = self._engine(tmp_path)
        first = generate(figures=("7",), benchmarks=("parser",),
                         max_cycles=3_000, engine=cold).to_markdown()
        warm = self._engine(tmp_path)
        second = generate(figures=("7",), benchmarks=("parser",),
                          max_cycles=3_000, engine=warm).to_markdown()
        assert warm.stats.total == warm.stats.cache_hits > 0
        assert warm.stats.inline_runs == warm.stats.parallel_runs == 0
        # identical figures, cached or not; only the accounting
        # paragraphs (which report where answers came from — the cache
        # line, and the divergence line that only a simulating render
        # emits) may differ
        def _body(text):
            body = []
            for line in text.splitlines():
                if ("answered from cache" in line
                        or "Divergence accounting" in line):
                    continue
                if not line and body and not body[-1]:
                    continue
                body.append(line)
            return body
        assert _body(second) == _body(first)

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figures"):
            generate(figures=("9",), engine=self._engine(tmp_path))
