"""Tests for the activity-toggling controller."""

import pytest

from repro.core.activity_toggle import ActivityToggler
from repro.pipeline.issue_queue import CompactingIssueQueue, QueueMode
from repro.pipeline.isa import MicroOp, OpClass


def op(seq):
    return MicroOp(seq, OpClass.INT_ALU, dst=1)


def queue_with_occupancy(n=32, occupancy=6):
    q = CompactingIssueQueue(n, 6, replay_window=1)
    for i in range(occupancy):
        q.insert(op(i), i, set())
    return q


def toggler_with_activity(q, active_half=0, **kwargs):
    """Build a toggler, then record activity so its windowed delta
    (computed against the construction-time baseline) sees it."""
    toggler = ActivityToggler(q, **kwargs)
    q.counters.counter_evals[active_half] += 100
    return toggler


class TestToggleDecision:
    def test_toggles_when_hot_half_is_active(self):
        q = queue_with_occupancy()
        toggler = toggler_with_activity(q, active_half=0, threshold_k=0.5)
        assert toggler.observe((351.0, 350.0)) is True
        assert q.mode is QueueMode.TOGGLED

    def test_no_toggle_below_threshold(self):
        q = queue_with_occupancy()
        toggler = toggler_with_activity(q, active_half=0, threshold_k=0.5)
        assert toggler.observe((350.4, 350.0)) is False

    def test_no_toggle_when_hot_half_inactive(self):
        q = queue_with_occupancy()
        toggler = toggler_with_activity(q, active_half=0, threshold_k=0.5)
        # Upper half hot but all activity is in the lower half.
        assert toggler.observe((350.0, 352.0)) is False

    def test_refractory_period(self):
        q = queue_with_occupancy()
        toggler = toggler_with_activity(q, active_half=0, threshold_k=0.5,
                                        refractory_samples=3)
        assert toggler.observe((352.0, 350.0)) is True
        # Now activity moves to half 1 (toggled mode tail region).
        for _ in range(3):
            q.counters.counter_evals[1] += 100
            assert toggler.observe((350.0, 353.0)) is False  # cooling off
        # After a revert-to-normal below, mode flips back; just check
        # the cooldown expired and a decision is possible again.
        assert toggler.stats.toggles >= 1

    def test_occupancy_guard_blocks_saturated_queue(self):
        q = CompactingIssueQueue(32, 6, replay_window=1)
        for i in range(30):
            q.insert(op(i), i, set())
        # Accumulate windowed occupancy.
        for _ in range(10):
            q.tick()
        q.counters.counter_evals[1] += 100
        toggler = ActivityToggler(q, threshold_k=0.5)
        assert toggler.observe((350.0, 352.0)) is False
        assert q.mode is QueueMode.NORMAL

    def test_saturation_revert(self):
        q = queue_with_occupancy(occupancy=4)
        toggler = toggler_with_activity(q, active_half=0, threshold_k=0.5,
                                        refractory_samples=0)
        toggler.observe((352.0, 350.0))
        assert q.mode is QueueMode.TOGGLED
        # The queue saturates: next observation reverts.
        while q.can_insert():
            q.insert(op(100 + len(q)), 100, set())
        assert toggler.observe((350.0, 350.1)) is True
        assert q.mode is QueueMode.NORMAL

    def test_stats_track_imbalance(self):
        q = queue_with_occupancy()
        toggler = ActivityToggler(q)
        toggler.observe((350.0, 353.5))
        assert toggler.stats.max_imbalance_k == pytest.approx(3.5)
        assert toggler.stats.samples == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            ActivityToggler(queue_with_occupancy(), threshold_k=0.0)
