"""Tests for the DTM orchestrator."""

import pytest

from repro.core.dtm import ThermalManager
from repro.core.mapping import (MappingKind, completely_balanced_mapping,
                                priority_mapping)
from repro.core.policies import (ALUPolicy, IssueQueuePolicy, RegFilePolicy,
                                 TechniqueConfig)
from repro.pipeline.config import ThermalConfig
from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.processor import Processor
from repro.thermal.floorplan import FloorplanVariant, ev6_floorplan
from repro.thermal.rc_model import ThermalModel
from repro.thermal.sensors import SensorBank


def ops(n=100000):
    for seq in range(n):
        yield MicroOp(seq, OpClass.INT_ALU, dst=1 + seq % 20)


def build(techniques, mapping=None):
    thermal_config = ThermalConfig()
    model = ThermalModel(ev6_floorplan(FloorplanVariant.BASE),
                         ambient_k=thermal_config.ambient_k)
    processor = Processor(ops(), mapping=mapping,
                          round_robin_alus=techniques.round_robin_alus)
    sensors = SensorBank(model)
    manager = ThermalManager(processor, sensors, thermal_config,
                             techniques)
    return manager, processor, model


def set_all(model, temp):
    model.set_temperatures({n: temp for n in model.floorplan.names})


class TestBasePolicies:
    def test_cool_chip_never_stalls(self):
        manager, processor, model = build(TechniqueConfig())
        set_all(model, 340.0)
        manager.on_sample(processor)
        assert not processor.is_stalled
        assert manager.stats.global_stalls == 0

    def test_hot_alu_stalls_base_policy(self):
        manager, processor, model = build(TechniqueConfig())
        set_all(model, 340.0)
        model.set_temperatures({"IntExec0": 358.5})
        manager.on_sample(processor)
        assert processor.is_stalled
        assert manager.stats.stall_reasons == {"alu": 1}

    def test_hot_queue_half_always_stalls(self):
        techniques = TechniqueConfig(
            issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING)
        manager, processor, model = build(techniques)
        set_all(model, 340.0)
        model.set_temperatures({"IntQ1": 359.0})
        manager.on_sample(processor)
        assert processor.is_stalled

    def test_hot_regfile_copy_stalls_without_turnoff(self):
        techniques = TechniqueConfig(
            regfile=RegFilePolicy(MappingKind.PRIORITY,
                                  fine_grain_turnoff=False))
        manager, processor, model = build(techniques)
        set_all(model, 340.0)
        model.set_temperatures({"IntReg0": 358.5})
        manager.on_sample(processor)
        assert processor.is_stalled

    def test_failsafe_for_other_blocks(self):
        manager, processor, model = build(TechniqueConfig())
        set_all(model, 340.0)
        model.set_temperatures({"Icache": 359.0})
        manager.on_sample(processor)
        assert "other:Icache" in manager.stats.stall_reasons


class TestFineGrainPolicies:
    def test_hot_alu_turned_off_not_stalled(self):
        techniques = TechniqueConfig(alus=ALUPolicy.FINE_GRAIN)
        manager, processor, model = build(techniques)
        set_all(model, 340.0)
        model.set_temperatures({"IntExec0": 358.5})
        manager.on_sample(processor)
        assert not processor.is_stalled
        assert processor.int_alus[0].busy
        assert not processor.int_alus[1].busy

    def test_all_alus_hot_forces_stall(self):
        techniques = TechniqueConfig(alus=ALUPolicy.FINE_GRAIN)
        manager, processor, model = build(techniques)
        set_all(model, 340.0)
        model.set_temperatures({f"IntExec{i}": 359.0 for i in range(6)})
        manager.on_sample(processor)
        assert processor.is_stalled
        assert "all_alus_off" in manager.stats.stall_reasons

    def test_hot_rf_copy_turned_off_blocks_its_alus(self):
        techniques = TechniqueConfig(
            regfile=RegFilePolicy(MappingKind.PRIORITY,
                                  fine_grain_turnoff=True))
        manager, processor, model = build(techniques)
        set_all(model, 340.0)
        model.set_temperatures({"IntReg0": 358.0})
        manager.on_sample(processor)
        assert not processor.is_stalled
        assert processor.regfile.is_off(0)
        assert processor.regfile.blocked_alus() == {0, 1, 2}

    def test_rf_turnoff_triggers_below_critical(self):
        """Copies turn off rf_turnoff_margin_k below the ceiling so
        writes can continue while cooling (paper 2.3 solution 1)."""
        techniques = TechniqueConfig(
            regfile=RegFilePolicy(MappingKind.PRIORITY,
                                  fine_grain_turnoff=True))
        manager, processor, model = build(techniques)
        config = ThermalConfig()
        set_all(model, 340.0)
        just_below = (config.max_temperature_k
                      - config.rf_turnoff_margin_k + 0.1)
        model.set_temperatures({"IntReg0": just_below})
        manager.on_sample(processor)
        assert processor.regfile.is_off(0)

    def test_completely_balanced_mapping_cannot_turn_off(self):
        techniques = TechniqueConfig(
            regfile=RegFilePolicy(MappingKind.COMPLETELY_BALANCED,
                                  fine_grain_turnoff=True))
        manager, processor, model = build(
            techniques, mapping=completely_balanced_mapping(6, 2))
        assert manager.rf_controller is None
        set_all(model, 340.0)
        model.set_temperatures({"IntReg0": 359.0})
        manager.on_sample(processor)
        assert processor.is_stalled  # falls back to the temporal technique

    def test_wrong_processor_rejected(self):
        manager, processor, model = build(TechniqueConfig())
        other = Processor(ops())
        with pytest.raises(ValueError):
            manager.on_sample(other)
