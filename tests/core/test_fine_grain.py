"""Tests for the fine-grain turnoff controller."""

import pytest

from repro.core.fine_grain import FineGrainController


class Recorder:
    def __init__(self):
        self.off = set()

    def turn_off(self, copy):
        self.off.add(copy)

    def turn_on(self, copy):
        self.off.discard(copy)


def make(n=4, trigger=358.0, hysteresis=0.4):
    rec = Recorder()
    ctl = FineGrainController(n, trigger, hysteresis,
                              turn_off=rec.turn_off, turn_on=rec.turn_on)
    return ctl, rec


class TestThermostat:
    def test_turns_off_at_trigger(self):
        ctl, rec = make()
        ctl.observe([358.0, 350.0, 350.0, 350.0])
        assert rec.off == {0}
        assert ctl.stats.turnoff_events == 1

    def test_stays_off_within_hysteresis(self):
        ctl, rec = make()
        ctl.observe([358.5, 350.0, 350.0, 350.0])
        ctl.observe([357.8, 350.0, 350.0, 350.0])  # above trigger-hyst
        assert rec.off == {0}

    def test_turns_back_on_below_hysteresis(self):
        ctl, rec = make()
        ctl.observe([358.5, 350.0, 350.0, 350.0])
        ctl.observe([357.5, 350.0, 350.0, 350.0])
        assert rec.off == set()
        assert ctl.stats.turnon_events == 1

    def test_all_off_signals_fallback(self):
        ctl, rec = make(n=2)
        assert ctl.observe([360.0, 350.0]) is False
        assert ctl.observe([360.0, 360.0]) is True
        assert ctl.stats.all_off_events == 1

    def test_per_copy_counts(self):
        ctl, _ = make(n=3)
        ctl.observe([360.0, 350.0, 360.0])
        assert ctl.stats.per_copy == [1, 0, 1]

    def test_force_all_on(self):
        ctl, rec = make(n=3)
        ctl.observe([360.0, 360.0, 360.0])
        ctl.force_all_on()
        assert rec.off == set()
        assert ctl.off == [False, False, False]

    def test_temp_vector_length_checked(self):
        ctl, _ = make(n=3)
        with pytest.raises(ValueError):
            ctl.observe([350.0, 350.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            FineGrainController(0, 358.0, 0.4, lambda i: None,
                                lambda i: None)
        with pytest.raises(ValueError):
            FineGrainController(2, 358.0, -1.0, lambda i: None,
                                lambda i: None)
