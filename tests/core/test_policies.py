"""Tests for the policy configuration surface."""

from repro.core.mapping import MappingKind
from repro.core.policies import (ALL_TECHNIQUES, BASELINE, ALUPolicy,
                                 IssueQueuePolicy, RegFilePolicy,
                                 TechniqueConfig)


class TestTechniqueConfig:
    def test_defaults_are_conservative(self):
        config = TechniqueConfig()
        assert config.issue_queue is IssueQueuePolicy.BASE
        assert config.alus is ALUPolicy.BASE

    def test_round_robin_flag(self):
        assert TechniqueConfig(alus=ALUPolicy.ROUND_ROBIN).round_robin_alus
        assert not TechniqueConfig(alus=ALUPolicy.FINE_GRAIN).round_robin_alus

    def test_presets(self):
        assert ALL_TECHNIQUES.issue_queue is IssueQueuePolicy.ACTIVITY_TOGGLING
        assert ALL_TECHNIQUES.alus is ALUPolicy.FINE_GRAIN
        assert ALL_TECHNIQUES.regfile.fine_grain_turnoff
        assert not BASELINE.regfile.fine_grain_turnoff

    def test_regfile_policy_label(self):
        policy = RegFilePolicy(MappingKind.BALANCED, fine_grain_turnoff=True)
        assert "balanced" in policy.label()
        assert "turnoff" in policy.label()
