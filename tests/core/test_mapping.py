"""Tests for register-file port mappings (paper Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (MappingKind, balanced_mapping,
                                completely_balanced_mapping, make_mapping,
                                priority_mapping)


class TestPriorityMapping:
    def test_groups_by_priority(self):
        m = priority_mapping(6, 2)
        assert m.copies_for(0) == (0, 0)
        assert m.copies_for(2) == (0, 0)
        assert m.copies_for(3) == (1, 1)
        assert m.copies_for(5) == (1, 1)

    def test_alus_on_copy(self):
        m = priority_mapping(6, 2)
        assert m.alus_on_copy(0) == [0, 1, 2]
        assert m.alus_on_copy(1) == [3, 4, 5]

    def test_supports_turnoff(self):
        assert priority_mapping(6, 2).supports_turnoff

    def test_figure4_example(self):
        """Paper Figure 4: priority 0,1 on copy 0; 2,3 on copy 1."""
        m = priority_mapping(4, 2)
        assert m.copies_for(0) == (0, 0)
        assert m.copies_for(1) == (0, 0)
        assert m.copies_for(2) == (1, 1)
        assert m.copies_for(3) == (1, 1)


class TestBalancedMapping:
    def test_interleaves_priorities(self):
        m = balanced_mapping(6, 2)
        assert m.copies_for(0) == (0, 0)
        assert m.copies_for(1) == (1, 1)
        assert m.copies_for(4) == (0, 0)

    def test_figure4_example(self):
        """Paper Figure 4: priority 0,2 on copy 0; 1,3 on copy 1."""
        m = balanced_mapping(4, 2)
        assert m.alus_on_copy(0) == [0, 2]
        assert m.alus_on_copy(1) == [1, 3]

    def test_supports_turnoff(self):
        assert balanced_mapping(6, 2).supports_turnoff


class TestCompletelyBalanced:
    def test_one_port_each_copy(self):
        m = completely_balanced_mapping(6, 2)
        for alu in range(6):
            assert sorted(m.copies_for(alu)) == [0, 1]

    def test_cannot_turn_off_a_copy(self):
        assert not completely_balanced_mapping(6, 2).supports_turnoff

    def test_requires_two_copies(self):
        with pytest.raises(ValueError):
            completely_balanced_mapping(6, 3)


class TestFactoriesAndValidation:
    def test_make_mapping_dispatches(self):
        for kind in MappingKind:
            m = make_mapping(kind, 6, 2)
            assert m.kind is kind

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            priority_mapping(5, 2)

    def test_zero_copies_rejected(self):
        with pytest.raises(ValueError):
            balanced_mapping(6, 0)


@given(n_alus=st.sampled_from([2, 4, 6, 8]),
       kind=st.sampled_from(list(MappingKind)))
@settings(max_examples=40, deadline=None)
def test_every_mapping_covers_all_ports(n_alus, kind):
    m = make_mapping(kind, n_alus, 2)
    # Two ports per ALU, all wired somewhere.
    assert sum(m.read_ports_per_copy()) == 2 * n_alus
    # Each copy serves at least one port.
    assert all(count > 0 for count in m.read_ports_per_copy())
    # Turning off all copies blocks every ALU.
    blocked = set()
    for copy in range(2):
        blocked.update(m.alus_on_copy(copy))
    assert blocked == set(range(n_alus))
