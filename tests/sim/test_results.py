"""Tests for result records and formatting."""

import json

import numpy as np
import pytest

from repro.sim.results import (SimulationResult, format_table,
                               geometric_mean_speedup, mean_speedup,
                               speedup)


def result(ipc_cycles=(1000, 1000), **overrides):
    committed, cycles = ipc_cycles
    params = dict(
        benchmark="x", technique_label="t", cycles=cycles,
        committed=committed, stall_cycles=0, global_stalls=0,
        stall_reasons={}, iq_toggles=0, alu_turnoffs=0, rf_turnoffs=0,
        mean_temps={"IntQ0": 350.0}, max_temps={"IntQ0": 355.0},
    )
    params.update(overrides)
    return SimulationResult(**params)


class TestSimulationResult:
    def test_ipc(self):
        assert result((1500, 1000)).ipc == pytest.approx(1.5)

    def test_zero_cycles(self):
        assert result((0, 0)).ipc == 0.0

    def test_temp_accessors(self):
        r = result()
        assert r.mean_temp("IntQ0") == pytest.approx(350.0)
        assert r.max_temp("IntQ0") == pytest.approx(355.0)


class TestSerialization:
    def test_round_trip(self):
        original = result(metrics={"core.stall_cycles":
                                   {"kind": "counter", "value": 7}},
                          timelines={"IntQ0": [350.0, 351.0]},
                          timeline_interval_cycles=250)
        payload = original.to_dict()
        assert SimulationResult.from_dict(payload) == original

    def test_to_dict_is_json_safe_with_numpy_values(self):
        original = result(
            mean_temps={"IntQ0": np.float64(350.5)},
            max_temps={"IntQ0": np.float64(355.5)},
            timelines={"IntQ0": [np.float64(350.0)]})
        payload = json.loads(json.dumps(original.to_dict()))
        assert payload["mean_temps"]["IntQ0"] == 350.5
        assert payload["timelines"]["IntQ0"] == [350.0]
        restored = SimulationResult.from_dict(payload)
        assert restored.max_temp("IntQ0") == 355.5

    def test_from_dict_ignores_unknown_keys(self):
        payload = result().to_dict()
        payload["added_in_a_future_version"] = True
        assert SimulationResult.from_dict(payload) == result()


class TestSpeedupMath:
    def test_speedup(self):
        fast, slow = result((1200, 1000)), result((1000, 1000))
        assert speedup(fast, slow) == pytest.approx(0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup(result(), result((0, 1000)))

    def test_mean_speedup(self):
        pairs = [(result((1100, 1000)), result((1000, 1000))),
                 (result((1300, 1000)), result((1000, 1000)))]
        assert mean_speedup(pairs) == pytest.approx(0.2)

    def test_geometric_mean_speedup(self):
        pairs = [(result((2000, 1000)), result((1000, 1000))),
                 (result((500, 1000)), result((1000, 1000)))]
        assert geometric_mean_speedup(pairs) == pytest.approx(0.0)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            mean_speedup([])


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 3.0)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "x" in text

    def test_alignment_consistent(self):
        text = format_table(("col",), [(1,), (100,)])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) == 1
