"""Miniature runs of the per-figure experiment harnesses."""

import pytest

from repro.sim.experiments import (RF_CONFIGS, alu_experiment,
                                   issue_queue_experiment,
                                   regfile_experiment)

BENCHES = ("parser", "gzip")
CYCLES = 4_000


@pytest.fixture(scope="module")
def iq_exp():
    return issue_queue_experiment(benchmarks=BENCHES, max_cycles=CYCLES)


@pytest.fixture(scope="module")
def alu_exp():
    return alu_experiment(benchmarks=BENCHES, max_cycles=CYCLES)


@pytest.fixture(scope="module")
def rf_exp():
    return regfile_experiment(benchmarks=BENCHES, max_cycles=CYCLES)


class TestIssueQueueExperiment:
    def test_covers_benchmarks(self, iq_exp):
        assert iq_exp.benchmarks == list(BENCHES)

    def test_figure6_rows(self, iq_exp):
        rows = iq_exp.figure6_rows()
        assert len(rows) == len(BENCHES)
        for bench, toggling, base, ratio in rows:
            assert toggling > 0 and base > 0

    def test_table4_rows(self, iq_exp):
        rows = iq_exp.table4_rows(("parser",))
        assert len(rows) == 2  # toggling + base
        for _, _, tail, head in rows:
            assert tail >= head

    def test_format_renders(self, iq_exp):
        text = iq_exp.format()
        assert "Figure 6" in text
        assert "parser" in text


class TestALUExperiment:
    def test_three_policies(self, alu_exp):
        for bench, rr, fg, base in alu_exp.figure7_rows():
            assert rr > 0 and fg > 0 and base > 0

    def test_table5_has_six_alus(self, alu_exp):
        for _, _, _, temps in alu_exp.table5_rows(("parser",)):
            assert len(temps) == 6

    def test_format_renders(self, alu_exp):
        assert "Figure 7" in alu_exp.format()


class TestRegFileExperiment:
    def test_four_configs(self, rf_exp):
        assert set(rf_exp.results) == set(RF_CONFIGS)

    def test_table6_order(self, rf_exp):
        rows = rf_exp.table6_rows("parser")
        assert [r[0] for r in rows] == [
            "fine-grain + priority", "fine-grain + balanced",
            "balanced only", "priority only"]

    def test_format_renders(self, rf_exp):
        text = rf_exp.format()
        assert "Figure 8" in text
        assert "priority" in text
