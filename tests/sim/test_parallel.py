"""Tests for the parallel experiment execution engine.

Covers the contract ISSUE-critical paths: serial/parallel result
equivalence, submission-order preservation, cache round trips and
invalidation, broken-pool retry and inline degradation, and the
sanitizer composing with worker processes.
"""

import dataclasses
import os

import pytest

from repro.sim.experiments import issue_queue_experiment
from repro.sim.parallel import (ExperimentEngine, ResultCache,
                                WorkerOutcome, _execute_config,
                                config_key, default_jobs, run_experiments)
from repro.sim.runner import SimulationConfig


def small_config(**overrides):
    base = dict(benchmark="gzip", max_cycles=3_000, warmup_cycles=1_000)
    base.update(overrides)
    return SimulationConfig(**base)


def small_grid():
    return [small_config(benchmark="gzip"),
            small_config(benchmark="mesa"),
            small_config(benchmark="perlbmk")]


# ---------------------------------------------------------------------------
# picklable worker stand-ins (module level so the pool can import them)
# ---------------------------------------------------------------------------

def _crash_once_runner(config):
    """Kill the worker process hard on the first call ever, then behave."""
    flag = os.environ["REPRO_TEST_CRASH_FLAG"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(13)
    return _execute_config(config)


def _crash_in_worker_runner(config):
    """Kill any process that is not the parent (inline runs succeed)."""
    if os.getpid() != int(os.environ["REPRO_TEST_PARENT_PID"]):
        os._exit(17)
    return _execute_config(config)


def _raising_runner(config):
    raise ValueError("boom from worker")


# ---------------------------------------------------------------------------
# job count / configuration
# ---------------------------------------------------------------------------

class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------

class TestConfigKey:
    def test_deterministic(self):
        assert config_key(small_config()) == config_key(small_config())

    def test_sensitive_to_config(self):
        assert (config_key(small_config(seed=1))
                != config_key(small_config(seed=2)))
        assert (config_key(small_config(max_cycles=3_000))
                != config_key(small_config(max_cycles=4_000)))

    def test_sensitive_to_code_fingerprint(self):
        config = small_config()
        assert (config_key(config, fingerprint="0" * 64)
                != config_key(config, fingerprint="1" * 64))

    def test_sensitive_to_sanitize_env(self, monkeypatch):
        config = small_config()
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = config_key(config)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert config_key(config) != plain


# ---------------------------------------------------------------------------
# serial / parallel equivalence
# ---------------------------------------------------------------------------

class TestEquivalence:
    def test_serial_and_parallel_results_identical(self):
        grid = small_grid()
        serial = ExperimentEngine(jobs=1, use_cache=False).run_many(grid)
        parallel = ExperimentEngine(jobs=4, use_cache=False).run_many(grid)
        assert len(serial) == len(parallel) == len(grid)
        for one, other in zip(serial, parallel):
            assert dataclasses.asdict(one) == dataclasses.asdict(other)

    def test_submission_order_preserved(self):
        grid = small_grid()
        results = ExperimentEngine(jobs=4, use_cache=False).run_many(grid)
        assert [r.benchmark for r in results] == [c.benchmark for c in grid]

    def test_single_pending_run_stays_inline(self):
        engine = ExperimentEngine(jobs=4, use_cache=False)
        engine.run_many([small_config()])
        assert engine.stats.inline_runs == 1
        assert engine.stats.parallel_runs == 0

    def test_jobs_one_never_forks(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_many(small_grid())
        assert engine.stats.inline_runs == 3
        assert engine.stats.parallel_runs == 0


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_second_run_served_from_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        grid = small_grid()
        first = engine.run_many(grid)
        assert engine.stats.cache_hits == 0
        second = engine.run_many(grid)
        assert engine.stats.cache_hits == len(grid)
        assert engine.stats.cache_hit_rate == 0.5
        for one, other in zip(first, second):
            assert dataclasses.asdict(one) == dataclasses.asdict(other)

    def test_config_change_misses(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        engine.run_many([small_config(seed=1)])
        engine.run_many([small_config(seed=2)])
        assert engine.stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        key = config_key(config)
        engine = ExperimentEngine(jobs=1, cache=cache)
        engine.run_many([config])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        engine.run_many([config])
        assert engine.stats.cache_hits == 0

    def test_clear_and_info(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=cache)
        engine.run_many(small_grid())
        info = cache.info()
        assert info.entries == 3
        assert info.size_bytes > 0
        assert cache.clear() == 3
        assert cache.info().entries == 0

    def test_cache_disabled_by_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        assert engine.cache is None

    def test_cache_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert ResultCache().root == tmp_path / "alt"


# ---------------------------------------------------------------------------
# crash handling
# ---------------------------------------------------------------------------

class TestCrashHandling:
    def test_crashed_worker_is_retried(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TEST_CRASH_FLAG",
                           str(tmp_path / "crashed"))
        engine = ExperimentEngine(jobs=2, use_cache=False,
                                  runner=_crash_once_runner)
        results = engine.run_many(small_grid())
        assert engine.stats.retried >= 1
        assert engine.stats.degraded == 0
        assert [r.benchmark for r in results] == ["gzip", "mesa", "perlbmk"]

    def test_persistent_crash_degrades_to_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_PARENT_PID", str(os.getpid()))
        engine = ExperimentEngine(jobs=2, use_cache=False,
                                  runner=_crash_in_worker_runner)
        grid = small_grid()[:2]
        results = engine.run_many(grid)
        assert engine.stats.degraded == 2
        assert engine.stats.inline_runs == 2
        assert [r.benchmark for r in results] == ["gzip", "mesa"]

    def test_application_exception_propagates(self):
        engine = ExperimentEngine(jobs=2, use_cache=False,
                                  runner=_raising_runner)
        with pytest.raises(ValueError, match="boom from worker"):
            engine.run_many(small_grid()[:2])


# ---------------------------------------------------------------------------
# sanitizer composes with worker processes
# ---------------------------------------------------------------------------

class TestSanitizerInWorkers:
    def test_workers_install_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run_many(small_grid()[:2])
        assert engine.stats.parallel_runs == 2
        assert engine.stats.sanitized_runs == 2
        assert engine.stats.sanitizer_checks > 0

    def test_inline_runs_report_sanitizer_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run_many([small_config()])
        assert engine.stats.sanitized_runs == 1
        assert engine.stats.sanitizer_checks > 0

    def test_worker_outcome_reports_checks(self):
        outcome = _execute_config(small_config(sanitize=True))
        assert isinstance(outcome, WorkerOutcome)
        assert outcome.sanitized
        assert outcome.sanitizer_checks > 0


# ---------------------------------------------------------------------------
# experiments route through the engine
# ---------------------------------------------------------------------------

class TestExperimentsRouting:
    def test_issue_queue_grid_uses_engine_and_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        first = issue_queue_experiment(benchmarks=["gzip"],
                                       max_cycles=3_000, engine=engine)
        second = issue_queue_experiment(benchmarks=["gzip"],
                                        max_cycles=3_000, engine=engine)
        assert engine.stats.cache_hits == 2
        assert (dataclasses.asdict(first.base["gzip"])
                == dataclasses.asdict(second.base["gzip"]))

    def test_run_experiments_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        results = run_experiments([small_config()])
        assert len(results) == 1
        assert results[0].benchmark == "gzip"
