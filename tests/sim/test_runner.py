"""Tests for the simulation runner (small end-to-end runs)."""

import dataclasses

import pytest

from repro.core.policies import ALUPolicy, IssueQueuePolicy, TechniqueConfig
from repro.sim.runner import SimulationConfig, Simulator, run_simulation
from repro.thermal.floorplan import FloorplanVariant


def small_config(**overrides):
    params = dict(benchmark="gzip", max_cycles=3_000, warmup_cycles=1_000)
    params.update(overrides)
    return SimulationConfig(**params)


class TestSimulator:
    def test_runs_and_reports(self):
        result = run_simulation(small_config())
        assert result.cycles == 3_000
        assert result.committed > 0
        assert result.benchmark == "gzip"
        assert set(result.mean_temps) == set(result.max_temps)

    def test_temperatures_are_physical(self):
        result = run_simulation(small_config())
        for name, temp in result.mean_temps.items():
            assert 315.0 <= temp <= 420.0, name
            assert result.max_temps[name] >= temp - 1e-9

    def test_deterministic(self):
        a = run_simulation(small_config())
        b = run_simulation(small_config())
        assert a.committed == b.committed
        assert a.mean_temps == b.mean_temps

    def test_seed_changes_stream(self):
        a = run_simulation(small_config(seed=1))
        b = run_simulation(small_config(seed=2))
        assert a.committed != b.committed

    def test_warmup_not_measured(self):
        result = run_simulation(small_config(max_cycles=2_000,
                                             warmup_cycles=2_000))
        assert result.cycles == 2_000

    def test_label_from_techniques(self):
        config = small_config(
            techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN))
        assert "fine_grain" in config.label()
        labelled = small_config(technique_label="mine")
        assert labelled.label() == "mine"

    def test_constrained_variant_heats_target(self):
        result = run_simulation(small_config(
            benchmark="perlbmk", variant=FloorplanVariant.ALU,
            max_cycles=6_000, warmup_cycles=3_000))
        alu = result.mean_temps["IntExec0"]
        cache = result.mean_temps["Icache"]
        assert alu > cache

    def test_simulator_exposes_components(self):
        sim = Simulator(small_config())
        assert sim.processor is not None
        assert sim.thermal is not None
        assert sim.dtm is not None
        assert sim.floorplan.variant is FloorplanVariant.BASE

    def test_warmup_resets_stats(self):
        sim = Simulator(small_config())
        sim._warmup()
        stats = sim.processor.stats
        assert stats.cycles == 0
        assert stats.committed == 0
        assert stats.stall_cycles == 0

    def test_result_fields_populated(self):
        result = run_simulation(small_config())
        assert result.technique_label
        assert result.cycles > 0 and result.committed > 0
        assert result.ipc > 0
        assert result.stall_cycles >= 0
        assert result.global_stalls >= 0
        assert isinstance(result.stall_reasons, dict)
        assert result.iq_toggles >= 0
        assert result.alu_turnoffs >= 0
        assert result.rf_turnoffs >= 0
        assert result.mean_temps and result.max_temps

    def test_same_seed_identical_result(self):
        a = run_simulation(small_config(seed=7))
        b = run_simulation(small_config(seed=7))
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_sanitize_flag_installs_sanitizer(self):
        assert Simulator(small_config()).sanitizer is None
        sim = Simulator(small_config(sanitize=True))
        assert sim.sanitizer is not None

    def test_sanitize_env_installs_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(small_config()).sanitizer is not None
