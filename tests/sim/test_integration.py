"""Cross-module integration invariants on small full-system runs."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (ALUPolicy, IssueQueuePolicy,
                                 TechniqueConfig)
from repro.pipeline.isa import MicroOp, OpClass
from repro.pipeline.processor import Processor
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant


def run_sim(**overrides):
    params = dict(benchmark="gzip", max_cycles=4_000, warmup_cycles=1_000)
    params.update(overrides)
    sim = Simulator(SimulationConfig(**params))
    return sim, sim.run()


class TestSystemInvariants:
    def test_commit_never_exceeds_fetch(self):
        sim, result = run_sim()
        assert result.committed <= sim.processor.fetch.fetched

    def test_stall_cycles_bounded_by_cycles(self):
        sim, result = run_sim(benchmark="perlbmk",
                              variant=FloorplanVariant.ALU)
        assert 0 <= result.stall_cycles <= result.cycles

    def test_stalls_imply_a_hot_block(self):
        sim, result = run_sim(benchmark="perlbmk",
                              variant=FloorplanVariant.ALU,
                              max_cycles=20_000, warmup_cycles=4_000)
        ceiling = sim.config.thermal.max_temperature_k
        if result.global_stalls:
            assert max(result.max_temps.values()) >= ceiling

    def test_temperatures_bounded(self):
        _, result = run_sim(benchmark="perlbmk",
                            variant=FloorplanVariant.ISSUE_QUEUE,
                            max_cycles=20_000)
        # Ambient floor and a sane ceiling given DTM intervention.
        for name, temp in result.max_temps.items():
            assert 315.0 <= temp <= 400.0, name

    def test_regfile_reads_follow_mapping_priority(self):
        sim, _ = run_sim(benchmark="eon")
        reads = sim.processor.regfile.counters.reads
        # Priority mapping + static select priority: copy 0 serves the
        # high-priority ALUs and must see the majority of reads.
        assert reads[0] > reads[1]

    def test_fine_grain_reduces_stall_cycles_on_hot_chip(self):
        base_kwargs = dict(benchmark="perlbmk",
                           variant=FloorplanVariant.ALU,
                           max_cycles=30_000, warmup_cycles=5_000)
        _, base = run_sim(techniques=TechniqueConfig(), **base_kwargs)
        _, fine = run_sim(
            techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
            **base_kwargs)
        assert fine.stall_cycles <= base.stall_cycles
        assert fine.ipc >= base.ipc

    def test_toggling_never_breaks_correct_drain(self):
        """Toggling mid-run must not lose instructions."""
        ops = [MicroOp(i, OpClass.INT_ALU, dst=1 + i % 20, src1=1)
               for i in range(1200)]
        processor = Processor(iter(ops))
        for i in range(8000):
            processor.step()
            if i % 97 == 0:
                processor.toggle_issue_queues()
            if processor.finished:
                break
        assert processor.finished
        assert processor.stats.committed == len(ops)


@st.composite
def tiny_trace(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for seq in range(n):
        kind = draw(st.sampled_from(
            [OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE,
             OpClass.BRANCH, OpClass.FP_ADD, OpClass.FP_MUL,
             OpClass.INT_MUL]))
        dst = (draw(st.integers(min_value=1, max_value=31))
               if kind not in (OpClass.STORE, OpClass.BRANCH) else None)
        src = draw(st.integers(min_value=0, max_value=31))
        addr = (draw(st.integers(min_value=0, max_value=1 << 20)) * 64
                if kind in (OpClass.LOAD, OpClass.STORE) else None)
        wrong = draw(st.booleans()) if kind is OpClass.BRANCH else False
        ops.append(MicroOp(seq, kind, dst=dst, src1=src, mem_addr=addr,
                           taken=True, mispredicted=wrong))
    return ops


@given(tiny_trace())
@settings(max_examples=40, deadline=None)
def test_processor_drains_any_trace(ops):
    """Whatever the trace, the core eventually commits everything in
    order, exactly once, without deadlock."""
    processor = Processor(iter(ops))
    processor.run(60_000)
    assert processor.finished, "pipeline deadlocked"
    assert processor.stats.committed == len(ops)
    assert processor.stats.ipc <= processor.config.issue_width + 1e-9
