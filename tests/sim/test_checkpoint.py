"""Tests for warm-state checkpointing.

The load-bearing property is *bit-identical equivalence*: a run
restored from a warm checkpoint must produce exactly the same
:class:`SimulationResult` — every counter and every temperature — as a
run that warmed up from scratch, for every technique and with the
sanitizer both off and on.  The rest covers the checkpoint key's
sharing/invalidation contract, the blob store, and the engine
integration (leader captures, follower restores, corruption falls
back).
"""

import dataclasses
import pickle

import pytest

from repro.core.mapping import MappingKind
from repro.core.policies import (ALL_TECHNIQUES, BASELINE, ALUPolicy,
                                 IssueQueuePolicy, RegFilePolicy,
                                 TechniqueConfig)
from repro.pipeline.config import ProcessorConfig, ThermalConfig
from repro.sim.checkpoint import (CheckpointError, CheckpointStore,
                                  checkpoint_key, checkpoints_enabled)
from repro.sim.parallel import (ExperimentEngine, ResultCache,
                                _execute_config)
from repro.sim.runner import SimulationConfig, Simulator
from repro.thermal.floorplan import FloorplanVariant


def small_config(**overrides):
    base = dict(benchmark="gzip", max_cycles=3_000, warmup_cycles=1_000)
    base.update(overrides)
    return SimulationConfig(**base)


def capture_blob(config):
    """Warm a donor simulator and capture its checkpoint."""
    donor = Simulator(config)
    donor.prepare()
    return donor.capture_warm_state()


# ---------------------------------------------------------------------------
# fresh vs restored equivalence
# ---------------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("bench", ["gzip", "mesa"])
    @pytest.mark.parametrize("techniques", [BASELINE, ALL_TECHNIQUES],
                             ids=["baseline", "all-techniques"])
    @pytest.mark.parametrize("sanitize", [False, True],
                             ids=["plain", "sanitized"])
    def test_restored_run_is_bit_identical(self, bench, techniques,
                                           sanitize):
        config = small_config(benchmark=bench, techniques=techniques,
                              variant=FloorplanVariant.ALU,
                              sanitize=sanitize)
        # The donor is never sanitized: the checkpoint key ignores the
        # sanitize flag, so a sanitized run must be able to restore a
        # checkpoint captured by an unsanitized one (and vice versa).
        blob = capture_blob(dataclasses.replace(config, sanitize=False))
        fresh = Simulator(config).run()
        restored_sim = Simulator.from_checkpoint(config, blob)
        restored = restored_sim.run()
        assert dataclasses.asdict(fresh) == dataclasses.asdict(restored)
        if sanitize:
            assert restored_sim.sanitizer is not None
            assert restored_sim.sanitizer.stats.total_checks > 0

    def test_variants_share_one_checkpoint(self):
        """Techniques with equal warm-relevant fields fork from the
        same blob and still match their own fresh runs."""
        base = small_config(variant=FloorplanVariant.ALU)
        variants = [
            dataclasses.replace(
                base, techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN)),
            dataclasses.replace(
                base, techniques=TechniqueConfig(
                    issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING)),
        ]
        blob = capture_blob(base)
        for config in variants:
            assert checkpoint_key(config) == checkpoint_key(base)
            fresh = Simulator(config).run()
            restored = Simulator.from_checkpoint(config, blob).run()
            assert (dataclasses.asdict(fresh)
                    == dataclasses.asdict(restored))

    def test_restore_fills_stage_times(self):
        config = small_config()
        restored = Simulator.from_checkpoint(config, capture_blob(config))
        restored.run()
        assert set(restored.stage_times) == {"restore_s", "measure_s",
                                             "sample_s"}
        fresh = Simulator(config)
        fresh.run()
        assert set(fresh.stage_times) == {"warmup_s", "measure_s",
                                          "sample_s"}


# ---------------------------------------------------------------------------
# capture preconditions
# ---------------------------------------------------------------------------

class TestCapture:
    def test_capture_requires_prepare(self):
        with pytest.raises(CheckpointError, match="prepare"):
            Simulator(small_config()).capture_warm_state()

    def test_capture_after_run_is_rejected(self):
        simulator = Simulator(small_config())
        simulator.run()
        with pytest.raises(CheckpointError, match="measurement"):
            simulator.capture_warm_state()

    def test_custom_trace_is_not_checkpointable(self):
        from repro.workloads.spec2000 import workload
        simulator = Simulator(small_config(),
                              trace=workload("gzip", seed=1))
        assert not simulator.supports_checkpoint
        simulator.prepare()
        with pytest.raises(CheckpointError, match="replayable"):
            simulator.capture_warm_state()


# ---------------------------------------------------------------------------
# key sharing and invalidation
# ---------------------------------------------------------------------------

class TestCheckpointKey:
    def test_deterministic(self):
        assert (checkpoint_key(small_config())
                == checkpoint_key(small_config()))

    def test_ignores_measurement_only_fields(self):
        base = small_config()
        for changed in (
                dataclasses.replace(base, max_cycles=9_000),
                dataclasses.replace(base, variant=FloorplanVariant.ALU),
                dataclasses.replace(base, technique_label="renamed"),
                dataclasses.replace(base, sanitize=True),
                dataclasses.replace(
                    base, thermal=ThermalConfig(max_temperature_k=360.0)),
                dataclasses.replace(
                    base, techniques=TechniqueConfig(
                        alus=ALUPolicy.FINE_GRAIN)),
        ):
            assert checkpoint_key(changed) == checkpoint_key(base)

    def test_warm_relevant_fields_change_key(self):
        base = small_config()
        for changed in (
                dataclasses.replace(base, benchmark="mesa"),
                dataclasses.replace(base, seed=2),
                dataclasses.replace(base, warmup_cycles=2_000),
                dataclasses.replace(
                    base, processor=ProcessorConfig(num_int_alus=4)),
                dataclasses.replace(
                    base, techniques=TechniqueConfig(
                        alus=ALUPolicy.ROUND_ROBIN)),
                dataclasses.replace(
                    base, techniques=TechniqueConfig(
                        regfile=RegFilePolicy(MappingKind.BALANCED))),
        ):
            assert checkpoint_key(changed) != checkpoint_key(base)

    def test_source_fingerprint_changes_key(self):
        config = small_config()
        assert (checkpoint_key(config, fingerprint="0" * 64)
                != checkpoint_key(config, fingerprint="1" * 64))

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINTS", raising=False)
        assert checkpoints_enabled()
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        assert not checkpoints_enabled()


# ---------------------------------------------------------------------------
# the blob store
# ---------------------------------------------------------------------------

class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("ab" * 32, b"payload")
        assert store.has("ab" * 32)
        assert store.get("ab" * 32) == b"payload"

    def test_missing_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert not store.has("cd" * 32)

    def test_clear_and_info(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("ab" * 32, b"x")
        store.put("cd" * 32, b"yz")
        info = store.info()
        assert info.entries == 2
        assert info.size_bytes == 3
        assert store.clear() == 2
        assert store.info().entries == 0

    def test_corrupt_blob_raises_checkpoint_error(self):
        config = small_config()
        for blob in (b"garbage", pickle.dumps({"version": 999}),
                     pickle.dumps(["not", "a", "dict"])):
            with pytest.raises(CheckpointError):
                Simulator.from_checkpoint(config, blob)


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

def technique_grid():
    """Two benchmarks x three techniques sharing warm state."""
    techniques = [BASELINE, ALL_TECHNIQUES,
                  TechniqueConfig(issue_queue=IssueQueuePolicy.
                                  ACTIVITY_TOGGLING)]
    return [small_config(benchmark=bench, techniques=t,
                         variant=FloorplanVariant.ALU)
            for bench in ("gzip", "mesa") for t in techniques]


class TestEngineIntegration:
    def test_grid_shares_checkpoints_and_matches_fresh(self, tmp_path):
        grid = technique_grid()
        engine = ExperimentEngine(jobs=1,
                                  cache=ResultCache(tmp_path / "results"),
                                  checkpoints=tmp_path / "ckpt")
        checkpointed = engine.run_many(grid)
        assert engine.stats.checkpoint_captures == 2  # one per benchmark
        assert engine.stats.checkpoint_restores == 4  # the other runs
        fresh = ExperimentEngine(jobs=1, use_cache=False,
                                 use_checkpoints=False).run_many(grid)
        for a, b in zip(checkpointed, fresh):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_second_grid_restores_everything(self, tmp_path):
        grid = technique_grid()
        first = ExperimentEngine(jobs=1, use_cache=False,
                                 checkpoints=tmp_path)
        first.run_many(grid)
        second = ExperimentEngine(jobs=1, use_cache=False,
                                  checkpoints=tmp_path)
        second.run_many(grid)
        assert second.stats.checkpoint_restores == len(grid)
        assert second.stats.checkpoint_captures == 0

    def test_parallel_grid_matches_inline(self, tmp_path):
        grid = technique_grid()
        pool = ExperimentEngine(jobs=2, use_cache=False,
                                checkpoints=tmp_path / "pool")
        inline = ExperimentEngine(jobs=1, use_cache=False,
                                  use_checkpoints=False)
        for a, b in zip(pool.run_many(grid), inline.run_many(grid)):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_corrupt_entry_falls_back_to_fresh_warmup(self, tmp_path):
        config = small_config()
        store = CheckpointStore(tmp_path)
        store.put(checkpoint_key(config), b"garbage")
        outcome = _execute_config(config, checkpoint_root=str(tmp_path))
        assert not outcome.checkpoint_restored
        assert outcome.checkpoint_captured  # fresh capture replaced it
        fresh = Simulator(config).run()
        assert (dataclasses.asdict(outcome.result)
                == dataclasses.asdict(fresh))

    def test_env_disables_checkpoints(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        assert engine.checkpoints is None

    def test_custom_runner_bypasses_checkpoints(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path),
                                  runner=_execute_config)
        assert engine.checkpoints is None

    def test_stats_record_stage_times(self, tmp_path):
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  checkpoints=tmp_path)
        engine.run_many([small_config()])
        stages = engine.stats.stage_seconds()
        assert stages["warmup_s"] > 0
        assert stages["measure_s"] > 0
