"""Unit tests for experiment helper logic (no simulation runs)."""

import pytest

from repro.sim.experiments import (ALUExperiment, IssueQueueExperiment,
                                   RF_CONFIGS, RegFileExperiment,
                                   _constrained)
from repro.sim.results import SimulationResult


def result(committed, cycles=1000, stall_cycles=0):
    return SimulationResult(
        benchmark="x", technique_label="t", cycles=cycles,
        committed=committed, stall_cycles=stall_cycles, global_stalls=0,
        stall_reasons={}, iq_toggles=0, alu_turnoffs=0, rf_turnoffs=0,
        mean_temps={"IntQ0": 350.0, "IntQ1": 351.0,
                    **{f"IntExec{i}": 350.0 + i for i in range(6)},
                    "IntReg0": 352.0, "IntReg1": 351.0},
        max_temps={})


class TestConstrained:
    def test_stall_fraction_threshold(self):
        assert _constrained(result(100, cycles=1000, stall_cycles=100))
        assert not _constrained(result(100, cycles=1000, stall_cycles=5))


class TestIssueQueueAggregation:
    def exp(self):
        return IssueQueueExperiment(
            toggling={"a": result(1200), "b": result(500)},
            base={"a": result(1000), "b": result(500)})

    def test_speedup(self):
        assert self.exp().speedup("a") == pytest.approx(0.2)

    def test_average_speedup(self):
        assert self.exp().average_speedup() == pytest.approx(0.1)

    def test_table4_orders_tail_first(self):
        rows = self.exp().table4_rows(("a",))
        for _, _, tail, head in rows:
            assert tail >= head


class TestALUAggregation:
    def exp(self):
        return ALUExperiment(
            round_robin={"a": result(1210)},
            fine_grain={"a": result(1200)},
            base={"a": result(1000)})

    def test_fine_grain_vs_round_robin(self):
        assert self.exp().fine_grain_vs_round_robin() == pytest.approx(
            1200 / 1210 - 1)

    def test_figure7_rows(self):
        rows = self.exp().figure7_rows()
        assert rows[0][1:] == (1.21, 1.2, 1.0)


class TestRegFileAggregation:
    def exp(self):
        results = {label: {"a": result(1000 + 100 * i)}
                   for i, label in enumerate(RF_CONFIGS)}
        return RegFileExperiment(results=results)

    def test_average_speedup_between_configs(self):
        exp = self.exp()
        labels = list(RF_CONFIGS)
        gain = exp.average_speedup(labels[1], labels[0])
        assert gain == pytest.approx(1100 / 1000 - 1)

    def test_figure8_rows_order(self):
        rows = self.exp().figure8_rows()
        assert rows[0][0] == "a"
        assert len(rows[0][1]) == len(RF_CONFIGS)
