#!/usr/bin/env python
"""Watch the thermal trajectory of individual resource copies.

Runs ``mesa`` on the issue-queue constrained floorplan with activity
toggling and prints an ASCII strip chart of the two integer-queue
halves, annotated with toggle events and cooling stalls — the
mechanics behind the paper's Table 4.
"""

import argparse

from repro import (FloorplanVariant, IssueQueuePolicy, SimulationConfig,
                   TechniqueConfig)
from repro.sim.runner import Simulator

LO, HI = 345.0, 362.0
WIDTH = 56


def bar(temp: float) -> int:
    frac = (temp - LO) / (HI - LO)
    return max(0, min(WIDTH - 1, int(frac * WIDTH)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="mesa")
    parser.add_argument("--cycles", type=int, default=60_000)
    parser.add_argument("--stride", type=int, default=8,
                        help="print every Nth sensor sample")
    args = parser.parse_args()

    config = SimulationConfig(
        benchmark=args.benchmark,
        variant=FloorplanVariant.ISSUE_QUEUE,
        techniques=TechniqueConfig(
            issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
        max_cycles=args.cycles)
    sim = Simulator(config)

    samples = []
    seen = {"toggles": 0, "stalls": 0}
    original = sim._on_sample

    def traced(processor):
        original(processor)
        q0 = sim.thermal.temperature("IntQ0")
        q1 = sim.thermal.temperature("IntQ1")
        toggles = (sim.dtm.int_toggler.stats.toggles
                   + sim.dtm.fp_toggler.stats.toggles)
        stalls = sim.dtm.stats.global_stalls
        event = ""
        if toggles > seen["toggles"]:
            event = "TOGGLE"
        if stalls > seen["stalls"]:
            event = "STALL"
        seen.update(toggles=toggles, stalls=stalls)
        samples.append((processor.now, q0, q1, event))

    sim._on_sample = traced
    result = sim.run()

    print(f"{args.benchmark}: IntQ half temperatures over time "
          f"(0 = lower half, 1 = upper half)")
    print(f"scale: {LO:.0f} K {'-' * (WIDTH - 12)} {HI:.0f} K\n")
    for now, q0, q1, event in samples[::args.stride]:
        line = [" "] * WIDTH
        p0, p1 = bar(q0), bar(q1)
        line[p0] = "0"
        line[p1] = "1" if p1 != p0 else "*"
        print(f"{now:7d} |{''.join(line)}| {event}")

    print(f"\nIPC {result.ipc:.3f}, toggles {result.iq_toggles}, "
          f"stalls {result.global_stalls}")


if __name__ == "__main__":
    main()
