#!/usr/bin/env python
"""Run a real (tiny) assembly program through the full pipeline.

Demonstrates the SimpleScalar-style functional/timing split: the
:class:`repro.pipeline.Program` interpreter executes a dot-product
kernel against memory, and the out-of-order core replays the resulting
micro-op trace cycle by cycle with a real gshare branch predictor.
"""

from repro.pipeline import GSharePredictor, Processor, Program

KERNEL = """
    # r1 = &a, r2 = &b, r3 = n, r5 = sum
    addi r1, r0, 0
    addi r2, r0, 4096
    addi r3, r0, 64
loop:
    ld   r6, r1, 0
    ld   r7, r2, 0
    mul  r8, r6, r7
    add  r5, r5, r8
    addi r1, r1, 8
    addi r2, r2, 8
    addi r3, r3, -1
    bne  r3, r0, loop
    st   r5, r0, 8192
    halt
"""


def main() -> None:
    memory = {}
    for i in range(64):
        memory[i * 8] = i + 1           # a[i] = i+1
        memory[4096 + i * 8] = 2        # b[i] = 2
    expected = sum((i + 1) * 2 for i in range(64))

    program = Program(KERNEL)
    processor = Processor(program.run(memory=memory),
                          predictor=GSharePredictor())
    processor.run(100_000)

    stats = processor.stats
    print(f"dot product result: {memory[8192]} (expected {expected})")
    print(f"instructions committed: {stats.committed}")
    print(f"cycles: {stats.cycles}, IPC: {stats.ipc:.2f}")
    print(f"branch mispredict rate: "
          f"{processor.fetch.predictor.stats.mispredict_rate:.1%}")
    print(f"L1D miss rate: {processor.memory.l1d.stats.miss_rate:.1%}")
    print("per-ALU operation counts (static select priority):")
    print("  " + " ".join(f"{u.counters.ops:5d}"
                          for u in processor.int_alus))
    assert memory[8192] == expected


if __name__ == "__main__":
    main()
