#!/usr/bin/env python
"""Quickstart: run one thermally-managed simulation and inspect it.

Simulates the ``perlbmk`` workload on the ALU-constrained floorplan
twice — once with the conventional stall-on-overheat baseline and once
with the paper's fine-grain turnoff — and prints what changed.
"""

from repro import (ALUPolicy, FloorplanVariant, SimulationConfig,
                   TechniqueConfig, run_simulation)

CYCLES = 60_000


def run(policy: ALUPolicy):
    config = SimulationConfig(
        benchmark="perlbmk",
        variant=FloorplanVariant.ALU,
        techniques=TechniqueConfig(alus=policy),
        max_cycles=CYCLES,
    )
    return run_simulation(config)


def main() -> None:
    base = run(ALUPolicy.BASE)
    fine = run(ALUPolicy.FINE_GRAIN)

    print(f"perlbmk on the ALU-constrained chip, {CYCLES} cycles\n")
    header = f"{'':22s}{'base':>12s}{'fine-grain':>12s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("IPC", f"{base.ipc:.3f}", f"{fine.ipc:.3f}"),
        ("cooling stalls", base.global_stalls, fine.global_stalls),
        ("stall cycles", base.stall_cycles, fine.stall_cycles),
        ("ALU turnoffs", base.alu_turnoffs, fine.alu_turnoffs),
    ]
    for label, b, f in rows:
        print(f"{label:22s}{b!s:>12s}{f!s:>12s}")

    print("\nmean ALU temperatures (K), select priority order:")
    for label, result in (("base", base), ("fine-grain", fine)):
        temps = " ".join(f"{result.mean_temps[f'IntExec{i}']:.1f}"
                         for i in range(6))
        print(f"  {label:12s}{temps}")

    gain = fine.ipc / base.ipc - 1
    print(f"\nfine-grain turnoff speedup: {gain:+.1%}")
    print("(the baseline must halt the whole core whenever the "
          "highest-priority ALU overheats; fine-grain turnoff lets the "
          "cooler low-priority ALUs keep executing)")


if __name__ == "__main__":
    main()
