#!/usr/bin/env python
"""Register-file mapping study (the paper's §4.3 on one benchmark).

Compares all four combinations of {priority, balanced} port mapping
x {with, without} fine-grain copy turnoff on the register-file
constrained floorplan, reproducing the paper's counter-intuitive
result: priority mapping — worst on its own — wins once copies can be
turned off individually, because the combination achieves utilization
symmetry both across and within copies.
"""

import argparse

from repro import (FloorplanVariant, MappingKind, RegFilePolicy,
                   SimulationConfig, TechniqueConfig, run_simulation)

CONFIGS = [
    ("priority only", RegFilePolicy(MappingKind.PRIORITY, False)),
    ("balanced only", RegFilePolicy(MappingKind.BALANCED, False)),
    ("priority + turnoff", RegFilePolicy(MappingKind.PRIORITY, True)),
    ("balanced + turnoff", RegFilePolicy(MappingKind.BALANCED, True)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="eon")
    parser.add_argument("--cycles", type=int, default=100_000)
    args = parser.parse_args()

    print(f"{args.benchmark} on the register-file constrained chip\n")
    print(f"{'configuration':22s}{'IPC':>8s}{'stalls':>8s}"
          f"{'turnoffs':>10s}{'copy0 K':>9s}{'copy1 K':>9s}")
    results = {}
    for label, policy in CONFIGS:
        result = run_simulation(SimulationConfig(
            benchmark=args.benchmark,
            variant=FloorplanVariant.REGFILE,
            techniques=TechniqueConfig(regfile=policy),
            max_cycles=args.cycles))
        results[label] = result
        print(f"{label:22s}{result.ipc:8.3f}{result.global_stalls:8d}"
              f"{result.rf_turnoffs:10d}"
              f"{result.mean_temps['IntReg0']:9.1f}"
              f"{result.mean_temps['IntReg1']:9.1f}")

    best = max(results, key=lambda k: results[k].ipc)
    print(f"\nbest configuration: {best}")
    po = results["priority only"].ipc
    pt = results["priority + turnoff"].ipc
    print(f"turnoff turns priority mapping from worst "
          f"({po:.3f}) into best ({pt:.3f}): {pt / po - 1:+.1%}")


if __name__ == "__main__":
    main()
