"""Functional units (integer ALUs, FP adders, FP multiplier).

The paper's processor has 6 integer ALUs (arithmetic + load/store +
branch) and 4 FP adders; each is an individually modelled thermal block
so that the static select priority produces the per-copy temperature
ladder the paper reports (Table 5).  An ALU is a short occupancy
pipeline: ALU ops, FP adds, and FP multiplies are fully pipelined
(initiation interval 1, as in the EV6); the integer multiplier
occupies its unit for its latency (non-pipelined).

``busy`` is the fine-grain-turnoff hook: a busy unit refuses issue but
keeps draining in-flight work.

Activity counters live in a shared per-bank :class:`~repro.pipeline.
soa.UnitBank` (struct-of-arrays, one slot per unit) so the macro-step
kernel can charge a whole sensing interval with vectorized array
updates; :class:`ALUCounters` is the per-unit view preserving the
``unit.counters.ops`` read API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from .isa import DEFAULT_LATENCY, MicroOp, OpClass
from .soa import UnitBank

#: Sentinel finish cycle meaning "nothing in flight".
_NEVER = 2 ** 62

#: Op classes the integer ALUs execute.
INT_OPCLASSES: Set[OpClass] = {
    OpClass.INT_ALU, OpClass.INT_MUL, OpClass.LOAD, OpClass.STORE,
    OpClass.BRANCH, OpClass.NOP,
}

#: Op classes the FP adders execute.
FP_ADD_OPCLASSES: Set[OpClass] = {OpClass.FP_ADD}

#: Op classes the (single) FP multiplier executes.
FP_MUL_OPCLASSES: Set[OpClass] = {OpClass.FP_MUL}


class ALUCounters:
    """Cumulative per-unit activity: a view over one slot of the
    bank's SoA arrays (reads and writes go straight to the arrays)."""

    __slots__ = ("_bank", "_slot")

    def __init__(self, bank: UnitBank, slot: int) -> None:
        self._bank = bank
        self._slot = slot

    @property
    def ops(self) -> int:
        return int(self._bank.ops[self._slot])

    @ops.setter
    def ops(self, value: int) -> None:
        self._bank.ops[self._slot] = value

    @property
    def busy_cycles(self) -> int:
        return int(self._bank.busy_cycles[self._slot])

    @busy_cycles.setter
    def busy_cycles(self, value: int) -> None:
        self._bank.busy_cycles[self._slot] = value

    @property
    def turnoff_events(self) -> int:
        return int(self._bank.turnoff_events[self._slot])

    @turnoff_events.setter
    def turnoff_events(self, value: int) -> None:
        self._bank.turnoff_events[self._slot] = value

    def values(self) -> Dict[str, int]:
        """Plain-int snapshot (checkpoint payload)."""
        return {"ops": self.ops, "busy_cycles": self.busy_cycles,
                "turnoff_events": self.turnoff_events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ALUCounters(ops={self.ops}, "
                f"busy_cycles={self.busy_cycles}, "
                f"turnoff_events={self.turnoff_events})")


@dataclass(slots=True)
class _InFlight:
    op: MicroOp
    rob_index: int
    finish_cycle: int


class FunctionalUnit:
    """One execution unit; also one thermal block."""

    def __init__(self, index: int, opclasses: Set[OpClass],
                 name: str, bank: Optional[UnitBank] = None,
                 slot: Optional[int] = None) -> None:
        self.index = index
        self.opclasses = opclasses
        self.name = name
        self.busy = False  # fine-grain turnoff flag
        # Standalone units (unit tests) get a private one-slot bank;
        # the factory functions below build shared per-bank arrays.
        if bank is None:
            bank = UnitBank(1)
            slot = 0
        self._bank = bank
        self._slot = index if slot is None else slot
        self.counters = ALUCounters(self._bank, self._slot)
        #: Hot-path alias: ``start`` bumps the ops array directly.
        self._ops_arr = bank.ops
        self._pipeline: List[_InFlight] = []
        self._blocked_until = -1
        # Earliest finish cycle in flight; lets writeback skip the
        # unit without scanning the pipeline.  Derived state: always
        # recomputed from ``_pipeline``, never serialized.
        self._next_finish = _NEVER
        # One-element busy-unit tally shared by every unit of a
        # processor (attached after construction); lets the per-cycle
        # busy accounting skip the unit scan when nothing is off.
        self._bank_busy: Optional[List[int]] = None

    def can_execute(self, opclass: OpClass) -> bool:
        return opclass in self.opclasses

    def can_accept(self, now: int) -> bool:
        """Structurally free this cycle (ignores the turnoff flag —
        the select network already filters on ``busy``)."""
        return now >= self._blocked_until

    def start(self, op: MicroOp, rob_index: int, now: int,
              extra_latency: int = 0) -> int:
        """Begin executing ``op``; returns its finish cycle.

        ``extra_latency`` adds cache latency to loads.  Single-cycle
        ops are pipelined; multi-cycle ops occupy the unit.
        """
        opclass = op.opclass
        if opclass not in self.opclasses:
            raise ValueError(f"{self.name} cannot execute {opclass}")
        if now < self._blocked_until:
            raise RuntimeError(f"{self.name} is occupied")
        base = DEFAULT_LATENCY[opclass]
        if opclass is OpClass.INT_MUL:
            self._blocked_until = now + base
        finish = now + base + extra_latency
        self._pipeline.append(_InFlight(op, rob_index, finish))
        if finish < self._next_finish:
            self._next_finish = finish
        self._ops_arr[self._slot] += 1
        return finish

    def drain(self, now: int) -> List[_InFlight]:
        """Pop ops finishing at ``now`` (writeback stage)."""
        if now < self._next_finish:
            return []
        done = [w for w in self._pipeline if w.finish_cycle <= now]
        if done:
            self._pipeline = [w for w in self._pipeline
                              if w.finish_cycle > now]
            self._next_finish = min(
                (w.finish_cycle for w in self._pipeline), default=_NEVER)
        return done

    def in_flight(self) -> int:
        return len(self._pipeline)

    def set_busy(self, value: bool) -> None:
        """Fine-grain turnoff: mark the unit busy so select skips it."""
        if value == self.busy:
            return
        if value:
            self._bank.turnoff_events[self._slot] += 1
        self.busy = value
        if self._bank_busy is not None:
            self._bank_busy[0] += 1 if value else -1

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"busy": self.busy, "counters": self.counters.values(),
                "pipeline": self._pipeline,
                "blocked_until": self._blocked_until}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.busy = state["busy"]
        values = state["counters"]
        slot = self._slot
        self._bank.ops[slot] = values["ops"]
        self._bank.busy_cycles[slot] = values["busy_cycles"]
        self._bank.turnoff_events[slot] = values["turnoff_events"]
        self._pipeline = list(state["pipeline"])
        self._blocked_until = state["blocked_until"]
        self._next_finish = min(
            (w.finish_cycle for w in self._pipeline), default=_NEVER)


def make_int_alus(count: int) -> List[FunctionalUnit]:
    """Build the statically prioritized integer ALU bank.

    Index 0 is the highest select priority (the unit that heats first
    under the conventional policy)."""
    bank = UnitBank(count)
    return [FunctionalUnit(i, INT_OPCLASSES, f"IntExec{i}", bank=bank)
            for i in range(count)]


def make_fp_adders(count: int) -> List[FunctionalUnit]:
    bank = UnitBank(count)
    return [FunctionalUnit(i, FP_ADD_OPCLASSES, f"FPAdd{i}", bank=bank)
            for i in range(count)]


def make_fp_multiplier() -> FunctionalUnit:
    return FunctionalUnit(0, FP_MUL_OPCLASSES, "FPMul", bank=UnitBank(1))
