"""Cache hierarchy and memory substrate.

A set-associative, LRU, write-allocate cache model.  Only timing and
access counts matter to the study (the pipeline is trace driven), so
the caches track tags, not data.  :class:`MemoryHierarchy` composes an
L1 data cache and a unified L2 in front of a fixed-latency memory and
returns the total load-to-use latency for each access, which the
backend adds to a load's execution latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .config import CacheConfig, ProcessorConfig


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # Each set is an ordered list of tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(config.n_sets)]
        self._offset_bits = (config.block_bytes - 1).bit_length()
        # Geometry constants, denormalized off the (frozen) config so
        # the access path avoids a property evaluation per lookup.
        self._n_sets = config.n_sets
        self._assoc = config.assoc

    def _index_tag(self, addr: int) -> tuple:
        block = addr >> self._offset_bits
        return block % self._n_sets, block // self._n_sets

    def access(self, addr: int) -> bool:  # repro: hot-loop
        """Access ``addr``; return True on hit.  Misses allocate."""
        if addr < 0:
            raise ValueError("negative address")
        block = addr >> self._offset_bits
        n_sets = self._n_sets
        ways = self._sets[block % n_sets]
        tag = block // n_sets
        stats = self.stats
        stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        stats.misses += 1
        if len(ways) >= self._assoc:
            ways.pop(0)
        ways.append(tag)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or stats."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"sets": self._sets, "stats": self.stats}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._sets = [list(ways) for ways in state["sets"]]
        self.stats = state["stats"]


class MemoryHierarchy:
    """L1D + unified L2 + fixed-latency memory.

    :meth:`load_latency` returns the full latency for a load and
    :meth:`store` records a store access (stores retire from the LSQ
    and are not on the load-to-use critical path, so their latency is
    not modelled beyond occupancy).
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.l1d = Cache(config.l1d, "l1d")
        self.l2 = Cache(config.l2, "l2")
        self.loads = 0
        self.stores = 0
        # Pre-summed latencies for the three load outcomes.
        self._l1_lat = config.l1d.latency
        self._l2_lat = config.l1d.latency + config.l2.latency
        self._mem_lat = (config.l1d.latency + config.l2.latency
                         + config.memory_latency)

    def load_latency(self, addr: int) -> int:  # repro: hot-loop
        """Total load latency in cycles for a load to ``addr``."""
        self.loads += 1
        if self.l1d.access(addr):
            return self._l1_lat
        if self.l2.access(addr):
            return self._l2_lat
        return self._mem_lat

    def store(self, addr: int) -> None:
        """Record a committed store (write-allocate into L1/L2)."""
        self.stores += 1
        if not self.l1d.access(addr):
            self.l2.access(addr)

    def warm(self, l1_addresses=(), l2_addresses=()) -> None:
        """Pre-touch address footprints (the analogue of the paper's
        1-billion-instruction L2 warm-up during fast-forward), then
        reset the statistics so measurement starts clean."""
        for addr in l2_addresses:
            self.l2.access(addr)
        for addr in l1_addresses:
            self.l2.access(addr)
            self.l1d.access(addr)
        self.l1d.reset_stats()
        self.l2.reset_stats()

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"l1d": self.l1d.snapshot_state(),
                "l2": self.l2.snapshot_state(),
                "loads": self.loads, "stores": self.stores}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.l1d.restore_state(state["l1d"])
        self.l2.restore_state(state["l2"])
        self.loads = state["loads"]
        self.stores = state["stores"]
