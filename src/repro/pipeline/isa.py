"""Micro-op definitions and a tiny assembly-level ISA.

The timing pipeline in :mod:`repro.pipeline` is *trace driven*: it
consumes a stream of :class:`MicroOp` records that carry everything the
timing model needs (operation class, architectural registers, memory
address, branch outcome).  Two producers exist:

* :mod:`repro.workloads` synthesizes SPEC2000-like streams, and
* :class:`Program` in this module functionally executes a tiny
  register-machine assembly language and emits the corresponding trace,
  mirroring SimpleScalar's functional/timing split.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class OpClass(enum.Enum):
    """Functional classes of micro-ops recognised by the pipeline."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    NOP = "nop"

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ADD, OpClass.FP_MUL)

    @property
    def is_mem(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    # Enum hashes by member name (a string hash per lookup), and the
    # pipeline performs hundreds of thousands of latency-table and
    # opclass-set lookups per run.  Members are singletons (pickling
    # resolves by name to the same object), so identity hashing is
    # observably equivalent and much cheaper.
    __hash__ = object.__hash__


#: Execution latency in cycles for each op class (pipelined unless noted).
DEFAULT_LATENCY: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.LOAD: 1,  # address generation; cache latency added on top
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 4,
    OpClass.NOP: 1,
}

#: Number of architectural integer / floating-point registers.
NUM_INT_ARCH_REGS = 32
NUM_FP_ARCH_REGS = 32

#: The FP op classes as a frozenset: hot paths test membership here
#: instead of calling the :attr:`OpClass.is_fp` property.
FP_OPCLASSES = frozenset((OpClass.FP_ADD, OpClass.FP_MUL))


@dataclass(slots=True)
class MicroOp:
    """One dynamic instruction as seen by the timing pipeline.

    Register operands are architectural indices; integer and FP register
    files are separate namespaces (the ``is_fp`` flag of the op class
    disambiguates them for rename).  ``None`` operands are absent.

    Slotted: hundreds of thousands of these are created per run and
    their fields are read in every pipeline stage.
    """

    seq: int
    opclass: OpClass
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    #: Effective address for loads and stores.
    mem_addr: Optional[int] = None
    #: For branches: actual direction outcome (program mode predictors).
    taken: bool = False
    #: For branches: whether the branch was mispredicted by the front end.
    mispredicted: bool = False
    #: Program counter, used by the branch predictor in program mode.
    pc: int = 0

    @property
    def latency(self) -> int:
        return DEFAULT_LATENCY[self.opclass]

    def sources(self) -> Tuple[int, ...]:
        """Architectural source registers, omitting absent operands."""
        s1, s2 = self.src1, self.src2
        if s1 is None:
            return () if s2 is None else (s2,)
        if s2 is None:
            return (s1,)
        return (s1, s2)


class AssemblyError(ValueError):
    """Raised when a :class:`Program` source line cannot be parsed."""


@dataclass
class _Inst:
    op: str
    args: Tuple[str, ...]
    line: int


# Opcode -> (opclass, reads, writes_reg) metadata for the tiny ISA.
_OPCODES = {
    "add": OpClass.INT_ALU,
    "sub": OpClass.INT_ALU,
    "and": OpClass.INT_ALU,
    "or": OpClass.INT_ALU,
    "xor": OpClass.INT_ALU,
    "slt": OpClass.INT_ALU,
    "addi": OpClass.INT_ALU,
    "mul": OpClass.INT_MUL,
    "ld": OpClass.LOAD,
    "st": OpClass.STORE,
    "beq": OpClass.BRANCH,
    "bne": OpClass.BRANCH,
    "jmp": OpClass.BRANCH,
    "fadd": OpClass.FP_ADD,
    "fmul": OpClass.FP_MUL,
    "nop": OpClass.NOP,
    "halt": OpClass.NOP,
}


def _parse_reg(token: str, line: int) -> int:
    token = token.strip().rstrip(",")
    if not token or token[0] not in "rf":
        raise AssemblyError(f"line {line}: expected register, got {token!r}")
    try:
        idx = int(token[1:])
    except ValueError as exc:
        raise AssemblyError(f"line {line}: bad register {token!r}") from exc
    limit = NUM_FP_ARCH_REGS if token[0] == "f" else NUM_INT_ARCH_REGS
    if not 0 <= idx < limit:
        raise AssemblyError(f"line {line}: register {token!r} out of range")
    return idx


def _parse_imm(token: str, line: int) -> int:
    try:
        return int(token.strip().rstrip(","), 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line}: bad immediate {token!r}") from exc


class Program:
    """A tiny assembly program with a functional interpreter.

    The language is a small RISC subset over 32 integer registers
    (``r0``..``r31``, with ``r0`` hard-wired to zero) and 32 FP registers
    (``f0``..``f31``)::

        loop:
            ld   r2, r1, 0      # r2 = mem[r1 + 0]
            addi r2, r2, 1
            st   r2, r1, 0
            addi r1, r1, 8
            addi r3, r3, -1
            bne  r3, r0, loop
            halt

    :meth:`run` interprets the program against a byte-addressed sparse
    memory and yields :class:`MicroOp` records for the timing model.
    """

    def __init__(self, source: str) -> None:
        self.labels: Dict[str, int] = {}
        self.instructions: List[_Inst] = []
        self._assemble(source)

    def _assemble(self, source: str) -> None:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            while ":" in text:
                label, _, text = text.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(f"line {lineno}: bad label {label!r}")
                if label in self.labels:
                    raise AssemblyError(f"line {lineno}: duplicate label {label!r}")
                self.labels[label] = len(self.instructions)
                text = text.strip()
            if not text:
                continue
            parts = text.replace(",", " ").split()
            op, args = parts[0].lower(), tuple(parts[1:])
            if op not in _OPCODES:
                raise AssemblyError(f"line {lineno}: unknown opcode {op!r}")
            self.instructions.append(_Inst(op, args, lineno))
        if not self.instructions:
            raise AssemblyError("empty program")

    def run(
        self,
        registers: Optional[Dict[int, int]] = None,
        memory: Optional[Dict[int, int]] = None,
        max_ops: int = 1_000_000,
    ) -> Iterator[MicroOp]:
        """Functionally execute and yield the dynamic micro-op trace.

        ``registers``/``memory`` seed the initial machine state and are
        mutated in place so callers can inspect results after the run.
        Raises :class:`RuntimeError` if ``max_ops`` is exceeded (runaway
        loop protection).
        """
        regs = registers if registers is not None else {}
        fregs: Dict[int, float] = {}
        mem = memory if memory is not None else {}
        pc = 0
        seq = 0

        def r(i: int) -> int:
            return 0 if i == 0 else regs.get(i, 0)

        while 0 <= pc < len(self.instructions):
            if seq >= max_ops:
                raise RuntimeError(f"program exceeded {max_ops} micro-ops")
            inst = self.instructions[pc]
            op, args, line = inst.op, inst.args, inst.line
            opclass = _OPCODES[op]
            next_pc = pc + 1
            uop: MicroOp

            if op == "halt":
                return
            if op == "nop":
                uop = MicroOp(seq, OpClass.NOP, pc=pc)
            elif op in ("add", "sub", "and", "or", "xor", "slt", "mul"):
                d, a, b = (_parse_reg(t, line) for t in args[:3])
                va, vb = r(a), r(b)
                result = {
                    "add": va + vb, "sub": va - vb, "and": va & vb,
                    "or": va | vb, "xor": va ^ vb, "slt": int(va < vb),
                    "mul": va * vb,
                }[op]
                if d != 0:
                    regs[d] = result
                uop = MicroOp(seq, opclass, dst=d, src1=a, src2=b, pc=pc)
            elif op == "addi":
                d, a = _parse_reg(args[0], line), _parse_reg(args[1], line)
                imm = _parse_imm(args[2], line)
                if d != 0:
                    regs[d] = r(a) + imm
                uop = MicroOp(seq, opclass, dst=d, src1=a, pc=pc)
            elif op == "ld":
                d, a = _parse_reg(args[0], line), _parse_reg(args[1], line)
                imm = _parse_imm(args[2], line) if len(args) > 2 else 0
                addr = r(a) + imm
                if d != 0:
                    regs[d] = mem.get(addr, 0)
                uop = MicroOp(seq, opclass, dst=d, src1=a, mem_addr=addr, pc=pc)
            elif op == "st":
                v, a = _parse_reg(args[0], line), _parse_reg(args[1], line)
                imm = _parse_imm(args[2], line) if len(args) > 2 else 0
                addr = r(a) + imm
                mem[addr] = r(v)
                uop = MicroOp(seq, opclass, src1=v, src2=a, mem_addr=addr, pc=pc)
            elif op in ("beq", "bne"):
                a, b = _parse_reg(args[0], line), _parse_reg(args[1], line)
                target = self._target(args[2], line)
                taken = (r(a) == r(b)) if op == "beq" else (r(a) != r(b))
                if taken:
                    next_pc = target
                uop = MicroOp(seq, opclass, src1=a, src2=b, pc=pc,
                              taken=taken)
            elif op == "jmp":
                next_pc = self._target(args[0], line)
                uop = MicroOp(seq, OpClass.BRANCH, pc=pc, taken=True)
            elif op in ("fadd", "fmul"):
                d, a, b = (_parse_reg(t, line) for t in args[:3])
                va, vb = fregs.get(a, 0.0), fregs.get(b, 0.0)
                fregs[d] = va + vb if op == "fadd" else va * vb
                uop = MicroOp(seq, opclass, dst=d, src1=a, src2=b, pc=pc)
            else:  # pragma: no cover - opcode table and dispatch agree
                raise AssemblyError(f"line {line}: unhandled opcode {op!r}")

            yield uop
            seq += 1
            pc = next_pc

    def _target(self, token: str, line: int) -> int:
        token = token.strip().rstrip(",")
        if token in self.labels:
            return self.labels[token]
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblyError(f"line {line}: unknown target {token!r}") from exc
