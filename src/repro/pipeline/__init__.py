"""Out-of-order pipeline substrate (SimpleScalar-like, from scratch)."""

from .alu import FunctionalUnit, make_fp_adders, make_fp_multiplier, make_int_alus
from .branch import GSharePredictor, TracePredictor
from .caches import Cache, MemoryHierarchy
from .config import CacheConfig, ProcessorConfig, ThermalConfig
from .frontend import FetchUnit
from .isa import MicroOp, OpClass, Program
from .issue_queue import CompactingIssueQueue, IQEntry, QueueMode
from .processor import ActivitySnapshot, Processor, ProcessorStats
from .regfile import RegisterFileBank, RenameTable
from .rob import ActiveList, LoadStoreQueue
from .select import SelectNetwork, SelectTree

__all__ = [
    "ActivitySnapshot", "ActiveList", "Cache", "CacheConfig",
    "CompactingIssueQueue", "FetchUnit", "FunctionalUnit",
    "GSharePredictor", "IQEntry", "LoadStoreQueue", "MemoryHierarchy",
    "MicroOp", "OpClass", "Processor", "ProcessorConfig",
    "ProcessorStats", "Program", "QueueMode", "RegisterFileBank",
    "RenameTable", "SelectNetwork", "SelectTree", "ThermalConfig",
    "TracePredictor", "make_fp_adders", "make_fp_multiplier",
    "make_int_alus",
]
