"""Compacting issue queue with two head/tail configurations (paper §2.1).

The queue keeps un-issued instructions in priority order by *position*:
the head holds the oldest (highest-priority) instruction and newly
dispatched instructions enter at the tail.  When instructions issue and
are removed, *compaction* shifts younger entries toward the head to
defragment the queue, which is what makes the select logic simple — and
what concentrates activity (and therefore heat) in the tail region,
because a tail entry moves whenever *any* older instruction issues
while a head entry moves only when instructions below it issue.

Entries are stored in **physical** slot order.  A mode flag determines
how physical slots map to logical priority positions:

* ``QueueMode.NORMAL`` — head at physical slot 0, tail grows upward;
  compaction shifts entries toward slot 0.  The upper physical half is
  the high-activity tail region.
* ``QueueMode.TOGGLED`` — head at physical slot ``n/2`` (the paper's
  Figure 3): logical position ``l`` lives at physical slot
  ``(l + n/2) mod n``.  Entries still compact toward lower physical
  slots and wrap from slot 0 to slot ``n-1`` (charging the paper's
  *long compaction* wire energy).  The lower physical half now holds
  the newer instructions, so compaction activity moves there.

Toggling the mode does **not** move any entries — exactly as in the
hardware proposal, only the interpretation of positions (and the select
root's priority) changes, so instruction priorities are transiently
stale after a toggle until the affected instructions drain.

Activity counts live in one preallocated ``int64`` array per queue
(struct-of-arrays; slot layout in :mod:`repro.pipeline.soa`) so the
macro-step kernel can flush a whole interval's deltas in a few array
adds.  ``queue.counters`` is an :class:`IssueQueueCounterView` over
that array preserving the existing read API; boundary consumers take
plain-int :class:`IssueQueueCounters` snapshots, and :mod:`repro.power`
converts snapshot deltas to energy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .isa import MicroOp
from .soa import (IQC_BROADCASTS, IQC_COMPACTION_MOVES_0, IQC_CYCLES,
                  IQC_COUNTER_EVALS_0, IQC_COUNTER_EVALS_1, IQC_INSERTS,
                  IQC_LONG_MOVES_0, IQC_MUX_SELECTS_0, IQC_OCCUPANCY_SUM,
                  IQC_PAYLOAD_OPS, IQC_SELECT_GRANTS, IQC_TOGGLES,
                  new_iq_counter_array)


class QueueMode(enum.Enum):
    """Head/tail configuration of the compacting queue."""

    NORMAL = 0
    TOGGLED = 1


@dataclass(slots=True)
class IQEntry:
    """One occupied issue-queue slot (slotted: wakeup and compaction
    touch every entry every cycle)."""

    op: MicroOp
    rob_index: int
    #: Physical register tags this entry still waits on.
    waiting_tags: Set[int]
    #: Cycle at which the entry was granted issue, or None.
    issued_at: Optional[int] = None

    @property
    def ready(self) -> bool:
        return not self.waiting_tags and self.issued_at is None


@dataclass
class IssueQueueCounters:
    """Plain-int snapshot of one queue's cumulative activity counts,
    split per physical half where the underlying wires live.  Index 0
    is the lower physical half.  (Live state is the SoA array behind
    :class:`IssueQueueCounterView`; this DTO is what checkpoints and
    the power accountant's snapshot diffs carry.)"""

    #: Actual entry movements (defragmentation shifts).
    compaction_moves: List[int] = field(default_factory=lambda: [0, 0])
    #: Destination slots receiving a new value.
    mux_selects: List[int] = field(default_factory=lambda: [0, 0])
    #: Movements that crossed the physical wrap (long wires).
    long_moves: List[int] = field(default_factory=lambda: [0, 0])
    #: Entry-cycles with compaction logic enabled: a valid entry whose
    #: clock gating cannot fire because an invalid entry sits below it
    #: (the paper's gating rules 1 and 2).  Dynamic logic precharges
    #: every such cycle, so this - not the move count - is what the
    #: data/mux/counter energies multiply.
    counter_evals: List[int] = field(default_factory=lambda: [0, 0])
    broadcasts: int = 0
    payload_ops: int = 0
    select_grants: int = 0
    inserts: int = 0
    cycles: int = 0
    toggles: int = 0
    #: Sum of per-cycle occupancy (for windowed averages).
    occupancy_sum: int = 0

    def snapshot(self) -> "IssueQueueCounters":
        return IssueQueueCounters(
            list(self.compaction_moves), list(self.mux_selects),
            list(self.long_moves), list(self.counter_evals),
            self.broadcasts, self.payload_ops, self.select_grants,
            self.inserts, self.cycles, self.toggles,
            self.occupancy_sum,
        )


class _HalfPair:
    """Two-element write-through view over adjacent SoA counter slots
    (index 0 = lower physical half).  Supports indexing, iteration, and
    list comparison so call sites treating a per-half counter as a
    two-element list keep working — including in-place element updates
    (``counters.counter_evals[0] += n`` lands in the array)."""

    __slots__ = ("_c", "_base")

    def __init__(self, array: Any, base: int) -> None:
        self._c = array
        self._base = base

    def __getitem__(self, index: int) -> int:
        return int(self._c[self._base + range(2)[index]])

    def __setitem__(self, index: int, value: int) -> None:
        self._c[self._base + range(2)[index]] = value

    def __len__(self) -> int:
        return 2

    def __iter__(self):
        c, base = self._c, self._base
        yield int(c[base])
        yield int(c[base + 1])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _HalfPair):
            other = list(other)
        return list(self) == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(list(self))


class IssueQueueCounterView:
    """View over one queue's SoA counter array, exposing the same
    attributes as :class:`IssueQueueCounters` (per-half counters come
    back as two-element :class:`_HalfPair` write-through views)."""

    __slots__ = ("_c",)

    def __init__(self, array: Any) -> None:
        self._c = array

    @property
    def compaction_moves(self) -> _HalfPair:
        return _HalfPair(self._c, IQC_COMPACTION_MOVES_0)

    @property
    def mux_selects(self) -> _HalfPair:
        return _HalfPair(self._c, IQC_MUX_SELECTS_0)

    @property
    def long_moves(self) -> _HalfPair:
        return _HalfPair(self._c, IQC_LONG_MOVES_0)

    @property
    def counter_evals(self) -> _HalfPair:
        return _HalfPair(self._c, IQC_COUNTER_EVALS_0)

    @property
    def broadcasts(self) -> int:
        return int(self._c[IQC_BROADCASTS])

    @property
    def payload_ops(self) -> int:
        return int(self._c[IQC_PAYLOAD_OPS])

    @property
    def select_grants(self) -> int:
        return int(self._c[IQC_SELECT_GRANTS])

    @property
    def inserts(self) -> int:
        return int(self._c[IQC_INSERTS])

    @property
    def cycles(self) -> int:
        return int(self._c[IQC_CYCLES])

    @property
    def toggles(self) -> int:
        return int(self._c[IQC_TOGGLES])

    @property
    def occupancy_sum(self) -> int:
        return int(self._c[IQC_OCCUPANCY_SUM])

    def snapshot(self) -> IssueQueueCounters:
        """Plain-int DTO of the current counts (one array pass)."""
        v = self._c.tolist()
        return IssueQueueCounters(
            v[IQC_COMPACTION_MOVES_0:IQC_COMPACTION_MOVES_0 + 2],
            v[IQC_MUX_SELECTS_0:IQC_MUX_SELECTS_0 + 2],
            v[IQC_LONG_MOVES_0:IQC_LONG_MOVES_0 + 2],
            v[IQC_COUNTER_EVALS_0:IQC_COUNTER_EVALS_1 + 1],
            v[IQC_BROADCASTS], v[IQC_PAYLOAD_OPS],
            v[IQC_SELECT_GRANTS], v[IQC_INSERTS], v[IQC_CYCLES],
            v[IQC_TOGGLES], v[IQC_OCCUPANCY_SUM],
        )

    def restore(self, values: IssueQueueCounters) -> None:
        """Adopt a snapshot DTO's counts into the live array."""
        c = self._c
        c[IQC_COMPACTION_MOVES_0:IQC_COMPACTION_MOVES_0 + 2] = (
            values.compaction_moves)
        c[IQC_MUX_SELECTS_0:IQC_MUX_SELECTS_0 + 2] = values.mux_selects
        c[IQC_LONG_MOVES_0:IQC_LONG_MOVES_0 + 2] = values.long_moves
        c[IQC_COUNTER_EVALS_0:IQC_COUNTER_EVALS_1 + 1] = (
            values.counter_evals)
        c[IQC_BROADCASTS] = values.broadcasts
        c[IQC_PAYLOAD_OPS] = values.payload_ops
        c[IQC_SELECT_GRANTS] = values.select_grants
        c[IQC_INSERTS] = values.inserts
        c[IQC_CYCLES] = values.cycles
        c[IQC_TOGGLES] = values.toggles
        c[IQC_OCCUPANCY_SUM] = values.occupancy_sum


class CompactingIssueQueue:
    """A compacting issue queue with activity-toggling support."""

    def __init__(self, n_entries: int, compact_width: int,
                 replay_window: int = 2) -> None:
        if n_entries < 4 or n_entries % 2:
            raise ValueError("queue needs an even entry count >= 4")
        if compact_width < 1:
            raise ValueError("compact_width must be >= 1")
        self.n_entries = n_entries
        self.mid = n_entries // 2
        self.compact_width = compact_width
        self.replay_window = replay_window
        self.mode = QueueMode.NORMAL
        self.slots: List[Optional[IQEntry]] = [None] * n_entries
        #: SoA counter storage (slot layout in repro.pipeline.soa).
        self._c = new_iq_counter_array()
        self.counters = IssueQueueCounterView(self._c)
        self._now = 0
        #: logical position -> physical slot, for the current mode.
        self._order: List[int] = list(range(n_entries))
        #: logical position one past the youngest entry (the tail).
        self._top = 0
        #: number of empty slots at logical positions below the tail.
        self._holes = 0
        #: entries granted issue but not yet drained from the queue.
        self._pending_removal: List[IQEntry] = []
        #: tag -> entries still waiting on it.  A broadcast wakes only
        #: the entries registered for its tag instead of scanning every
        #: slot; each registration receives exactly one broadcast (a
        #: physical tag has one producer per allocation, and rename
        #: cannot recycle the tag before that producer writes back).
        self._waiters: Dict[int, List[IQEntry]] = {}

    def adopt_counter_storage(self, row: Any) -> None:
        """Rebind counter storage to an externally-owned 15-slot row
        (a :class:`~repro.pipeline.soa.RunAxisStore` segment), carrying
        the current values over.  The public ``counters`` view is
        rebuilt so boundary consumers keep reading live storage."""
        if row.shape != self._c.shape or row.dtype != self._c.dtype:
            raise ValueError("counter storage shape/dtype mismatch")
        row[:] = self._c
        self._c = row
        self.counters = IssueQueueCounterView(row)

    # ------------------------------------------------------------------
    # position mapping
    # ------------------------------------------------------------------
    def phys(self, logical: int) -> int:
        """Physical slot index of logical priority position ``logical``."""
        if not 0 <= logical < self.n_entries:
            raise IndexError(logical)
        return self._order[logical]

    def logical(self, phys: int) -> int:
        """Logical priority position of physical slot ``phys``."""
        if not 0 <= phys < self.n_entries:
            raise IndexError(phys)
        if self.mode is QueueMode.NORMAL:
            return phys
        return (phys - self.mid) % self.n_entries

    def half_of(self, phys: int) -> int:
        """Physical half (0 = lower) holding physical slot ``phys``."""
        return 0 if phys < self.mid else 1

    def _rebuild_order(self) -> None:
        if self.mode is QueueMode.NORMAL:
            self._order = list(range(self.n_entries))
        else:
            self._order = [(l + self.mid) % self.n_entries
                           for l in range(self.n_entries)]
        # Recompute tail and holes for the new logical geometry.
        top = 0
        occupied = 0
        for logical in range(self.n_entries):
            if self.slots[self._order[logical]] is not None:
                top = logical + 1
                occupied += 1
        self._top = top
        self._holes = top - occupied

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._top - self._holes

    def entries(self) -> Iterator[Tuple[int, IQEntry]]:
        """Yield ``(logical_position, entry)`` in priority order."""
        order, slots = self._order, self.slots
        for logical in range(self._top):
            entry = slots[order[logical]]
            if entry is not None:
                yield logical, entry

    def can_insert(self, count: int = 1) -> bool:
        """Whether ``count`` instructions can dispatch this cycle.

        Dispatch inserts strictly at the tail; holes below the tail are
        unusable until compaction reclaims them, so a fragmented queue
        can refuse inserts even when not full — matching hardware.
        """
        return self._top + count <= self.n_entries

    def insert(self, op: MicroOp, rob_index: int,
               waiting_tags: Set[int]) -> IQEntry:
        """Dispatch one instruction at the tail.

        Raises :class:`RuntimeError` when the tail has reached the end
        of the queue (callers gate on :meth:`can_insert`).
        """
        if self._top >= self.n_entries:
            raise RuntimeError("issue queue tail at capacity")
        entry = IQEntry(op=op, rob_index=rob_index,
                        waiting_tags=set(waiting_tags))
        self.slots[self._order[self._top]] = entry
        self._top += 1
        self._c[IQC_INSERTS] += 1
        if entry.waiting_tags:
            waiters = self._waiters
            for tag in entry.waiting_tags:
                bucket = waiters.get(tag)
                if bucket is None:
                    waiters[tag] = [entry]
                else:
                    bucket.append(entry)
        return entry

    # ------------------------------------------------------------------
    # wakeup / select interface
    # ------------------------------------------------------------------
    def wakeup(self, tag: int) -> None:
        """Broadcast a completing physical-register tag to all entries.

        The hardware broadcast reaches every occupied slot; here the
        ``_waiters`` index delivers the identical state change (clear
        ``tag`` from exactly the entries waiting on it) without the
        per-slot scan.  The broadcast *count* — what the power model
        charges — is per call, same as before.
        """
        self._c[IQC_BROADCASTS] += 1
        entries = self._waiters.pop(tag, None)
        if entries is not None:
            for entry in entries:
                entry.waiting_tags.discard(tag)

    def request_vector(self) -> List[bool]:
        """Per-physical-slot issue requests (select-tree input)."""
        return [entry is not None and entry.ready for entry in self.slots]

    def ready_physical_in_priority(self) -> List[int]:
        """Physical slots with requesting entries, priority order.

        This is what the serialized select trees compute collectively:
        tree ``k`` grants the ``k``-th element (see
        :mod:`repro.pipeline.select` for the equivalence argument).
        """
        order, slots = self._order, self.slots
        out = []
        for logical in range(self._top):
            phys = order[logical]
            entry = slots[phys]
            if (entry is not None and entry.issued_at is None
                    and not entry.waiting_tags):
                out.append(phys)
        return out

    def grant(self, phys: int) -> IQEntry:
        """Select granted physical slot ``phys``; returns the entry."""
        entry = self.slots[phys]
        if entry is None or not entry.ready:
            raise RuntimeError(f"grant to non-requesting slot {phys}")
        entry.issued_at = self._now
        self._pending_removal.append(entry)
        c = self._c
        c[IQC_SELECT_GRANTS] += 1
        c[IQC_PAYLOAD_OPS] += 1
        return entry

    # ------------------------------------------------------------------
    # per-cycle maintenance
    # ------------------------------------------------------------------
    def tick(self) -> None:  # repro: hot-loop
        """Advance one cycle: retire replay-safe issued entries and
        compact, charging activity to the physical halves involved.

        An entry is *marked invalid* the moment it issues (it lingers
        for the replay window before its slot is reclaimed), so the
        per-cycle gating charge applies from the issue cycle onward.
        """
        self._now += 1
        c = self._c
        c[IQC_CYCLES] += 1
        c[IQC_OCCUPANCY_SUM] += self._top - self._holes
        if self._holes == 0 and not self._pending_removal:
            return  # fully compacted, nothing marked invalid: all gated
        ce0, ce1, cm0, cm1, mx0, mx1, lm0, lm1 = self._compact()
        if ce0:
            c[IQC_COUNTER_EVALS_0] += ce0
        if ce1:
            c[IQC_COUNTER_EVALS_1] += ce1
        if cm0:
            c[IQC_COMPACTION_MOVES_0] += cm0
        if cm1:
            c[IQC_COMPACTION_MOVES_0 + 1] += cm1
        if mx0:
            c[IQC_MUX_SELECTS_0] += mx0
        if mx1:
            c[IQC_MUX_SELECTS_0 + 1] += mx1
        if lm0:
            c[IQC_LONG_MOVES_0] += lm0
        if lm1:
            c[IQC_LONG_MOVES_0 + 1] += lm1

    def _compact(self) -> Tuple[int, int, int, int, int, int, int, int]:
        # repro: hot-loop
        """One compaction step.  Returns the per-half activity tallies
        ``(ce0, ce1, cm0, cm1, mx0, mx1, lm0, lm1)`` — counter evals,
        compaction moves, mux selects, long moves — instead of flushing
        them to the SoA array itself: :meth:`tick` applies them per
        call, while the macro-step kernel accumulates them in plain
        locals and flushes once per chunk (a numpy scalar add per tick
        would dominate its loop)."""
        window = self.replay_window
        now = self._now
        order, slots = self._order, self.slots
        pending = self._pending_removal
        ce0 = ce1 = 0
        if (self._holes == 0 and pending
                and now - pending[0].issued_at < window):
            # Dense queue and nothing expires this cycle (``pending``
            # is in issue order, so its head is the oldest): no entry
            # can move and the slot arrays stay as they are.  Only the
            # gating charges apply — every entry above an
            # invalid-marked (issued) slot evaluates its counter
            # stages (rules 1 and 2).
            mid = self.mid
            top = self._top
            first = top
            for logical in range(top):
                if slots[order[logical]].issued_at is not None:
                    first = logical
                    break
            # Every entry above the lowest invalid-marked slot evaluates,
            # including other issued entries.
            for logical in range(first + 1, top):
                if order[logical] < mid:
                    ce0 += 1
                else:
                    ce1 += 1
            return ce0, ce1, 0, 0, 0, 0, 0, 0
        cm0 = cm1 = mx0 = mx1 = lm0 = lm1 = 0
        compact_width = self.compact_width
        n = self.n_entries
        mid = self.mid
        toggled = self.mode is QueueMode.TOGGLED
        boundary = n - mid  # logical position living at physical slot 0
        # The rebuilt slot array IS the modelled compaction shift.
        new_slots: List[Optional[IQEntry]] = [None] * n  # repro: noqa[REP007]
        #: slots reclaimable this cycle (holes + replay-safe entries).
        reclaimable_below = 0
        #: invalid-marked slots (holes + every issued entry): these
        #: defeat the clock gating of every entry above them.
        marked_below = 0
        top = 0
        occupied = 0
        removed = False
        for logical in range(self._top):
            src_phys = order[logical]
            entry = slots[src_phys]
            if entry is None:
                reclaimable_below += 1
                marked_below += 1
                continue
            issued_at = entry.issued_at
            issued = issued_at is not None
            if issued and now - issued_at >= window:
                reclaimable_below += 1
                marked_below += 1
                removed = True
                continue
            src_low = src_phys < mid
            if marked_below:
                # Gating rules 1 and 2: an invalid entry below means
                # this entry's data lines, mux selects, and counter
                # stages all evaluate this cycle.
                if src_low:
                    ce0 += 1
                else:
                    ce1 += 1
            shift = reclaimable_below
            if shift > compact_width:
                shift = compact_width
            dst_logical = logical - shift
            dst_phys = order[dst_logical]
            new_slots[dst_phys] = entry
            top = dst_logical + 1
            occupied += 1
            if issued:
                marked_below += 1  # marked invalid while awaiting replay
            if shift:
                if src_low:
                    cm0 += 1
                else:
                    cm1 += 1
                if dst_phys < mid:
                    mx0 += 1
                else:
                    mx1 += 1
                if toggled and logical >= boundary > dst_logical:
                    if src_low:
                        lm0 += 1
                    else:
                        lm1 += 1
        self.slots = new_slots
        self._top = top
        self._holes = top - occupied
        if removed:
            # Replay-window expiry; runs only on removal cycles.
            self._pending_removal = [  # repro: noqa[REP007]
                e for e in self._pending_removal
                if now - e.issued_at < window]
        return ce0, ce1, cm0, cm1, mx0, mx1, lm0, lm1

    # ------------------------------------------------------------------
    # activity toggling (the paper's technique)
    # ------------------------------------------------------------------
    def toggle(self) -> None:
        """Switch head/tail configuration without moving entries."""
        self.mode = (QueueMode.TOGGLED if self.mode is QueueMode.NORMAL
                     else QueueMode.NORMAL)
        self._c[IQC_TOGGLES] += 1
        self._rebuild_order()

    def flush(self) -> None:
        """Drop all entries (pipeline squash)."""
        self.slots = [None] * self.n_entries
        self._pending_removal = []
        self._waiters = {}
        self._top = 0
        self._holes = 0

    def occupancy_by_half(self) -> Tuple[int, int]:
        """Number of occupied slots in each physical half."""
        low = sum(1 for p in range(self.mid) if self.slots[p] is not None)
        return low, len(self) - low

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Live references to the queue's mutable state; the caller
        serializes them (entry identity with the ROB and functional
        units is preserved by serializing the whole processor state in
        one pass).  Counters are captured by value — the live SoA array
        stays owned by this queue."""
        return {
            "slots": self.slots,
            "counters": self.counters.snapshot(),
            "mode": self.mode,
            "now": self._now,
            "top": self._top,
            "holes": self._holes,
            "pending_removal": self._pending_removal,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a deserialized :meth:`snapshot_state` payload in
        place; the wakeup waiters index is rebuilt from the entries."""
        self.slots = list(state["slots"])
        self.counters.restore(state["counters"])
        self.mode = state["mode"]
        self._now = state["now"]
        self._rebuild_order()
        self._top = state["top"]
        self._holes = state["holes"]
        self._pending_removal = list(state["pending_removal"])
        waiters: Dict[int, List[IQEntry]] = {}
        for entry in self.slots:
            if entry is not None:
                for tag in entry.waiting_tags:
                    waiters.setdefault(tag, []).append(entry)
        self._waiters = waiters
