"""Processor and platform configuration (paper Table 2).

All structural parameters of the simulated out-of-order core live here.
The defaults reproduce Table 2 of the paper: a 6-wide out-of-order core
with a 128-entry active list, 64-entry LSQ, 32-entry integer and FP
issue queues, 6 integer ALUs, 4 FP adders, two integer register-file
copies, 64 KB 4-way 2-cycle L1 caches, a 2 MB 8-way L2, 250-cycle
memory, 4.2 GHz at 1.2 V in 90 nm, a 358 K thermal ceiling and a 10 ms
cooling stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    latency: int
    block_bytes: int = 64
    ports: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.block_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        n_blocks = self.size_bytes // self.block_bytes
        if n_blocks % self.assoc:
            raise ValueError("cache size must be divisible by assoc * block")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.block_bytes // self.assoc


@dataclass(frozen=True)
class ProcessorConfig:
    """Structural parameters of the simulated core (paper Table 2)."""

    issue_width: int = 6
    commit_width: int = 6
    fetch_width: int = 6
    active_list_entries: int = 128
    lsq_entries: int = 64
    int_queue_entries: int = 32
    fp_queue_entries: int = 32
    num_int_alus: int = 6
    num_fp_adders: int = 4
    num_regfile_copies: int = 2
    num_physical_regs: int = 256
    branch_mispredict_penalty: int = 10
    #: Cycles an issued instruction lingers in the issue queue before
    #: its slot is reclaimed, covering L1-miss replay (paper 2.1:
    #: "one or more cycles").  While it lingers it is marked invalid,
    #: defeating the clock gating of every entry above it.
    replay_window: int = 4
    l1d: CacheConfig = CacheConfig(64 * 1024, 4, 2)
    l1i: CacheConfig = CacheConfig(64 * 1024, 4, 2)
    l2: CacheConfig = CacheConfig(2 * 1024 * 1024, 8, 12)
    memory_latency: int = 250

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.int_queue_entries % 2 or self.fp_queue_entries % 2:
            raise ValueError("issue queues must have an even entry count "
                             "(they are split into two thermal halves)")
        if self.num_int_alus % self.num_regfile_copies:
            raise ValueError("integer ALU count must divide evenly across "
                             "register-file copies")
        if self.num_physical_regs < 2 * self.active_list_entries:
            raise ValueError("physical register file too small for the "
                             "active list (rename would deadlock)")


@dataclass(frozen=True)
class ThermalConfig:
    """Package and thermal-management parameters (paper Table 2 / §3).

    ``acceleration`` shrinks all thermal capacitances so that heating
    and cooling dynamics that take milliseconds (millions of cycles at
    4.2 GHz) complete within runs of a few hundred thousand cycles; the
    ratios sensing interval << time constant << run length are
    preserved.  See DESIGN.md §5.
    """

    frequency_hz: float = 4.2e9
    vdd: float = 1.2
    max_temperature_k: float = 358.0
    ambient_k: float = 315.0
    heatsink_thickness_m: float = 6.9e-3
    convection_resistance_k_per_w: float = 0.8
    cooling_time_s: float = 10e-3
    sensor_interval_cycles: int = 250
    toggle_threshold_k: float = 0.5
    #: Hysteresis below the ceiling before a turned-off copy re-enables.
    turnoff_hysteresis_k: float = 0.4
    #: Register-file copies turn off this far below the critical
    #: threshold so writes can continue while the copy cools (paper
    #: 2.3, stale-copy solution 1).
    rf_turnoff_margin_k: float = 0.5
    #: Temporal fallback when spatial techniques cannot help:
    #: "stall" halts the core for the cooling time (Pentium 4 style,
    #: the paper's choice); "throttle" gates the front end and issue on
    #: alternate cycles for twice the cooling time (50% duty cycle),
    #: trading a longer cool-down for continued forward progress.
    temporal_technique: str = "stall"
    acceleration: float = 8_000.0

    def __post_init__(self) -> None:
        if self.max_temperature_k <= self.ambient_k:
            raise ValueError("thermal ceiling must exceed ambient")
        if self.sensor_interval_cycles <= 0:
            raise ValueError("sensor interval must be positive")
        if self.acceleration < 1.0:
            raise ValueError("acceleration must be >= 1")
        if self.temporal_technique not in ("stall", "throttle"):
            raise ValueError("temporal_technique must be 'stall' or "
                             "'throttle'")

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def sensor_interval_s(self) -> float:
        """Wall-clock seconds represented by one sensing interval,
        after thermal acceleration."""
        return self.sensor_interval_cycles * self.cycle_time_s * self.acceleration

    @property
    def cooling_cycles(self) -> int:
        """Cycles of a global cooling stall, after acceleration."""
        return max(
            self.sensor_interval_cycles,
            int(round(self.cooling_time_s / (self.cycle_time_s * self.acceleration))),
        )


DEFAULT_PROCESSOR = ProcessorConfig()
DEFAULT_THERMAL = ThermalConfig()


def scaled_thermal(base: ThermalConfig = DEFAULT_THERMAL, **overrides) -> ThermalConfig:
    """Return a copy of ``base`` with the given fields replaced."""
    return replace(base, **overrides)
