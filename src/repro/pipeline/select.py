"""Select trees and issue arbitration (paper §2.1–§2.2, Figure 2).

Each ALU has one hierarchical select tree over the issue-queue slots.
A tree is built from arity-4 arbiter nodes with a two-input root whose
children cover the two physical halves of the queue.  Requests flow up;
the root sends one grant back down, always to the *bottom-most*
(lowest-physical-index) requesting input at every node — which encodes
"oldest first" because the compacting queue keeps older instructions at
lower positions relative to the head.

Only the root is mode-aware: in the queue's NORMAL configuration the
lower half is higher priority; in the TOGGLED configuration (head moved
to the middle of the queue) the upper half is higher priority.  The
subtrees never change — this is the paper's argument that activity
toggling adds almost no select-logic complexity.

The trees for a W-wide machine are *serialized* in static priority
order [Palacharla et al.]: tree ``k`` masks its request vector with the
grants of trees ``0..k-1``.  Because tree ``k`` is hard-wired to ALU
``k``, the serialization is what makes ALU utilization asymmetric.

Because every tree implements the same priority function over the same
request vector, the serialized cascade collectively grants the ``k``-th
highest-priority request to the ``k``-th non-busy tree —
:class:`SelectNetwork` exploits that equivalence for speed while
:class:`SelectTree` models one hardware tree faithfully (the test suite
asserts the two agree on random request vectors).

:class:`SelectNetwork` also implements the idealized *round-robin*
policy the paper uses as an upper bound (rotating which tree serializes
first each cycle) and honours per-ALU ``busy`` bits, which is the whole
hardware cost of fine-grain turnoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .issue_queue import CompactingIssueQueue, QueueMode


@dataclass
class SelectCounters:
    """Cumulative select-network activity."""

    cycles: int = 0
    grants_per_tree: List[int] = field(default_factory=list)
    requests_seen: int = 0


class SelectTree:
    """One hierarchical arbiter hard-wired to one ALU."""

    def __init__(self, n_entries: int, leaf_arity: int = 4) -> None:
        if n_entries % 2:
            raise ValueError("n_entries must be even (two root subtrees)")
        if leaf_arity < 2:
            raise ValueError("leaf_arity must be >= 2")
        self.n_entries = n_entries
        self.leaf_arity = leaf_arity
        self.half = n_entries // 2

    def select(self, requests: Sequence[bool], mode: QueueMode) -> Optional[int]:
        """Return the granted physical slot, or ``None``.

        ``requests`` is indexed by physical slot.  The walk mirrors the
        hardware: each subtree independently reduces to its highest-
        priority requester (lowest physical index); the root picks
        between halves according to ``mode``.
        """
        if len(requests) != self.n_entries:
            raise ValueError("request vector length mismatch")
        low = self._subtree_select(requests, 0, self.half)
        high = self._subtree_select(requests, self.half, self.n_entries)
        if mode is QueueMode.NORMAL:
            first, second = low, high
        else:
            first, second = high, low
        return first if first is not None else second

    def _subtree_select(self, requests: Sequence[bool],
                        start: int, stop: int) -> Optional[int]:
        span = stop - start
        if span <= self.leaf_arity:
            for phys in range(start, stop):
                if requests[phys]:
                    return phys
            return None
        child_span = max(self.leaf_arity, span // self.leaf_arity)
        pos = start
        while pos < stop:
            granted = self._subtree_select(
                requests, pos, min(pos + child_span, stop))
            if granted is not None:
                return granted
            pos += child_span
        return None


class SelectNetwork:
    """W serialized select trees, one per ALU, with busy masking."""

    def __init__(self, n_entries: int, n_alus: int,
                 round_robin: bool = False) -> None:
        if n_alus < 1:
            raise ValueError("need at least one ALU")
        self.n_entries = n_entries
        self.n_alus = n_alus
        self.round_robin = round_robin
        self.trees = [SelectTree(n_entries) for _ in range(n_alus)]
        self.counters = SelectCounters(grants_per_tree=[0] * n_alus)
        self._rr_offset = 0

    def arbitrate(self, queue: CompactingIssueQueue,
                  busy: Sequence[bool],
                  eligible: Optional[Callable[[int], bool]] = None,
                  limit: Optional[int] = None,
                  ) -> List[Optional[int]]:
        """Run one select cycle.

        ``busy[k]`` suppresses tree ``k`` entirely (the fine-grain
        turnoff hook: an overheated ALU is marked busy).  ``eligible``
        optionally filters physical slots (e.g. an op class only some
        units execute).  ``limit`` caps the number of grants (the
        machine's issue-width budget).  Returns ``grants`` where
        ``grants[k]`` is the physical slot issued to ALU ``k`` or
        ``None``.
        """
        if len(busy) != self.n_alus:
            raise ValueError("busy vector length mismatch")
        ready = queue.ready_physical_in_priority()
        if eligible is not None:
            ready = [p for p in ready if eligible(p)]
        self.counters.cycles += 1
        self.counters.requests_seen += len(ready)

        order = range(self.n_alus)
        if self.round_robin:
            offset = self._rr_offset
            order = [(i + offset) % self.n_alus for i in range(self.n_alus)]
            self._rr_offset = (offset + 1) % self.n_alus

        grants: List[Optional[int]] = [None] * self.n_alus
        budget = len(ready) if limit is None else min(limit, len(ready))
        taken = 0
        grants_per_tree = self.counters.grants_per_tree
        for tree_index in order:
            if taken >= budget:
                break
            if busy[tree_index]:
                continue  # busy signal: no grant, no masking needed
            grants[tree_index] = ready[taken]
            grants_per_tree[tree_index] += 1
            taken += 1
        return grants

    def arbitrate_with_trees(self, queue: CompactingIssueQueue,
                             busy: Sequence[bool],
                             eligible: Optional[Callable[[int], bool]] = None,
                             ) -> List[Optional[int]]:
        """Reference implementation walking every hardware tree with
        serialized masking; used by tests to validate the fast path."""
        if len(busy) != self.n_alus:
            raise ValueError("busy vector length mismatch")
        requests = queue.request_vector()
        if eligible is not None:
            requests = [r and eligible(p) for p, r in enumerate(requests)]
        order = list(range(self.n_alus))
        if self.round_robin:
            order = order[self._rr_offset:] + order[:self._rr_offset]
        grants: List[Optional[int]] = [None] * self.n_alus
        for tree_index in order:
            if busy[tree_index]:
                continue
            granted = self.trees[tree_index].select(requests, queue.mode)
            if granted is None:
                continue
            grants[tree_index] = granted
            requests[granted] = False
            # logical priority is identical across trees, so masking the
            # winner is the only inter-tree interaction
        return grants

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """The round-robin rotation is warm state: two runs with the
        same policy diverge if it is not restored."""
        return {"counters": self.counters, "rr_offset": self._rr_offset}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.counters = state["counters"]
        self._rr_offset = state["rr_offset"]
