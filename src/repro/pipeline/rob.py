"""Active list (reorder buffer) and load/store queue.

The active list holds every in-flight instruction in program order and
retires up to ``commit_width`` completed instructions per cycle from
its head.  The LSQ is modelled as occupancy (entries held from dispatch
to commit); memory disambiguation is not needed because the pipeline is
trace driven (addresses are architecturally correct).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .isa import MicroOp, OpClass


@dataclass(slots=True)
class ROBEntry:
    """One active-list slot."""

    op: MicroOp
    dst_tag: Optional[int]
    freed_tag: Optional[int]
    done: bool = False
    issued: bool = False


class ActiveList:
    """Circular in-order reorder buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[Optional[ROBEntry]] = [None] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self.retired = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    def allocate(self, entry: ROBEntry) -> int:
        """Append at the tail; returns the entry's index."""
        if self.full:
            raise RuntimeError("active list full")
        index = self._tail
        self._entries[index] = entry
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        return index

    def get(self, index: int) -> ROBEntry:
        entry = self._entries[index]
        if entry is None:
            raise IndexError(f"no active entry at {index}")
        return entry

    def mark_done(self, index: int) -> None:
        self.get(index).done = True

    def commit_ready(self) -> List[ROBEntry]:
        """Entries at the head that are complete, oldest first (without
        removing them)."""
        ready = []
        pos = self._head
        for _ in range(self._count):
            entry = self._entries[pos]
            if entry is None or not entry.done:
                break
            ready.append(entry)
            pos = (pos + 1) % self.capacity
        return ready

    def ready_count(self, limit: int) -> int:
        """Number of completed entries at the head, capped at ``limit``.

        Equivalent to ``min(len(commit_ready()), limit)`` without
        materialising the list past the commit width.
        """
        ready = 0
        pos = self._head
        entries = self._entries
        capacity = self.capacity
        remaining = min(self._count, limit)
        while ready < remaining:
            entry = entries[pos]
            if entry is None or not entry.done:
                break
            ready += 1
            pos += 1
            if pos == capacity:
                pos = 0
        return ready

    def retire(self, count: int) -> List[ROBEntry]:
        """Remove ``count`` completed entries from the head."""
        retired: List[ROBEntry] = []
        for _ in range(count):
            entry = self._entries[self._head]
            if entry is None or not entry.done:
                raise RuntimeError("retiring an incomplete entry")
            retired.append(entry)
            self._entries[self._head] = None
            self._head = (self._head + 1) % self.capacity
            self._count -= 1
        self.retired += len(retired)
        return retired

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"entries": self._entries, "head": self._head,
                "tail": self._tail, "count": self._count,
                "retired": self.retired}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._entries = list(state["entries"])
        self._head = state["head"]
        self._tail = state["tail"]
        self._count = state["count"]
        self.retired = state["retired"]


class LoadStoreQueue:
    """Occupancy model of the unified LSQ."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    def allocate(self) -> None:
        if self.full:
            raise RuntimeError("LSQ full")
        self._count += 1

    def release(self) -> None:
        if self._count == 0:
            raise RuntimeError("LSQ underflow")
        self._count -= 1

    @staticmethod
    def needs_entry(op: MicroOp) -> bool:
        return op.opclass in (OpClass.LOAD, OpClass.STORE)

    def snapshot_state(self) -> Dict[str, Any]:
        return {"count": self._count}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._count = state["count"]
