"""Struct-of-arrays (SoA) counter storage for the pipeline hot path.

The measurement loop used to bump per-object Python ``int`` attributes
(``unit.counters.ops += 1``) scattered across every functional unit,
issue queue, and register-file copy.  This module centralizes that
state into preallocated ``numpy`` arrays indexed by unit id, which buys
two things:

* the macro-stepped kernel (:mod:`repro.pipeline.kernel`) can apply a
  whole sensing interval's activity delta in a handful of vectorized
  array operations per macro-step instead of per-cycle attribute bumps;
* boundary consumers (power accountant, metrics, activity toggler)
  read the same counters through cheap views, so the public
  ``unit.counters.ops`` API — and every existing test — is unchanged.

Counters are ``int64``: the largest per-run count (queue entry-cycles)
stays far below 2**63 for any feasible run length.

Layout
------
* :class:`UnitBank` — one array triple (ops, busy_cycles,
  turnoff_events) per functional-unit bank (integer ALUs, FP adders,
  FP multiplier); a unit owns slot ``i`` of its bank's arrays.
* Issue-queue counters — one 15-element array per queue; the ``IQC_*``
  constants below name the slots.  Per-half counters occupy two
  adjacent slots (index 0 = lower physical half).
* Register-file counters — one reads array and one writes array per
  bank, indexed by copy.
* :class:`RunAxisStore` — the batched-grid extension: one
  ``[n_runs, n_counters]`` matrix holding every counter of every run
  in a batch, with named column segments.  A single run's banks,
  queues, and register file adopt row views of the store, so the
  whole single-run API (and the macro-step kernel) keeps working
  unchanged while cross-run operations (broadcasting one run's
  activity delta to runs that executed identically) become one
  vectorized row operation.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

#: Issue-queue counter slots (see ``IssueQueueCounters`` for meaning).
IQC_COMPACTION_MOVES_0 = 0
IQC_COMPACTION_MOVES_1 = 1
IQC_MUX_SELECTS_0 = 2
IQC_MUX_SELECTS_1 = 3
IQC_LONG_MOVES_0 = 4
IQC_LONG_MOVES_1 = 5
IQC_COUNTER_EVALS_0 = 6
IQC_COUNTER_EVALS_1 = 7
IQC_BROADCASTS = 8
IQC_PAYLOAD_OPS = 9
IQC_SELECT_GRANTS = 10
IQC_INSERTS = 11
IQC_CYCLES = 12
IQC_TOGGLES = 13
IQC_OCCUPANCY_SUM = 14
IQC_NFIELDS = 15


def new_iq_counter_array() -> np.ndarray:
    """Preallocated counter storage for one issue queue."""
    return np.zeros(IQC_NFIELDS, dtype=np.int64)


class UnitBank:
    """SoA activity counters for one bank of functional units.

    Every unit of a bank (e.g. the six integer ALUs) shares these
    arrays and owns one slot, so a macro-step can charge busy cycles to
    the whole bank with one masked vector add.
    """

    __slots__ = ("n_units", "ops", "busy_cycles", "turnoff_events")

    def __init__(self, n_units: int) -> None:
        if n_units < 1:
            raise ValueError("a unit bank needs at least one slot")
        self.n_units = n_units
        self.ops = np.zeros(n_units, dtype=np.int64)
        self.busy_cycles = np.zeros(n_units, dtype=np.int64)
        self.turnoff_events = np.zeros(n_units, dtype=np.int64)

    def adopt_storage(self, ops: np.ndarray, busy_cycles: np.ndarray,
                      turnoff_events: np.ndarray) -> None:
        """Rebind the bank's arrays to externally-owned storage
        (row segments of a :class:`RunAxisStore`), carrying the
        current values over.  Callers that alias the old arrays
        (``FunctionalUnit._ops_arr``) must re-alias afterwards."""
        for new, old in ((ops, self.ops), (busy_cycles, self.busy_cycles),
                         (turnoff_events, self.turnoff_events)):
            if new.shape != old.shape or new.dtype != old.dtype:
                raise ValueError("storage shape/dtype mismatch")
        ops[:] = self.ops
        busy_cycles[:] = self.busy_cycles
        turnoff_events[:] = self.turnoff_events
        self.ops = ops
        self.busy_cycles = busy_cycles
        self.turnoff_events = turnoff_events


class RunAxisStore:
    """One ``[n_runs, n_counters]`` int64 matrix backing every SoA
    counter of a batched run group.

    Column segments (in layout order): the three :class:`UnitBank`
    triples (integer ALUs, FP adders, FP multiplier), the two 15-slot
    issue-queue counter rows, and the register-file read/write arrays.
    ``view(run, name)`` returns the writable row segment a component
    adopts; ``row(run)`` returns the whole row, which is how the
    batched kernel broadcasts one run's execution delta to every run
    still sharing its execution (``data[follower] += data[leader] -
    prev``) and how a forked run's own counters are preserved across
    a state restore.

    With ``shared=True`` the matrix is placed in POSIX shared memory
    (:mod:`multiprocessing.shared_memory`) so pool workers executing
    diverged runs of the same group write their counter rows in place:
    a worker calls :meth:`attach` with the parent's :meth:`share_spec`
    and rebinds its row views, and no counter matrix is ever pickled
    across the process boundary.  Workers touch only their own rows,
    so parent and workers never write the same bytes.  The creating
    side owns the segment and must call :meth:`close` (workers call
    it too, to drop their mapping).
    """

    __slots__ = ("n_runs", "n_cols", "data", "_segments", "_geometry",
                 "_shm", "_owner")

    def __init__(self, n_runs: int, n_int_alus: int, n_fp_adders: int,
                 n_rf_copies: int, shared: bool = False) -> None:
        if n_runs < 1:
            raise ValueError("a run-axis store needs at least one run")
        segments: Dict[str, Tuple[int, int]] = {}
        col = 0
        for name, width in (
                ("int_ops", n_int_alus),
                ("int_busy_cycles", n_int_alus),
                ("int_turnoff_events", n_int_alus),
                ("fp_add_ops", n_fp_adders),
                ("fp_add_busy_cycles", n_fp_adders),
                ("fp_add_turnoff_events", n_fp_adders),
                ("fp_mul_ops", 1),
                ("fp_mul_busy_cycles", 1),
                ("fp_mul_turnoff_events", 1),
                ("int_iq", IQC_NFIELDS),
                ("fp_iq", IQC_NFIELDS),
                ("rf_reads", n_rf_copies),
                ("rf_writes", n_rf_copies)):
            segments[name] = (col, col + width)
            col += width
        self.n_runs = n_runs
        self.n_cols = col
        self._segments = segments
        self._geometry = (n_runs, n_int_alus, n_fp_adders, n_rf_copies)
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._owner = False
        if shared:
            nbytes = n_runs * col * np.dtype(np.int64).itemsize
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1))
            self._owner = True
            self.data = np.ndarray((n_runs, col), dtype=np.int64,
                                   buffer=self._shm.buf)
            self.data[:] = 0
        else:
            self.data = np.zeros((n_runs, col), dtype=np.int64)

    def view(self, run: int, name: str) -> np.ndarray:
        """Writable view of one named column segment of one run."""
        lo, hi = self._segments[name]
        return self.data[run, lo:hi]

    def row(self, run: int) -> np.ndarray:
        """Writable view of one run's whole counter row."""
        return self.data[run]

    # -- shared-memory plumbing --------------------------------------

    @property
    def shared(self) -> bool:
        return self._shm is not None

    def share_spec(self) -> Tuple[str, int, int, int, int]:
        """Opaque handle a pool worker passes to :meth:`attach`:
        segment name plus the store geometry (the layout is a pure
        function of the geometry, so the worker rebuilds identical
        column segments)."""
        if self._shm is None:
            raise ValueError("store is not backed by shared memory")
        return (self._shm.name, *self._geometry)

    @classmethod
    def attach(cls, spec: Tuple[str, int, int, int, int]
               ) -> "RunAxisStore":
        """Map an existing shared store created by another process."""
        name, n_runs, n_int_alus, n_fp_adders, n_rf_copies = spec
        store = cls(n_runs, n_int_alus, n_fp_adders, n_rf_copies)
        shm = shared_memory.SharedMemory(name=name)
        store._shm = shm
        store._owner = False
        store.data = np.ndarray((n_runs, store.n_cols), dtype=np.int64,
                                buffer=shm.buf)
        return store

    def close(self) -> None:
        """Release the shared-memory mapping (and destroy the segment
        when this store created it).  Detaches ``data`` into a private
        copy first so stale row views cannot touch unmapped memory.
        Safe to call on non-shared stores and safe to call twice."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self.data = self.data.copy()
        shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - raced cleanup
                pass
