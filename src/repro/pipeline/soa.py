"""Struct-of-arrays (SoA) counter storage for the pipeline hot path.

The measurement loop used to bump per-object Python ``int`` attributes
(``unit.counters.ops += 1``) scattered across every functional unit,
issue queue, and register-file copy.  This module centralizes that
state into preallocated ``numpy`` arrays indexed by unit id, which buys
two things:

* the macro-stepped kernel (:mod:`repro.pipeline.kernel`) can apply a
  whole sensing interval's activity delta in a handful of vectorized
  array operations per macro-step instead of per-cycle attribute bumps;
* boundary consumers (power accountant, metrics, activity toggler)
  read the same counters through cheap views, so the public
  ``unit.counters.ops`` API — and every existing test — is unchanged.

Counters are ``int64``: the largest per-run count (queue entry-cycles)
stays far below 2**63 for any feasible run length.

Layout
------
* :class:`UnitBank` — one array triple (ops, busy_cycles,
  turnoff_events) per functional-unit bank (integer ALUs, FP adders,
  FP multiplier); a unit owns slot ``i`` of its bank's arrays.
* Issue-queue counters — one 15-element array per queue; the ``IQC_*``
  constants below name the slots.  Per-half counters occupy two
  adjacent slots (index 0 = lower physical half).
* Register-file counters — one reads array and one writes array per
  bank, indexed by copy.
"""

from __future__ import annotations

import numpy as np

#: Issue-queue counter slots (see ``IssueQueueCounters`` for meaning).
IQC_COMPACTION_MOVES_0 = 0
IQC_COMPACTION_MOVES_1 = 1
IQC_MUX_SELECTS_0 = 2
IQC_MUX_SELECTS_1 = 3
IQC_LONG_MOVES_0 = 4
IQC_LONG_MOVES_1 = 5
IQC_COUNTER_EVALS_0 = 6
IQC_COUNTER_EVALS_1 = 7
IQC_BROADCASTS = 8
IQC_PAYLOAD_OPS = 9
IQC_SELECT_GRANTS = 10
IQC_INSERTS = 11
IQC_CYCLES = 12
IQC_TOGGLES = 13
IQC_OCCUPANCY_SUM = 14
IQC_NFIELDS = 15


def new_iq_counter_array() -> np.ndarray:
    """Preallocated counter storage for one issue queue."""
    return np.zeros(IQC_NFIELDS, dtype=np.int64)


class UnitBank:
    """SoA activity counters for one bank of functional units.

    Every unit of a bank (e.g. the six integer ALUs) shares these
    arrays and owns one slot, so a macro-step can charge busy cycles to
    the whole bank with one masked vector add.
    """

    __slots__ = ("n_units", "ops", "busy_cycles", "turnoff_events")

    def __init__(self, n_units: int) -> None:
        if n_units < 1:
            raise ValueError("a unit bank needs at least one slot")
        self.n_units = n_units
        self.ops = np.zeros(n_units, dtype=np.int64)
        self.busy_cycles = np.zeros(n_units, dtype=np.int64)
        self.turnoff_events = np.zeros(n_units, dtype=np.int64)
