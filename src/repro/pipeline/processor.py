"""The out-of-order processor: ties every substrate into a cycle loop.

Stage order within :meth:`Processor.step` (one call = one cycle):

1. commit       — retire completed active-list head entries
2. writeback    — drain functional units, wake dependants, resolve branches
3. issue        — select-network arbitration, register reads, unit start
4. queue tick   — issue-queue compaction (the activity the paper studies)
5. dispatch     — rename and insert fetched ops into queues / ROB / LSQ
6. fetch        — pull from the trace

Dynamic thermal management never lives here: the processor only exposes
the mechanisms (global stall, per-unit busy flags, queue toggle,
register-file copy turnoff) that :mod:`repro.core.dtm` drives from
temperature sensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..core.mapping import PortMapping, priority_mapping
from .alu import (FP_ADD_OPCLASSES, FP_MUL_OPCLASSES, INT_OPCLASSES,
                  FunctionalUnit, make_fp_adders, make_fp_multiplier,
                  make_int_alus)
from .branch import BranchPredictor, TracePredictor
from .caches import MemoryHierarchy
from .config import ProcessorConfig
from .frontend import FetchUnit
from .isa import FP_OPCLASSES, NUM_INT_ARCH_REGS, MicroOp, OpClass
from .issue_queue import CompactingIssueQueue, IQEntry
from .regfile import RegisterFileBank, RenameTable
from .rob import ActiveList, LoadStoreQueue, ROBEntry
from .select import SelectNetwork

#: Rename-table row offset for FP architectural registers.
FP_RENAME_OFFSET = NUM_INT_ARCH_REGS


@dataclass
class ProcessorStats:
    """Aggregate run statistics."""

    cycles: int = 0
    committed: int = 0
    stall_cycles: int = 0
    throttled_cycles: int = 0
    issued: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class ActivitySnapshot:
    """Cumulative activity counts for the power model (one point in
    time; the accountant diffs consecutive snapshots)."""

    cycles: int
    committed: int
    int_iq: "object"
    fp_iq: "object"
    alu_ops: List[int]
    fp_add_ops: List[int]
    fp_mul_ops: int
    rf_reads: List[int]
    rf_writes: List[int]
    fp_reg_accesses: int
    l1d_accesses: int
    l2_accesses: int
    fetched: int


class Processor:
    """A 6-wide out-of-order core running a micro-op trace."""

    def __init__(self, trace: Iterator[MicroOp],
                 config: Optional[ProcessorConfig] = None,
                 mapping: Optional[PortMapping] = None,
                 predictor: Optional[BranchPredictor] = None,
                 round_robin_alus: bool = False) -> None:
        self.config = config or ProcessorConfig()
        cfg = self.config
        self.mapping = mapping or priority_mapping(
            cfg.num_int_alus, cfg.num_regfile_copies)
        if self.mapping.n_alus != cfg.num_int_alus:
            raise ValueError("mapping ALU count disagrees with config")

        self.now = 0
        self.stats = ProcessorStats()
        self.stalled_until = 0
        self.throttled_until = 0

        self.fetch = FetchUnit(trace, cfg.fetch_width,
                               predictor or TracePredictor(),
                               cfg.branch_mispredict_penalty)
        self.rename = RenameTable(2 * NUM_INT_ARCH_REGS,
                                  cfg.num_physical_regs)
        self.rob = ActiveList(cfg.active_list_entries)
        self.lsq = LoadStoreQueue(cfg.lsq_entries)
        self.memory = MemoryHierarchy(cfg)

        self.int_iq = CompactingIssueQueue(cfg.int_queue_entries,
                                           cfg.issue_width,
                                           replay_window=cfg.replay_window)
        self.fp_iq = CompactingIssueQueue(cfg.fp_queue_entries,
                                          cfg.issue_width,
                                          replay_window=cfg.replay_window)
        self.int_alus = make_int_alus(cfg.num_int_alus)
        self.fp_adders = make_fp_adders(cfg.num_fp_adders)
        self.fp_mul = make_fp_multiplier()
        self.int_select = SelectNetwork(cfg.int_queue_entries,
                                        cfg.num_int_alus,
                                        round_robin=round_robin_alus)
        self.fp_add_select = SelectNetwork(cfg.fp_queue_entries,
                                           cfg.num_fp_adders,
                                           round_robin=round_robin_alus)
        self.fp_mul_select = SelectNetwork(cfg.fp_queue_entries, 1)
        self.regfile = RegisterFileBank(self.mapping)
        self._all_units = [*self.int_alus, *self.fp_adders, self.fp_mul]
        self.fp_reg_accesses = 0

    # ------------------------------------------------------------------
    # DTM mechanism hooks
    # ------------------------------------------------------------------
    def global_stall(self, cycles: int) -> None:
        """Halt the whole core (temporal technique: cool-down stall)."""
        if cycles < 0:
            raise ValueError("stall length must be non-negative")
        self.stalled_until = max(self.stalled_until, self.now + cycles)

    @property
    def is_stalled(self) -> bool:
        return self.now < self.stalled_until

    def throttle(self, cycles: int) -> None:
        """Duty-cycle throttling: gate fetch/dispatch/issue on alternate
        cycles for ``cycles`` cycles (a gentler temporal technique than
        the full stall — the core keeps half its throughput)."""
        if cycles < 0:
            raise ValueError("throttle length must be non-negative")
        self.throttled_until = max(self.throttled_until,
                                   self.now + cycles)

    @property
    def is_throttled(self) -> bool:
        return self.now < self.throttled_until

    def set_alu_busy(self, index: int, value: bool) -> None:
        """Fine-grain turnoff flag for integer ALU ``index``."""
        self.int_alus[index].set_busy(value)

    def set_fp_adder_busy(self, index: int, value: bool) -> None:
        self.fp_adders[index].set_busy(value)

    def toggle_issue_queues(self) -> None:
        """Activity toggling: flip head/tail mode of both queues."""
        self.int_iq.toggle()
        self.fp_iq.toggle()

    def turn_off_regfile_copy(self, copy: int) -> None:
        for alu in self.regfile.turn_off(copy):
            self.int_alus[alu].set_busy(True)

    def turn_on_regfile_copy(self, copy: int) -> None:
        self.regfile.turn_on(copy)
        blocked = self.regfile.blocked_alus()
        for alu in self.mapping.alus_on_copy(copy):
            if alu not in blocked:
                self.int_alus[alu].set_busy(False)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one cycle."""
        now = self.now + 1
        self.now = now
        stats = self.stats
        stats.cycles += 1
        if now < self.stalled_until:
            stats.stall_cycles += 1
            return
        self._commit()
        self._writeback()
        for unit in self._all_units:
            if unit.busy:
                unit.counters.busy_cycles += 1
        if now < self.throttled_until and now % 2:
            stats.throttled_cycles += 1
            return  # gated cycle: in-flight work drained, nothing new
        self._issue()
        self.int_iq.tick()
        self.fp_iq.tick()
        self._dispatch()
        self.fetch.begin_cycle()
        self.fetch.fetch_cycle(self.now)

    def run(self, max_cycles: int,
            on_sample=None, sample_interval: int = 0) -> ProcessorStats:
        """Run for up to ``max_cycles`` or until the trace drains.

        ``on_sample(processor)`` fires every ``sample_interval`` cycles
        (the thermal sensing hook).
        """
        for _ in range(max_cycles):
            self.step()
            if (sample_interval and on_sample is not None
                    and self.now % sample_interval == 0):
                on_sample(self)
            if self.finished:
                break
        return self.stats

    @property
    def finished(self) -> bool:
        return (self.fetch.drained and len(self.rob) == 0)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        n = self.rob.ready_count(self.config.commit_width)
        if not n:
            return
        for entry in self.rob.retire(n):
            op = entry.op
            if op.opclass is OpClass.STORE and op.mem_addr is not None:
                self.memory.store(op.mem_addr)
            if LoadStoreQueue.needs_entry(op):
                self.lsq.release()
            self.rename.release(entry.freed_tag)
            self.stats.committed += 1

    def _writeback(self) -> None:
        now = self.now
        rob = self.rob
        for unit in self._all_units:
            if not unit._pipeline:
                continue
            for done in unit.drain(now):
                op = done.op
                entry = rob.get(done.rob_index)
                entry.done = True
                if op.opclass is OpClass.BRANCH:
                    self.fetch.branch_resolved(op.seq, now)
                tag = entry.dst_tag
                if tag is not None:
                    self.rename.mark_ready(tag)
                    self.int_iq.wakeup(tag)
                    self.fp_iq.wakeup(tag)
                    if op.opclass in FP_OPCLASSES:
                        self.fp_reg_accesses += 1
                    else:
                        self.regfile.write()

    def _issue(self) -> None:
        budget = self.config.issue_width
        if len(self.int_iq):
            budget -= self._issue_int(budget)
        if budget > 0 and len(self.fp_iq):
            self._issue_fp(budget)

    def _issue_int(self, budget: int) -> int:
        busy = []
        now = self.now
        blocked = self.regfile.blocked_alus()
        if blocked:
            for i, alu in enumerate(self.int_alus):
                busy.append(alu.busy or i in blocked
                            or now < alu._blocked_until)
        else:
            for alu in self.int_alus:
                busy.append(alu.busy or now < alu._blocked_until)
        grants = self.int_select.arbitrate(
            self.int_iq, busy,
            eligible=self._int_slot_eligible, limit=budget)
        issued = 0
        for alu_index, phys in enumerate(grants):
            if phys is None:
                continue
            entry = self.int_iq.grant(phys)
            extra = 0
            op = entry.op
            if op.opclass is OpClass.LOAD and op.mem_addr is not None:
                extra = self.memory.load_latency(op.mem_addr)
            self.regfile.read_for_issue(alu_index, len(op.sources()))
            self.int_alus[alu_index].start(op, entry.rob_index, self.now,
                                           extra_latency=extra)
            self.rob.get(entry.rob_index).issued = True
            self.stats.issued += 1
            issued += 1
        return issued

    def _int_slot_eligible(self, phys: int) -> bool:
        entry = self.int_iq.slots[phys]
        return entry is not None and entry.op.opclass in INT_OPCLASSES

    def _issue_fp(self, budget: int) -> int:
        issued = 0
        busy_add = [u.busy or not u.can_accept(self.now)
                    for u in self.fp_adders]
        grants = self.fp_add_select.arbitrate(
            self.fp_iq, busy_add,
            eligible=lambda p: self._fp_slot_eligible(p, FP_ADD_OPCLASSES),
            limit=budget)
        for unit_index, phys in enumerate(grants):
            if phys is None:
                continue
            entry = self.fp_iq.grant(phys)
            self.fp_reg_accesses += len(entry.op.sources())
            self.fp_adders[unit_index].start(entry.op, entry.rob_index,
                                             self.now)
            self.rob.get(entry.rob_index).issued = True
            self.stats.issued += 1
            issued += 1
        if issued < budget:
            busy_mul = [self.fp_mul.busy
                        or not self.fp_mul.can_accept(self.now)]
            grants = self.fp_mul_select.arbitrate(
                self.fp_iq, busy_mul,
                eligible=lambda p: self._fp_slot_eligible(
                    p, FP_MUL_OPCLASSES))
            if grants[0] is not None:
                entry = self.fp_iq.grant(grants[0])
                self.fp_reg_accesses += len(entry.op.sources())
                self.fp_mul.start(entry.op, entry.rob_index, self.now)
                self.rob.get(entry.rob_index).issued = True
                self.stats.issued += 1
                issued += 1
        return issued

    def _fp_slot_eligible(self, phys: int, opclasses) -> bool:
        entry = self.fp_iq.slots[phys]
        return entry is not None and entry.op.opclass in opclasses

    def _dispatch(self) -> None:
        width = self.config.issue_width
        ops = self.fetch.pop_ready(width)
        not_placed: List[MicroOp] = []
        for i, op in enumerate(ops):
            if not self._try_dispatch(op):
                not_placed = ops[i:]
                break
        if not_placed:
            self.fetch.unpop(not_placed)

    def _try_dispatch(self, op: MicroOp) -> bool:
        queue = self.fp_iq if op.opclass in FP_OPCLASSES else self.int_iq
        if self.rob.full or not queue.can_insert():
            return False
        needs_lsq = LoadStoreQueue.needs_entry(op)
        if needs_lsq and self.lsq.full:
            return False
        if op.dst is not None and self.rename.free_count() == 0:
            return False
        renamed = self.rename.rename(op, fp_offset=FP_RENAME_OFFSET)
        rob_index = self.rob.allocate(ROBEntry(
            op=op, dst_tag=renamed.dst_tag, freed_tag=renamed.freed_tag))
        if needs_lsq:
            self.lsq.allocate()
        waiting = {t for t in renamed.src_tags
                   if not self.rename.is_ready(t)}
        queue.insert(op, rob_index, waiting)
        return True

    # ------------------------------------------------------------------
    # power-model interface
    # ------------------------------------------------------------------
    def activity_snapshot(self) -> ActivitySnapshot:
        """Cumulative activity counters for the power accountant."""
        return ActivitySnapshot(
            cycles=self.stats.cycles,
            committed=self.stats.committed,
            int_iq=self.int_iq.counters.snapshot(),
            fp_iq=self.fp_iq.counters.snapshot(),
            alu_ops=[u.counters.ops for u in self.int_alus],
            fp_add_ops=[u.counters.ops for u in self.fp_adders],
            fp_mul_ops=self.fp_mul.counters.ops,
            rf_reads=list(self.regfile.counters.reads),
            rf_writes=list(self.regfile.counters.writes),
            fp_reg_accesses=self.fp_reg_accesses,
            l1d_accesses=self.memory.l1d.stats.accesses,
            l2_accesses=self.memory.l2.stats.accesses,
            fetched=self.fetch.fetched,
        )
