"""The out-of-order processor: ties every substrate into a cycle loop.

Stage order within :meth:`Processor.step` (one call = one cycle):

1. commit       — retire completed active-list head entries
2. writeback    — drain functional units, wake dependants, resolve branches
3. issue        — select-network arbitration, register reads, unit start
4. queue tick   — issue-queue compaction (the activity the paper studies)
5. dispatch     — rename and insert fetched ops into queues / ROB / LSQ
6. fetch        — pull from the trace

Dynamic thermal management never lives here: the processor only exposes
the mechanisms (global stall, per-unit busy flags, queue toggle,
register-file copy turnoff) that :mod:`repro.core.dtm` drives from
temperature sensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from ..core.mapping import PortMapping, priority_mapping
from ..obs.events import CoreStall
from .alu import (FP_ADD_OPCLASSES, FP_MUL_OPCLASSES,
                  FunctionalUnit, make_fp_adders, make_fp_multiplier,
                  make_int_alus)
from .branch import BranchPredictor, TracePredictor
from .caches import MemoryHierarchy
from .config import ProcessorConfig
from .frontend import FetchUnit
from .isa import FP_OPCLASSES, NUM_INT_ARCH_REGS, MicroOp, OpClass
from .issue_queue import CompactingIssueQueue, IQEntry
from .kernel import kernel_enabled, run_kernel
from .regfile import RegisterFileBank, RenameTable
from .rob import ActiveList, LoadStoreQueue, ROBEntry
from .select import SelectNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.collector import TraceCollector
    from .soa import RunAxisStore

#: Rename-table row offset for FP architectural registers.
FP_RENAME_OFFSET = NUM_INT_ARCH_REGS


@dataclass
class ProcessorStats:
    """Aggregate run statistics."""

    cycles: int = 0
    committed: int = 0
    stall_cycles: int = 0
    throttled_cycles: int = 0
    issued: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class ActivitySnapshot:
    """Cumulative activity counts for the power model (one point in
    time; the accountant diffs consecutive snapshots)."""

    cycles: int
    committed: int
    int_iq: "object"
    fp_iq: "object"
    alu_ops: List[int]
    fp_add_ops: List[int]
    fp_mul_ops: int
    rf_reads: List[int]
    rf_writes: List[int]
    fp_reg_accesses: int
    l1d_accesses: int
    l2_accesses: int
    fetched: int


class Processor:
    """A 6-wide out-of-order core running a micro-op trace."""

    def __init__(self, trace: Iterator[MicroOp],
                 config: Optional[ProcessorConfig] = None,
                 mapping: Optional[PortMapping] = None,
                 predictor: Optional[BranchPredictor] = None,
                 round_robin_alus: bool = False) -> None:
        self.config = config or ProcessorConfig()
        cfg = self.config
        self.mapping = mapping or priority_mapping(
            cfg.num_int_alus, cfg.num_regfile_copies)
        if self.mapping.n_alus != cfg.num_int_alus:
            raise ValueError("mapping ALU count disagrees with config")

        self.now = 0
        self.stats = ProcessorStats()
        self.stalled_until = 0
        self.throttled_until = 0
        #: Optional :class:`~repro.obs.collector.TraceCollector`; set by
        #: the simulator when tracing is on.  ``None`` keeps the stall
        #: hooks free of tracing work.
        self.collector: Optional["TraceCollector"] = None

        self.fetch = FetchUnit(trace, cfg.fetch_width,
                               predictor or TracePredictor(),
                               cfg.branch_mispredict_penalty)
        self.rename = RenameTable(2 * NUM_INT_ARCH_REGS,
                                  cfg.num_physical_regs)
        self.rob = ActiveList(cfg.active_list_entries)
        self.lsq = LoadStoreQueue(cfg.lsq_entries)
        self.memory = MemoryHierarchy(cfg)

        self.int_iq = CompactingIssueQueue(cfg.int_queue_entries,
                                           cfg.issue_width,
                                           replay_window=cfg.replay_window)
        self.fp_iq = CompactingIssueQueue(cfg.fp_queue_entries,
                                          cfg.issue_width,
                                          replay_window=cfg.replay_window)
        self.int_alus = make_int_alus(cfg.num_int_alus)
        self.fp_adders = make_fp_adders(cfg.num_fp_adders)
        self.fp_mul = make_fp_multiplier()
        self.int_select = SelectNetwork(cfg.int_queue_entries,
                                        cfg.num_int_alus,
                                        round_robin=round_robin_alus)
        self.fp_add_select = SelectNetwork(cfg.fp_queue_entries,
                                           cfg.num_fp_adders,
                                           round_robin=round_robin_alus)
        self.fp_mul_select = SelectNetwork(cfg.fp_queue_entries, 1)
        self.regfile = RegisterFileBank(self.mapping)
        self._all_units = [*self.int_alus, *self.fp_adders, self.fp_mul]
        # Shared SoA counter banks (repro.pipeline.soa.UnitBank): one
        # per functional-unit class, built by the alu.py factories.
        self._int_bank = self.int_alus[0]._bank
        self._fp_add_bank = self.fp_adders[0]._bank
        self._fp_mul_bank = self.fp_mul._bank
        #: Count of currently turned-off units, maintained by
        #: ``FunctionalUnit.set_busy`` — when zero (the common case),
        #: the per-cycle busy accounting skips the unit scan.
        self._busy_count = [0]
        for unit in self._all_units:
            unit._bank_busy = self._busy_count
        self.fp_reg_accesses = 0
        # Per-cycle hot-path copies of immutable config fields.
        self._issue_width = cfg.issue_width
        self._commit_width = cfg.commit_width

    # ------------------------------------------------------------------
    # DTM mechanism hooks
    # ------------------------------------------------------------------
    def global_stall(self, cycles: int, reason: str = "") -> None:
        """Halt the whole core (temporal technique: cool-down stall)."""
        if cycles < 0:
            raise ValueError("stall length must be non-negative")
        self.stalled_until = max(self.stalled_until, self.now + cycles)
        if self.collector is not None:
            self.collector.emit(CoreStall(
                cycle=self.now, reason=reason,
                until_cycle=self.stalled_until, temporal="stall"))

    @property
    def is_stalled(self) -> bool:
        return self.now < self.stalled_until

    def throttle(self, cycles: int, reason: str = "") -> None:
        """Duty-cycle throttling: gate fetch/dispatch/issue on alternate
        cycles for ``cycles`` cycles (a gentler temporal technique than
        the full stall — the core keeps half its throughput)."""
        if cycles < 0:
            raise ValueError("throttle length must be non-negative")
        self.throttled_until = max(self.throttled_until,
                                   self.now + cycles)
        if self.collector is not None:
            self.collector.emit(CoreStall(
                cycle=self.now, reason=reason,
                until_cycle=self.throttled_until, temporal="throttle"))

    @property
    def is_throttled(self) -> bool:
        return self.now < self.throttled_until

    def set_alu_busy(self, index: int, value: bool) -> None:
        """Fine-grain turnoff flag for integer ALU ``index``."""
        self.int_alus[index].set_busy(value)

    def set_fp_adder_busy(self, index: int, value: bool) -> None:
        self.fp_adders[index].set_busy(value)

    def toggle_issue_queues(self) -> None:
        """Activity toggling: flip head/tail mode of both queues."""
        self.int_iq.toggle()
        self.fp_iq.toggle()

    def turn_off_regfile_copy(self, copy: int) -> None:
        for alu in self.regfile.turn_off(copy):
            self.int_alus[alu].set_busy(True)

    def turn_on_regfile_copy(self, copy: int) -> None:
        self.regfile.turn_on(copy)
        blocked = self.regfile.blocked_alus()
        for alu in self.mapping.alus_on_copy(copy):
            if alu not in blocked:
                self.int_alus[alu].set_busy(False)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:  # repro: hot-loop
        """Advance one cycle."""
        now = self.now + 1
        self.now = now
        stats = self.stats
        stats.cycles += 1
        if now < self.stalled_until:
            stats.stall_cycles += 1
            return
        self._commit()
        self._writeback()
        if self._busy_count[0]:
            for unit in self._all_units:
                if unit.busy:
                    unit._bank.busy_cycles[unit._slot] += 1
        if now < self.throttled_until and now % 2:
            stats.throttled_cycles += 1
            return  # gated cycle: in-flight work drained, nothing new
        self._issue()
        self.int_iq.tick()
        self.fp_iq.tick()
        self._dispatch()
        fetch = self.fetch
        fetch.begin_cycle()
        fetch.fetch_cycle(now)

    def run(self, max_cycles: int,
            on_sample=None, sample_interval: int = 0) -> ProcessorStats:
        """Run for up to ``max_cycles`` or until the trace drains.

        ``on_sample(processor)`` fires every ``sample_interval`` cycles
        (the thermal sensing hook).  Executes through the macro-stepped
        kernel (:mod:`repro.pipeline.kernel`) unless ``REPRO_KERNEL=0``
        selects this reference loop; both produce bit-identical state.
        """
        if kernel_enabled():
            return run_kernel(self, max_cycles, on_sample,
                              sample_interval)
        fetch = self.fetch
        rob = self.rob
        sampling = bool(sample_interval) and on_sample is not None
        # Countdown to the next sample, recomputed from the absolute
        # cycle number at every entry: ``step`` advances ``now`` by
        # exactly one, so this fires on the same cycles as
        # ``now % sample_interval == 0`` without a modulo per cycle —
        # and stays aligned to absolute interval boundaries even when
        # the run starts mid-interval (e.g. after restoring a warm
        # checkpoint taken at a non-boundary cycle).
        countdown = (sample_interval - self.now % sample_interval
                     if sampling else 0)
        for _ in range(max_cycles):
            self.step()
            if sampling:
                countdown -= 1
                if not countdown:
                    on_sample(self)
                    countdown = sample_interval
            if fetch.drained and len(rob) == 0:
                break
        return self.stats

    @property
    def finished(self) -> bool:
        return (self.fetch.drained and len(self.rob) == 0)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _commit(self) -> None:  # repro: hot-loop
        n = self.rob.ready_count(self._commit_width)
        if not n:
            return
        rename = self.rename
        lsq = self.lsq
        for entry in self.rob.retire(n):
            op = entry.op
            opclass = op.opclass
            if opclass is OpClass.STORE:
                if op.mem_addr is not None:
                    self.memory.store(op.mem_addr)
                lsq.release()
            elif opclass is OpClass.LOAD:
                lsq.release()
            rename.release(entry.freed_tag)
        self.stats.committed += n

    def _writeback(self) -> None:  # repro: hot-loop
        now = self.now
        rob = self.rob
        for unit in self._all_units:
            if now < unit._next_finish:
                continue
            for done in unit.drain(now):
                op = done.op
                entry = rob.get(done.rob_index)
                entry.done = True
                if op.opclass is OpClass.BRANCH:
                    self.fetch.branch_resolved(op.seq, now)
                tag = entry.dst_tag
                if tag is not None:
                    self.rename.mark_ready(tag)
                    self.int_iq.wakeup(tag)
                    self.fp_iq.wakeup(tag)
                    if op.opclass in FP_OPCLASSES:
                        self.fp_reg_accesses += 1
                    else:
                        self.regfile.write()

    def _issue(self) -> None:
        budget = self._issue_width
        int_iq, fp_iq = self.int_iq, self.fp_iq
        # Occupancy checks on the queues' own fields (== len(q) != 0)
        # keep two dunder calls off the per-cycle path.
        if int_iq._top != int_iq._holes:
            budget -= self._issue_int(budget)
        if budget > 0 and fp_iq._top != fp_iq._holes:
            self._issue_fp(budget)

    def _issue_int(self, budget: int) -> int:  # repro: hot-loop
        now = self.now
        blocked = self.regfile.blocked_alus()
        # The reference loop keeps the readable per-cycle form; the
        # macro-step kernel hoists this state (repro.pipeline.kernel).
        if blocked:
            busy = [alu.busy or i in blocked or now < alu._blocked_until  # repro: noqa[REP007]
                    for i, alu in enumerate(self.int_alus)]
        else:
            busy = [alu.busy or now < alu._blocked_until  # repro: noqa[REP007]
                    for alu in self.int_alus]
        # No ``eligible`` filter: dispatch routes every FP op to the FP
        # queue, so each int-queue entry is INT_OPCLASSES by
        # construction and the per-slot predicate would always pass.
        grants = self.int_select.arbitrate(
            self.int_iq, busy, limit=budget)
        issued = 0
        for alu_index, phys in enumerate(grants):
            if phys is None:
                continue
            entry = self.int_iq.grant(phys)
            extra = 0
            op = entry.op
            if op.opclass is OpClass.LOAD and op.mem_addr is not None:
                extra = self.memory.load_latency(op.mem_addr)
            n_operands = ((op.src1 is not None) + (op.src2 is not None))
            self.regfile.read_for_issue(alu_index, n_operands)
            self.int_alus[alu_index].start(op, entry.rob_index, self.now,
                                           extra_latency=extra)
            self.rob.get(entry.rob_index).issued = True
            self.stats.issued += 1
            issued += 1
        return issued

    def _issue_fp(self, budget: int) -> int:
        issued = 0
        busy_add = [u.busy or not u.can_accept(self.now)
                    for u in self.fp_adders]
        grants = self.fp_add_select.arbitrate(
            self.fp_iq, busy_add,
            eligible=lambda p: self._fp_slot_eligible(p, FP_ADD_OPCLASSES),
            limit=budget)
        for unit_index, phys in enumerate(grants):
            if phys is None:
                continue
            entry = self.fp_iq.grant(phys)
            op = entry.op
            self.fp_reg_accesses += ((op.src1 is not None)
                                     + (op.src2 is not None))
            self.fp_adders[unit_index].start(op, entry.rob_index,
                                             self.now)
            self.rob.get(entry.rob_index).issued = True
            self.stats.issued += 1
            issued += 1
        if issued < budget:
            busy_mul = [self.fp_mul.busy
                        or not self.fp_mul.can_accept(self.now)]
            grants = self.fp_mul_select.arbitrate(
                self.fp_iq, busy_mul,
                eligible=lambda p: self._fp_slot_eligible(
                    p, FP_MUL_OPCLASSES))
            if grants[0] is not None:
                entry = self.fp_iq.grant(grants[0])
                op = entry.op
                self.fp_reg_accesses += ((op.src1 is not None)
                                         + (op.src2 is not None))
                self.fp_mul.start(op, entry.rob_index, self.now)
                self.rob.get(entry.rob_index).issued = True
                self.stats.issued += 1
                issued += 1
        return issued

    def _fp_slot_eligible(self, phys: int, opclasses) -> bool:
        entry = self.fp_iq.slots[phys]
        return entry is not None and entry.op.opclass in opclasses

    def _dispatch(self) -> None:  # repro: hot-loop
        ops = self.fetch.pop_ready(self._issue_width)
        if not ops:
            return
        rob = self.rob
        rename = self.rename
        lsq = self.lsq
        int_iq, fp_iq = self.int_iq, self.fp_iq
        for i, op in enumerate(ops):
            opclass = op.opclass
            queue = fp_iq if opclass in FP_OPCLASSES else int_iq
            needs_lsq = (opclass is OpClass.LOAD
                         or opclass is OpClass.STORE)
            if (rob.full or not queue.can_insert()
                    or (needs_lsq and lsq.full)
                    or (op.dst is not None
                        and rename.free_count() == 0)):
                self.fetch.unpop(ops[i:])  # structural stall
                return
            renamed = rename.rename(op, fp_offset=FP_RENAME_OFFSET)
            rob_index = rob.allocate(ROBEntry(
                op=op, dst_tag=renamed.dst_tag,
                freed_tag=renamed.freed_tag))
            if needs_lsq:
                lsq.allocate()
            queue.insert(op, rob_index,
                         rename.waiting_tags(renamed.src_tags))

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Live references to every component's mutable state.

        The caller must serialize the whole dict in **one** pass (one
        ``pickle.dumps``) before the pipeline advances another cycle:
        micro-ops are shared between the fetch buffer, issue queues,
        active list and functional-unit pipelines, and a single pass is
        what preserves that identity through a round trip.
        """
        return {
            "now": self.now,
            "stats": self.stats,
            "stalled_until": self.stalled_until,
            "throttled_until": self.throttled_until,
            "fp_reg_accesses": self.fp_reg_accesses,
            "fetch": self.fetch.snapshot_state(),
            "rename": self.rename.snapshot_state(),
            "rob": self.rob.snapshot_state(),
            "lsq": self.lsq.snapshot_state(),
            "memory": self.memory.snapshot_state(),
            "int_iq": self.int_iq.snapshot_state(),
            "fp_iq": self.fp_iq.snapshot_state(),
            "int_alus": [u.snapshot_state() for u in self.int_alus],
            "fp_adders": [u.snapshot_state() for u in self.fp_adders],
            "fp_mul": self.fp_mul.snapshot_state(),
            "int_select": self.int_select.snapshot_state(),
            "fp_add_select": self.fp_add_select.snapshot_state(),
            "fp_mul_select": self.fp_mul_select.snapshot_state(),
            "regfile": self.regfile.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a deserialized :meth:`snapshot_state` payload.

        Components are mutated **in place** — the DTM controller and
        the sanitizer hold references to these objects, so replacing
        them would silently detach the control loop.
        """
        self.now = state["now"]
        self.stats = state["stats"]
        self.stalled_until = state["stalled_until"]
        self.throttled_until = state["throttled_until"]
        self.fp_reg_accesses = state["fp_reg_accesses"]
        self.fetch.restore_state(state["fetch"])
        self.rename.restore_state(state["rename"])
        self.rob.restore_state(state["rob"])
        self.lsq.restore_state(state["lsq"])
        self.memory.restore_state(state["memory"])
        self.int_iq.restore_state(state["int_iq"])
        self.fp_iq.restore_state(state["fp_iq"])
        for unit, unit_state in zip(self.int_alus, state["int_alus"]):
            unit.restore_state(unit_state)
        for unit, unit_state in zip(self.fp_adders, state["fp_adders"]):
            unit.restore_state(unit_state)
        self.fp_mul.restore_state(state["fp_mul"])
        self.int_select.restore_state(state["int_select"])
        self.fp_add_select.restore_state(state["fp_add_select"])
        self.fp_mul_select.restore_state(state["fp_mul_select"])
        self.regfile.restore_state(state["regfile"])
        # Units restore their busy flags directly (bypassing
        # ``set_busy``), so the shared tally is recomputed here.
        self._busy_count[0] = sum(
            1 for unit in self._all_units if unit.busy)

    # ------------------------------------------------------------------
    # batched-grid interface (repro.pipeline.kernel.run_batch)
    # ------------------------------------------------------------------
    def adopt_run_axis(self, store: "RunAxisStore", run: int) -> None:
        """Rebind every SoA counter of this processor to row ``run``
        of a shared :class:`~repro.pipeline.soa.RunAxisStore`.

        Current counter values are carried into the store, and the
        hot-path aliases (``FunctionalUnit._ops_arr``) are re-pointed,
        so both the reference loop and the macro-step kernel keep
        working unchanged — they just write through row views now.
        """
        self._int_bank.adopt_storage(
            store.view(run, "int_ops"),
            store.view(run, "int_busy_cycles"),
            store.view(run, "int_turnoff_events"))
        self._fp_add_bank.adopt_storage(
            store.view(run, "fp_add_ops"),
            store.view(run, "fp_add_busy_cycles"),
            store.view(run, "fp_add_turnoff_events"))
        self._fp_mul_bank.adopt_storage(
            store.view(run, "fp_mul_ops"),
            store.view(run, "fp_mul_busy_cycles"),
            store.view(run, "fp_mul_turnoff_events"))
        for unit in self._all_units:
            unit._ops_arr = unit._bank.ops
        self.int_iq.adopt_counter_storage(store.view(run, "int_iq"))
        self.fp_iq.adopt_counter_storage(store.view(run, "fp_iq"))
        self.regfile.adopt_counter_storage(
            store.view(run, "rf_reads"), store.view(run, "rf_writes"))

    def capture_gating(self) -> Tuple[Any, ...]:
        """The DTM-controlled gating state, as a comparable tuple.

        Two runs of one batch class whose gating tuples match after an
        ``on_sample`` boundary keep executing identically (the
        macro-step contract: DTM mutates only this state, and only at
        boundaries); a mismatch is the moment of divergence.
        """
        return (self.stalled_until, self.throttled_until,
                self.int_iq.mode, self.fp_iq.mode,
                tuple(unit.busy for unit in self._all_units),
                frozenset(self.regfile._off))

    def apply_gating(self, gating: Tuple[Any, ...]) -> None:
        """Overlay a :meth:`capture_gating` tuple onto this processor.

        Used when a batched run forks off its class: the leader's
        pipeline state is restored wholesale, then the run's own DTM
        decisions — which are exactly the gating tuple — are re-applied
        on top.  Busy flags are set directly (their ``turnoff_events``
        bumps already happened on this run's own counter row), and the
        shared busy tally and register-file block set are recomputed.
        """
        (self.stalled_until, self.throttled_until,
         int_mode, fp_mode, busy_flags, off_copies) = gating
        for queue, mode in ((self.int_iq, int_mode), (self.fp_iq, fp_mode)):
            if queue.mode is not mode:
                queue.mode = mode
                queue._rebuild_order()
        for unit, flag in zip(self._all_units, busy_flags):
            unit.busy = flag
        self._busy_count[0] = sum(
            1 for unit in self._all_units if unit.busy)
        regfile = self.regfile
        regfile._off = set(off_copies)
        regfile._recompute_blocked()

    # ------------------------------------------------------------------
    # power-model interface
    # ------------------------------------------------------------------
    def activity_snapshot(self) -> ActivitySnapshot:
        """Cumulative activity counters for the power accountant."""
        return ActivitySnapshot(
            cycles=self.stats.cycles,
            committed=self.stats.committed,
            int_iq=self.int_iq.counters.snapshot(),
            fp_iq=self.fp_iq.counters.snapshot(),
            alu_ops=self._int_bank.ops.tolist(),
            fp_add_ops=self._fp_add_bank.ops.tolist(),
            fp_mul_ops=int(self._fp_mul_bank.ops[0]),
            rf_reads=self.regfile.counters.reads,
            rf_writes=self.regfile.counters.writes,
            fp_reg_accesses=self.fp_reg_accesses,
            l1d_accesses=self.memory.l1d.stats.accesses,
            l2_accesses=self.memory.l2.stats.accesses,
            fetched=self.fetch.fetched,
        )
