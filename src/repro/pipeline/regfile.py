"""Register-file copies, rename, and the physical register file.

Two structures live here:

* :class:`RenameTable` — architectural-to-physical register rename with
  a free list, providing the wakeup tags the issue queue waits on.
* :class:`RegisterFileBank` — the replicated integer register file the
  paper studies.  Each copy is its own thermal block; reads route
  through the hard-wired :class:`~repro.core.mapping.PortMapping`
  while writes go to **all** copies (values must be coherent across
  copies, paper §2.3).  Fine-grain turnoff disables reads from a hot
  copy by marking its mapped ALUs busy; writes continue during cooling
  (the paper's first stale-copy solution: the turnoff threshold sits
  slightly below the critical threshold, and a cooling copy seeing only
  writes receives about a third of its normal accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.mapping import PortMapping
from .isa import FP_OPCLASSES, MicroOp


class RenameError(RuntimeError):
    """Raised when rename runs out of physical registers."""


@dataclass(slots=True)
class RenamedOp:
    """Operand tags produced by rename for one micro-op."""

    dst_tag: Optional[int]
    src_tags: Tuple[int, ...]
    freed_tag: Optional[int]


class RenameTable:
    """Map table + free list over a unified physical register file.

    Integer and FP architectural registers occupy disjoint rows of the
    map table (FP rows are offset), sharing one physical register pool
    for simplicity.
    """

    def __init__(self, n_arch_regs: int, n_physical: int) -> None:
        if n_physical < 2 * n_arch_regs:
            raise ValueError("physical register file too small")
        self.n_arch = n_arch_regs
        self._map: List[int] = list(range(n_arch_regs))
        self._free: List[int] = list(range(n_arch_regs, n_physical))
        # Mirror of ``_free`` for the O(1) double-release guard; the
        # list stays authoritative (pop order is the allocation order).
        self._free_set: Set[int] = set(self._free)
        self._ready: Set[int] = set(range(n_arch_regs))

    def free_count(self) -> int:
        return len(self._free)

    def lookup(self, arch: int) -> int:
        return self._map[arch]

    def is_ready(self, tag: int) -> bool:
        return tag in self._ready

    def rename(self, op: MicroOp, fp_offset: int = 0) -> RenamedOp:
        """Rename one op; returns its tags.

        The previous mapping of the destination becomes ``freed_tag``
        and is released when the op commits.  Raises
        :class:`RenameError` when the free list is empty.
        """
        offset = fp_offset if op.opclass in FP_OPCLASSES else 0
        amap = self._map
        s1, s2 = op.src1, op.src2
        if s1 is None:
            src_tags: Tuple[int, ...] = (
                () if s2 is None else (amap[offset + s2],))
        elif s2 is None:
            src_tags = (amap[offset + s1],)
        else:
            src_tags = (amap[offset + s1], amap[offset + s2])
        dst_tag = None
        freed = None
        if op.dst is not None:
            if not self._free:
                raise RenameError("out of physical registers")
            dst_tag = self._free.pop()
            self._free_set.remove(dst_tag)
            freed = amap[offset + op.dst]
            amap[offset + op.dst] = dst_tag
            self._ready.discard(dst_tag)
        return RenamedOp(dst_tag=dst_tag, src_tags=src_tags, freed_tag=freed)

    def mark_ready(self, tag: int) -> None:
        self._ready.add(tag)

    def waiting_tags(self, tags: Tuple[int, ...]) -> Set[int]:
        """Subset of ``tags`` whose producers have not broadcast yet."""
        ready = self._ready
        return {t for t in tags if t not in ready}

    def release(self, tag: Optional[int]) -> None:
        """Return a physical register to the free list (at commit)."""
        if tag is None:
            return
        if tag in self._free_set:
            raise ValueError(f"double release of physical register {tag}")
        self._free.append(tag)
        self._free_set.add(tag)
        self._ready.discard(tag)

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"map": self._map, "free": self._free,
                "ready": self._ready}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._map = list(state["map"])
        self._free = list(state["free"])
        self._free_set = set(self._free)
        self._ready = set(state["ready"])


class RegFileCounters:
    """Cumulative accesses per register-file copy: a read view over the
    bank's SoA arrays (``reads``/``writes`` come back as plain lists,
    so existing ``counters.reads == [2, 2]`` comparisons still hold)."""

    __slots__ = ("_reads", "_writes")

    def __init__(self, reads: Any, writes: Any) -> None:
        self._reads = reads
        self._writes = writes

    @property
    def reads(self) -> List[int]:
        return self._reads.tolist()

    @property
    def writes(self) -> List[int]:
        return self._writes.tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegFileCounters(reads={self.reads}, writes={self.writes})"


class RegisterFileBank:
    """Replicated integer register file with hard-wired read ports."""

    def __init__(self, mapping: PortMapping) -> None:
        self.mapping = mapping
        self.n_copies = mapping.n_copies
        #: SoA access counters, indexed by copy.
        self._reads = np.zeros(self.n_copies, dtype=np.int64)
        self._writes = np.zeros(self.n_copies, dtype=np.int64)
        self.counters = RegFileCounters(self._reads, self._writes)
        self._off: Set[int] = set()
        #: Cached union of the mapped ALUs of every turned-off copy,
        #: maintained by turn_off/turn_on — issue reads it every cycle.
        self._blocked: Set[int] = set()

    def adopt_counter_storage(self, reads: Any, writes: Any) -> None:
        """Rebind the access counters to externally-owned per-copy
        arrays (:class:`~repro.pipeline.soa.RunAxisStore` segments),
        carrying the current values over."""
        for new, old in ((reads, self._reads), (writes, self._writes)):
            if new.shape != old.shape or new.dtype != old.dtype:
                raise ValueError("counter storage shape/dtype mismatch")
        reads[:] = self._reads
        writes[:] = self._writes
        self._reads = reads
        self._writes = writes
        self.counters = RegFileCounters(reads, writes)

    # ------------------------------------------------------------------
    # access accounting
    # ------------------------------------------------------------------
    def read_for_issue(self, alu: int, n_operands: int) -> None:
        """Charge the read-port accesses for issuing to ALU ``alu``.

        Each operand uses one of the ALU's two hard-wired ports; with
        one operand only the first port fires.
        """
        if not 0 <= n_operands <= 2:
            raise ValueError("ops read zero, one, or two registers")
        ports = self.mapping.copies_for(alu)
        for port in range(n_operands):
            copy = ports[port]
            if copy in self._off:
                raise RuntimeError(
                    f"read from turned-off register-file copy {copy}; "
                    f"ALU {alu} should have been marked busy")
            self._reads[copy] += 1

    def write(self) -> None:
        """Charge one register write to every copy (values are
        replicated; a cooling copy still accepts writes)."""
        self._writes += 1

    # ------------------------------------------------------------------
    # fine-grain turnoff
    # ------------------------------------------------------------------
    def turn_off(self, copy: int) -> List[int]:
        """Disable reads from ``copy``; returns the ALUs to mark busy."""
        if not 0 <= copy < self.n_copies:
            raise IndexError(copy)
        self._off.add(copy)
        self._recompute_blocked()
        return self.mapping.alus_on_copy(copy)

    def turn_on(self, copy: int) -> List[int]:
        """Re-enable ``copy``; returns the ALUs that may unblock
        (callers must check their other port's copy too)."""
        self._off.discard(copy)
        self._recompute_blocked()
        return self.mapping.alus_on_copy(copy)

    def is_off(self, copy: int) -> bool:
        return copy in self._off

    def all_off(self) -> bool:
        return len(self._off) == self.n_copies

    def blocked_alus(self) -> Set[int]:
        """ALUs unusable because one of their port copies is off.

        Returns the maintained set (treat as read-only); it changes
        only on turn_off/turn_on, not per cycle.
        """
        return self._blocked

    def _recompute_blocked(self) -> None:
        blocked: Set[int] = set()
        for copy in sorted(self._off):
            blocked.update(self.mapping.alus_on_copy(copy))
        self._blocked = blocked

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {"counters": {"reads": self.counters.reads,
                             "writes": self.counters.writes},
                "off": self._off, "blocked": self._blocked}

    def restore_state(self, state: Dict[str, Any]) -> None:
        values = state["counters"]
        self._reads[:] = values["reads"]
        self._writes[:] = values["writes"]
        self._off = set(state["off"])
        self._blocked = set(state["blocked"])
