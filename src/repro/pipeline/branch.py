"""Branch prediction substrate.

Two predictors are provided:

* :class:`GSharePredictor` — a classic gshare (global history XOR PC
  indexing a table of 2-bit saturating counters) used when the pipeline
  runs real :class:`~repro.pipeline.isa.Program` traces.
* :class:`TracePredictor` — a pass-through used for synthetic SPEC2000
  workloads, where the workload model already stamped each branch with
  its mispredict outcome (the synthetic generator owns the mispredict
  *rate*; this object just reports it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from .isa import MicroOp, OpClass


class BranchPredictor:
    """Interface: decide whether a dynamic branch is mispredicted."""

    def mispredicted(self, op: MicroOp, taken: bool) -> bool:
        raise NotImplementedError

    @property
    def stats(self) -> "PredictorStats":
        raise NotImplementedError

    def snapshot_state(self) -> Dict[str, Any]:
        """Mutable predictor state for warm-state checkpointing."""
        raise NotImplementedError

    def restore_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


@dataclass
class PredictorStats:
    branches: int = 0
    mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class GSharePredictor(BranchPredictor):
    """Gshare: global history XORed with the PC indexes 2-bit counters."""

    def __init__(self, history_bits: int = 12) -> None:
        if not 1 <= history_bits <= 24:
            raise ValueError("history_bits must be in [1, 24]")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        # 2-bit saturating counters, initialised weakly taken.
        self._table = [2] * (1 << history_bits)
        self._stats = PredictorStats()

    def mispredicted(self, op: MicroOp, taken: bool) -> bool:
        index = (op.pc ^ self._history) & self._mask
        counter = self._table[index]
        predicted_taken = counter >= 2
        wrong = predicted_taken != taken
        # Update counter and history with the actual outcome.
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._mask
        self._stats.branches += 1
        self._stats.mispredicts += int(wrong)
        return wrong

    @property
    def stats(self) -> PredictorStats:
        return self._stats

    def snapshot_state(self) -> Dict[str, Any]:
        return {"history": self._history, "table": self._table,
                "stats": self._stats}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._history = state["history"]
        self._table = list(state["table"])
        self._stats = state["stats"]


class TracePredictor(BranchPredictor):
    """Report the mispredict outcome already stamped on the micro-op."""

    def __init__(self) -> None:
        self._stats = PredictorStats()

    def mispredicted(self, op: MicroOp, taken: bool) -> bool:
        if op.opclass is not OpClass.BRANCH:
            raise ValueError("mispredicted() called on a non-branch op")
        self._stats.branches += 1
        self._stats.mispredicts += int(op.mispredicted)
        return op.mispredicted

    @property
    def stats(self) -> PredictorStats:
        return self._stats

    def snapshot_state(self) -> Dict[str, Any]:
        return {"stats": self._stats}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._stats = state["stats"]
