"""Front end: fetch from the trace, with branch-mispredict bubbles.

The pipeline is trace driven, so the front end pulls micro-ops from an
iterator into a fetch buffer at ``fetch_width`` per cycle.  Wrong-path
instructions are not injected; instead, when a mispredicted branch is
fetched, fetch blocks until the branch resolves in the backend plus the
redirect penalty — the standard trace-driven treatment, which preserves
the IPC effect of mispredicts while keeping squash logic out of the
backend (documented deviation in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from .branch import BranchPredictor
from .isa import MicroOp, OpClass


class FetchUnit:
    """Pulls micro-ops from a trace into a small fetch buffer."""

    def __init__(self, trace: Iterator[MicroOp], fetch_width: int,
                 predictor: BranchPredictor,
                 mispredict_penalty: int,
                 buffer_capacity: Optional[int] = None) -> None:
        if fetch_width < 1:
            raise ValueError("fetch_width must be positive")
        self.trace = iter(trace)
        self.fetch_width = fetch_width
        self.predictor = predictor
        self.mispredict_penalty = mispredict_penalty
        self.buffer: Deque[MicroOp] = deque()
        self.buffer_capacity = buffer_capacity or 2 * fetch_width
        self.fetched = 0
        self.exhausted = False
        #: Sequence number of the unresolved mispredicted branch fetch
        #: is blocked behind, or None.
        self._blocking_branch: Optional[int] = None
        #: Cycle at which fetch may resume after redirect, or None.
        self._resume_at: Optional[int] = None
        self._count_this_cycle = 0

    @property
    def blocked(self) -> bool:
        return self._blocking_branch is not None or self._resume_at is not None

    def fetch_cycle(self, now: int) -> None:
        """Fetch up to ``fetch_width`` ops into the buffer."""
        if self._resume_at is not None:
            if now < self._resume_at:
                return
            self._resume_at = None
        if self._blocking_branch is not None:
            return
        buffer = self.buffer
        capacity = self.buffer_capacity
        width = self.fetch_width
        trace = self.trace
        branch = OpClass.BRANCH
        while (len(buffer) < capacity
               and self._count_this_cycle < width):
            try:
                op = next(trace)
            except StopIteration:
                self.exhausted = True
                return
            buffer.append(op)
            self.fetched += 1
            self._count_this_cycle += 1
            if op.opclass is branch:
                if self.predictor.mispredicted(op, taken=op.taken):
                    op.mispredicted = True
                    self._blocking_branch = op.seq
                    return
                op.mispredicted = False

    def begin_cycle(self) -> None:
        self._count_this_cycle = 0

    def pop_ready(self, max_count: int) -> List[MicroOp]:
        """Hand up to ``max_count`` buffered ops to dispatch."""
        buffer = self.buffer
        count = len(buffer)
        if count > max_count:
            count = max_count
        popleft = buffer.popleft
        return [popleft() for _ in range(count)]

    def unpop(self, ops: List[MicroOp]) -> None:
        """Return ops dispatch could not place (structural stall)."""
        for op in reversed(ops):
            self.buffer.appendleft(op)

    def branch_resolved(self, seq: int, now: int) -> None:
        """Backend notification: branch ``seq`` executed at ``now``."""
        if self._blocking_branch == seq:
            self._blocking_branch = None
            self._resume_at = now + self.mispredict_penalty

    @property
    def drained(self) -> bool:
        """No more ops will ever come out of this front end."""
        return self.exhausted and not self.buffer

    # ------------------------------------------------------------------
    # warm-state checkpointing (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Live references to this unit's mutable state; the caller
        serializes them before the pipeline advances.  The trace
        iterator itself is not captured — the checkpoint records the
        stream position (``fetched``) and the restore path repositions
        a replayable trace there."""
        return {
            "buffer": list(self.buffer),
            "fetched": self.fetched,
            "exhausted": self.exhausted,
            "blocking_branch": self._blocking_branch,
            "resume_at": self._resume_at,
            "count_this_cycle": self._count_this_cycle,
            "predictor": self.predictor.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a deserialized :meth:`snapshot_state` payload in
        place (the trace iterator is left untouched)."""
        self.buffer = deque(state["buffer"])
        self.fetched = state["fetched"]
        self.exhausted = state["exhausted"]
        self._blocking_branch = state["blocking_branch"]
        self._resume_at = state["resume_at"]
        self._count_this_cycle = state["count_this_cycle"]
        self.predictor.restore_state(state["predictor"])
