"""Front end: fetch from the trace, with branch-mispredict bubbles.

The pipeline is trace driven, so the front end pulls micro-ops from an
iterator into a fetch buffer at ``fetch_width`` per cycle.  Wrong-path
instructions are not injected; instead, when a mispredicted branch is
fetched, fetch blocks until the branch resolves in the backend plus the
redirect penalty — the standard trace-driven treatment, which preserves
the IPC effect of mispredicts while keeping squash logic out of the
backend (documented deviation in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from .branch import BranchPredictor
from .isa import MicroOp, OpClass


class FetchUnit:
    """Pulls micro-ops from a trace into a small fetch buffer."""

    def __init__(self, trace: Iterator[MicroOp], fetch_width: int,
                 predictor: BranchPredictor,
                 mispredict_penalty: int,
                 buffer_capacity: Optional[int] = None) -> None:
        if fetch_width < 1:
            raise ValueError("fetch_width must be positive")
        self.trace = iter(trace)
        self.fetch_width = fetch_width
        self.predictor = predictor
        self.mispredict_penalty = mispredict_penalty
        self.buffer: Deque[MicroOp] = deque()
        self.buffer_capacity = buffer_capacity or 2 * fetch_width
        self.fetched = 0
        self.exhausted = False
        #: Sequence number of the unresolved mispredicted branch fetch
        #: is blocked behind, or None.
        self._blocking_branch: Optional[int] = None
        #: Cycle at which fetch may resume after redirect, or None.
        self._resume_at: Optional[int] = None
        self._count_this_cycle = 0

    @property
    def blocked(self) -> bool:
        return self._blocking_branch is not None or self._resume_at is not None

    def fetch_cycle(self, now: int) -> None:
        """Fetch up to ``fetch_width`` ops into the buffer."""
        if self._resume_at is not None:
            if now < self._resume_at:
                return
            self._resume_at = None
        if self._blocking_branch is not None:
            return
        while (len(self.buffer) < self.buffer_capacity
               and self._count_this_cycle < self.fetch_width):
            op = self._next_op()
            if op is None:
                return
            self.buffer.append(op)
            self.fetched += 1
            self._count_this_cycle += 1
            if op.opclass is OpClass.BRANCH:
                if self.predictor.mispredicted(op, taken=op.taken):
                    op.mispredicted = True
                    self._blocking_branch = op.seq
                    return
                op.mispredicted = False

    def begin_cycle(self) -> None:
        self._count_this_cycle = 0

    def _next_op(self) -> Optional[MicroOp]:
        try:
            return next(self.trace)
        except StopIteration:
            self.exhausted = True
            return None

    def pop_ready(self, max_count: int) -> List[MicroOp]:
        """Hand up to ``max_count`` buffered ops to dispatch."""
        out: List[MicroOp] = []
        while self.buffer and len(out) < max_count:
            out.append(self.buffer.popleft())
        return out

    def unpop(self, ops: List[MicroOp]) -> None:
        """Return ops dispatch could not place (structural stall)."""
        for op in reversed(ops):
            self.buffer.appendleft(op)

    def branch_resolved(self, seq: int, now: int) -> None:
        """Backend notification: branch ``seq`` executed at ``now``."""
        if self._blocking_branch == seq:
            self._blocking_branch = None
            self._resume_at = now + self.mispredict_penalty

    @property
    def drained(self) -> bool:
        """No more ops will ever come out of this front end."""
        return self.exhausted and not self.buffer
