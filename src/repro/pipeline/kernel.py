"""Macro-stepped execution kernel for the measurement hot path.

:meth:`Processor.step` is semantically one cycle, but executing it as
six method calls per cycle makes the Python interpreter — attribute
lookups, argument binding, list allocations — the dominant cost of a
run.  This module fuses the whole cycle into one loop body that runs a
**macro-step** (one thermal sensing interval, ``sensor_interval_cycles``
cycles) at a time:

* every attribute chain the cycle body touches is hoisted into a local
  exactly once per macro-step and flushed back when the step ends;
* scalar counters (stats, fetch bookkeeping, issue-queue/select/regfile
  activity) accumulate in plain locals and land in the SoA arrays
  (:mod:`repro.pipeline.soa`) as a handful of vectorized adds per
  macro-step instead of per-cycle attribute bumps;
* the stall/throttle gates and the sampling countdown live *outside*
  the per-cycle body: a fully stalled stretch is bulk-skipped in O(1),
  and sampling reduces to slicing the run into boundary-aligned chunks.

The fusion is legal because of the **macro-step contract**: everything
the hoisted state depends on (busy flags, regfile turnoffs, queue mode,
stall/throttle windows) is only mutated by the DTM controller, which
runs exclusively in the ``on_sample`` boundary hook — so it is constant
within a macro-step, and every local is re-hoisted after each boundary.
Within a cycle the kernel preserves the reference stage order and its
exact side-effect order (memory-hierarchy LRU touches, select-counter
updates, wakeup broadcasts…), which is what makes the result
bit-identical to the reference loop.

``REPRO_KERNEL=0`` disables the kernel and runs the original
per-cycle reference loop in :meth:`Processor.run`; the test suite
asserts bit-identical ``SimulationResult`` payloads between the two
across the full technique × floorplan matrix.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .accel import AccelSession, maybe_session
from .alu import _NEVER, _InFlight
from .isa import DEFAULT_LATENCY, NUM_INT_ARCH_REGS, OpClass
from .issue_queue import IQEntry
from .rob import ROBEntry
from .soa import (IQC_BROADCASTS, IQC_COMPACTION_MOVES_0,
                  IQC_COUNTER_EVALS_0, IQC_COUNTER_EVALS_1, IQC_CYCLES,
                  IQC_INSERTS, IQC_LONG_MOVES_0, IQC_MUX_SELECTS_0,
                  IQC_OCCUPANCY_SUM, IQC_PAYLOAD_OPS, IQC_SELECT_GRANTS)
from ..workloads.trace import ReplayTrace as _ReplayTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .processor import Processor, ProcessorStats
    from .soa import RunAxisStore

#: Rename-table row offset for FP architectural registers (mirrors
#: ``processor.FP_RENAME_OFFSET``; duplicated to avoid a module cycle).
_FP_OFFSET = NUM_INT_ARCH_REGS


def kernel_enabled() -> bool:
    """Whether ``Processor.run`` should use the macro-step kernel.

    Read from the environment on every call so tests can flip
    ``REPRO_KERNEL`` between runs without rebuilding anything.
    """
    return os.environ.get("REPRO_KERNEL", "1") != "0"


def run_kernel(proc: "Processor", max_cycles: int,
               on_sample=None, sample_interval: int = 0
               ) -> "ProcessorStats":
    """Drop-in replacement for the reference ``Processor.run`` loop.

    Slices the run into macro-steps bounded by absolute sampling
    boundaries (``now % sample_interval == 0``) and fires ``on_sample``
    exactly where the reference countdown would — including after a
    chunk whose final cycle both drains the pipeline and lands on a
    boundary (the reference samples before its drain check).
    """
    session = maybe_session(proc)
    if session is not None:
        return _run_kernel_accel(session, max_cycles, on_sample,
                                 sample_interval)
    sampling = bool(sample_interval) and on_sample is not None
    remaining = max_cycles
    while remaining > 0:
        if sampling:
            to_boundary = sample_interval - proc.now % sample_interval
            chunk = to_boundary if to_boundary < remaining else remaining
        else:
            to_boundary = -1
            chunk = remaining
        ran, finished = _run_chunk(proc, chunk)
        remaining -= ran
        if sampling and ran == chunk and chunk == to_boundary:
            on_sample(proc)
        if finished:
            break
    return proc.stats


def _run_kernel_accel(session: AccelSession, max_cycles: int,
                      on_sample, sample_interval: int
                      ) -> "ProcessorStats":
    """:func:`run_kernel`'s boundary-slicing loop over a lowered
    session (``repro.pipeline.accel``).

    Same chunking, sample-fire condition, and drain break; each
    boundary is bracketed by ``sync_out`` (scalars the DTM and power
    accountant read) and ``sync_in`` (gating state the DTM wrote), and
    the full object state is materialized once at the end — or on any
    error, so a model-invariant RuntimeError leaves the processor as
    consistent as the kernel's finally-flush would.
    """
    proc = session.proc
    sampling = bool(sample_interval) and on_sample is not None
    remaining = max_cycles
    try:
        while remaining > 0:
            if sampling:
                to_boundary = sample_interval - session.now % sample_interval
                chunk = (to_boundary if to_boundary < remaining
                         else remaining)
            else:
                to_boundary = -1
                chunk = remaining
            ran, finished = session.run_chunk(chunk)
            remaining -= ran
            if sampling and ran == chunk and chunk == to_boundary:
                session.sync_out()
                on_sample(proc)
                session.sync_in()
            if finished:
                break
    finally:
        session.materialize()
    return proc.stats


def _run_chunk(proc: "Processor", n_cycles: int) -> Tuple[int, bool]:
    """Execute up to ``n_cycles`` cycles with fully hoisted state.

    Returns ``(cycles_ran, finished)`` where ``finished`` mirrors the
    reference loop's drain break (trace exhausted, fetch buffer empty,
    active list empty).  All mutated scalars are written back in the
    ``finally`` block, so the processor object is consistent even if a
    model invariant raises mid-chunk.
    """
    # ---- hoist: everything the cycle body touches ---------------------
    now = proc.now
    end = now + n_cycles
    start_cycle = now
    finished = False

    st = proc.stats
    st_cycles = st.cycles
    st_committed = st.committed
    st_stall = st.stall_cycles
    st_throttled = st.throttled_cycles
    st_issued = st.issued

    stalled_until = proc.stalled_until
    throttled_until = proc.throttled_until
    commit_width = proc._commit_width
    issue_width = proc._issue_width

    rob = proc.rob
    rob_entries = rob._entries
    rob_capacity = rob.capacity
    rob_head = rob._head
    rob_tail = rob._tail
    rob_count = rob._count
    rob_retired = rob.retired

    lsq = proc.lsq
    lsq_count = lsq._count
    lsq_capacity = lsq.capacity

    rename = proc.rename
    amap = rename._map
    free_list = rename._free
    free_pop = free_list.pop
    free_set = rename._free_set
    ready_set = rename._ready
    ready_add = ready_set.add
    ready_discard = ready_set.discard

    fetch = proc.fetch
    f_buffer = fetch.buffer
    f_pop = f_buffer.popleft
    f_push = f_buffer.append
    f_capacity = fetch.buffer_capacity
    f_width = fetch.fetch_width
    f_fetched = fetch.fetched
    f_exhausted = fetch.exhausted
    f_blocking = fetch._blocking_branch
    f_resume = fetch._resume_at
    f_count = fetch._count_this_cycle
    penalty = fetch.mispredict_penalty
    trace = fetch.trace
    trace_next = trace.__next__
    pred_mis = fetch.predictor.mispredicted
    # Replayable traces (the normal case) are fetched by direct list
    # indexing — ``__next__``'s cursor bump and try/except cost a
    # method call per fetched op.  ``t_ops`` doubles as the fast-path
    # flag; custom iterator traces keep the generic loop.
    if type(trace) is _ReplayTrace:
        t_ops = trace._ops
        t_get = trace.buffer.get
        t_pos = trace.position
        t_len = len(t_ops)
    else:
        t_ops = None
        t_pos = 0

    memory = proc.memory
    mem_load_latency = memory.load_latency
    mem_store = memory.store

    units = proc._all_units
    n_units = len(units)
    # Bound through the instance attribute so the sanitizer's wrapped
    # ``unit.start`` stays on the call path.
    int_alus = proc.int_alus
    n_int = len(int_alus)
    int_starts = [u.start for u in int_alus]
    int_blocked = [u._blocked_until for u in int_alus]
    fp_adders = proc.fp_adders
    n_fp = len(fp_adders)
    fp_starts = [u.start for u in fp_adders]
    fp_mul = proc.fp_mul
    fp_mul_start = fp_mul.start
    mul_j = n_units - 1
    # The sanitizer hooks ``unit.start`` as an instance attribute; when
    # no unit is hooked, issue can build the in-flight records inline
    # instead of paying a method call (+ numpy scalar bump) per op.
    fast_units = True
    for u in units:
        if "start" in u.__dict__:
            fast_units = False
            break
    # Unit execution state, hoisted: in-flight lists are mutated (and
    # on drain, rebound) locally and written back in the flush; the
    # next-finish sentinels let writeback skip an idle unit on one
    # list index instead of an attribute load.
    pipelines = [u._pipeline for u in units]
    nf = [u._next_finish for u in units]
    # Earliest pending finish across all units: writeback skips the
    # whole per-unit scan on cycles where nothing can drain.  Kept
    # current at every site that lowers a unit's next-finish.
    min_nf = min(nf)
    int_ops_acc = [0] * n_int
    fp_ops_acc = [0] * n_fp
    mul_ops_acc = 0
    latency_of = DEFAULT_LATENCY
    mk_inflight = _InFlight
    # Busy flags only flip at sample boundaries and ``_blocked_until``
    # is only written by INT_MUL issue, which FP units never execute —
    # so the FP gating inputs are chunk-constant.
    fp_busy_static = [u.busy for u in fp_adders]
    fp_blocked = [u._blocked_until for u in fp_adders]
    fpm_busy = fp_mul.busy
    fpm_blocked = fp_mul._blocked_until

    regfile = proc.regfile
    off_set = regfile._off
    blocked_set = regfile.blocked_alus()
    int_busy_static = [u.busy or i in blocked_set
                       for i, u in enumerate(int_alus)]
    mapping = proc.mapping
    copies_for = [mapping.copies_for(i) for i in range(n_int)]
    n_copies = regfile.n_copies
    rf_read_acc = [0] * n_copies
    rf_write_events = 0
    fp_acc = proc.fp_reg_accesses

    int_iq = proc.int_iq
    i_order = int_iq._order
    i_now = int_iq._now
    i_cap = int_iq.n_entries
    int_waiters = int_iq._waiters
    int_waiters_get = int_waiters.get
    int_waiters_pop = int_waiters.pop
    i_compact = int_iq._compact
    ic_ticks = ic_occ = ic_bcasts = ic_ins = ic_grants = 0
    ic_ce0 = ic_ce1 = ic_cm0 = ic_cm1 = 0
    ic_mx0 = ic_mx1 = ic_lm0 = ic_lm1 = 0

    fp_iq = proc.fp_iq
    fq_order = fp_iq._order
    fq_now = fp_iq._now
    fq_cap = fp_iq.n_entries
    fp_waiters = fp_iq._waiters
    fp_waiters_get = fp_waiters.get
    fp_waiters_pop = fp_waiters.pop
    f_compact = fp_iq._compact
    fc_ticks = fc_occ = fc_bcasts = fc_ins = fc_grants = 0
    fc_ce0 = fc_ce1 = fc_cm0 = fc_cm1 = 0
    fc_mx0 = fc_mx1 = fc_lm0 = fc_lm1 = 0

    int_sel = proc.int_select
    int_rr = int_sel.round_robin
    int_rr_off = int_sel._rr_offset
    igpt = int_sel.counters.grants_per_tree
    isc_cycles = int_sel.counters.cycles
    isc_req = int_sel.counters.requests_seen
    fp_sel = proc.fp_add_select
    fp_rr = fp_sel.round_robin
    fp_rr_off = fp_sel._rr_offset
    fgpt = fp_sel.counters.grants_per_tree
    fsc_cycles = fp_sel.counters.cycles
    fsc_req = fp_sel.counters.requests_seen
    mul_sel = proc.fp_mul_select
    mgpt = mul_sel.counters.grants_per_tree
    msc_cycles = mul_sel.counters.cycles
    msc_req = mul_sel.counters.requests_seen

    busy_n = proc._busy_count[0]
    active_cycles = 0

    OC_LOAD = OpClass.LOAD
    OC_STORE = OpClass.STORE
    OC_BRANCH = OpClass.BRANCH
    OC_INT_MUL = OpClass.INT_MUL
    OC_FP_ADD = OpClass.FP_ADD
    OC_FP_MUL = OpClass.FP_MUL

    # Ready-entry scoreboard: counts entries whose waiting set is empty
    # and which have not issued.  Lets the issue stage skip the O(top)
    # ready scans on cycles where the queues hold only waiting or
    # replay-pending entries (the common case in stall-heavy regions).
    # Maintained at the three sites that change readiness — dispatch
    # insert, writeback broadcast, and grant — and recomputed here each
    # chunk so restores between chunks need no extra bookkeeping.
    i_ready_n = 0
    for phys in i_order[:int_iq._top]:
        e = int_iq.slots[phys]
        if e is not None and e.issued_at is None and not e.waiting_tags:
            i_ready_n += 1
    f_ready_n = 0
    for phys in fq_order[:fp_iq._top]:
        e = fp_iq.slots[phys]
        if e is not None and e.issued_at is None and not e.waiting_tags:
            f_ready_n += 1

    try:
        while now < end:
            nxt = now + 1
            if nxt < stalled_until:
                # Global stall: the reference body only bumps the cycle
                # and stall counters and re-checks the drain condition,
                # and nothing inside a stalled cycle can change that
                # condition — so the whole stalled stretch collapses.
                if f_exhausted and rob_count == 0 and not f_buffer:
                    now = nxt
                    st_cycles += 1
                    st_stall += 1
                    finished = True
                    break
                last = stalled_until - 1
                if last > end:
                    last = end
                n_stall = last - now
                now = last
                st_cycles += n_stall
                st_stall += n_stall
                continue
            now = nxt
            st_cycles += 1
            active_cycles += 1

            # ---- commit (fused ready_count + retire) -----------------
            if rob_count:
                n_commit = 0
                limit = rob_count if rob_count < commit_width \
                    else commit_width
                pos = rob_head
                while n_commit < limit:
                    entry = rob_entries[pos]
                    if entry is None or not entry.done:
                        break
                    op = entry.op
                    oc = op.opclass
                    if oc is OC_STORE:
                        if op.mem_addr is not None:
                            mem_store(op.mem_addr)
                        lsq_count -= 1
                    elif oc is OC_LOAD:
                        lsq_count -= 1
                    tag = entry.freed_tag
                    if tag is not None:
                        free_list.append(tag)
                        free_set.add(tag)
                        ready_discard(tag)
                    rob_entries[pos] = None
                    pos += 1
                    if pos == rob_capacity:
                        pos = 0
                    n_commit += 1
                if n_commit:
                    rob_head = pos
                    rob_count -= n_commit
                    rob_retired += n_commit
                    st_committed += n_commit

            # ---- writeback (inlined ``FunctionalUnit.drain``) --------
            if now >= min_nf:
                min_nf = _NEVER
                for j in range(n_units):
                    fin_j = nf[j]
                    if now < fin_j:
                        if fin_j < min_nf:
                            min_nf = fin_j
                        continue
                    remaining = []
                    next_finish = _NEVER
                    for done in pipelines[j]:
                        fin = done.finish_cycle
                        if fin > now:
                            remaining.append(done)
                            if fin < next_finish:
                                next_finish = fin
                            continue
                        op = done.op
                        entry = rob_entries[done.rob_index]
                        entry.done = True
                        oc = op.opclass
                        if oc is OC_BRANCH and f_blocking == op.seq:
                            f_blocking = None
                            f_resume = now + penalty
                        tag = entry.dst_tag
                        if tag is not None:
                            ready_add(tag)
                            ic_bcasts += 1
                            bucket = int_waiters_pop(tag, None)
                            if bucket is not None:
                                for waiter in bucket:
                                    wt = waiter.waiting_tags
                                    wt.discard(tag)
                                    if not wt:
                                        i_ready_n += 1
                            fc_bcasts += 1
                            bucket = fp_waiters_pop(tag, None)
                            if bucket is not None:
                                for waiter in bucket:
                                    wt = waiter.waiting_tags
                                    wt.discard(tag)
                                    if not wt:
                                        f_ready_n += 1
                            if oc is OC_FP_ADD or oc is OC_FP_MUL:
                                fp_acc += 1
                            else:
                                rf_write_events += 1
                    pipelines[j] = remaining
                    nf[j] = next_finish
                    if next_finish < min_nf:
                        min_nf = next_finish
                    if not fast_units:
                        # Keep the unit's own state live so the
                        # sanitizer's wrapped ``start`` appends to the
                        # current list.
                        unit = units[j]
                        unit._pipeline = remaining
                        unit._next_finish = next_finish

            if throttled_until > now and now & 1:
                st_throttled += 1
            else:
                # ---- issue (fused select + grant + unit start) -------
                budget = issue_width
                if int_iq._top != int_iq._holes:
                    isc_cycles += 1
                    if i_ready_n:
                        slots = int_iq.slots
                        ready: List[int] = [
                            phys for phys in i_order[:int_iq._top]
                            if (e := slots[phys]) is not None
                            and e.issued_at is None and not e.waiting_tags]
                        n_ready = len(ready)
                        isc_req += n_ready
                        cap = budget if budget < n_ready else n_ready
                    else:
                        # Scoreboard says nothing can issue: the scan
                        # would be empty, so only the selection-logic
                        # cycle counter advances.
                        cap = 0
                    taken = 0
                    if cap:
                        i_pending = int_iq._pending_removal
                        if int_rr:
                            # Two-phase: the rotated serialization
                            # assigns the grants, but the reference
                            # processes them in ascending ALU order
                            # (cache-touch order must match).
                            pairs = []
                            for k in range(n_int):
                                if taken >= cap:
                                    break
                                t = (k + int_rr_off) % n_int
                                if (int_busy_static[t]
                                        or now < int_blocked[t]):
                                    continue
                                pairs.append((t, ready[taken]))
                                igpt[t] += 1
                                taken += 1
                            pairs.sort()
                        else:
                            pairs = []
                            for t in range(n_int):
                                if taken >= cap:
                                    break
                                if (int_busy_static[t]
                                        or now < int_blocked[t]):
                                    continue
                                pairs.append((t, ready[taken]))
                                igpt[t] += 1
                                taken += 1
                        for t, phys in pairs:
                            e = slots[phys]
                            e.issued_at = i_now
                            i_pending.append(e)
                            ic_grants += 1
                            op = e.op
                            oc = op.opclass
                            extra = 0
                            if oc is OC_LOAD and op.mem_addr is not None:
                                extra = mem_load_latency(op.mem_addr)
                            n_operands = ((op.src1 is not None)
                                          + (op.src2 is not None))
                            ports = copies_for[t]
                            for port in range(n_operands):
                                copy = ports[port]
                                if copy in off_set:
                                    raise RuntimeError(
                                        f"read from turned-off register-"
                                        f"file copy {copy}; ALU {t} "
                                        f"should have been marked busy")
                                rf_read_acc[copy] += 1
                            if fast_units:
                                base = latency_of[oc]
                                if oc is OC_INT_MUL:
                                    int_blocked[t] = now + base
                                fin = now + base + extra
                                pipelines[t].append(
                                    mk_inflight(op, e.rob_index, fin))
                                if fin < nf[t]:
                                    nf[t] = fin
                                if fin < min_nf:
                                    min_nf = fin
                                int_ops_acc[t] += 1
                            else:
                                int_starts[t](op, e.rob_index, now, extra)
                                u = int_alus[t]
                                if oc is OC_INT_MUL:
                                    int_blocked[t] = u._blocked_until
                                nf[t] = u._next_finish
                                if nf[t] < min_nf:
                                    min_nf = nf[t]
                            rob_entries[e.rob_index].issued = True
                            st_issued += 1
                        budget -= taken
                        i_ready_n -= taken
                    if int_rr:
                        int_rr_off = (int_rr_off + 1) % n_int
                if budget > 0 and fp_iq._top != fp_iq._holes:
                    fsc_cycles += 1
                    if f_ready_n:
                        slots = fp_iq.slots
                        # One scan feeds both the FP-add pass and the
                        # FP-mul pass below: add grants never touch mul
                        # entries, so the mul-ready set is identical to
                        # what the reference's post-grant re-scan would
                        # produce.
                        ready = []
                        ready_mul = []
                        for phys in fq_order[:fp_iq._top]:
                            e = slots[phys]
                            if (e is None or e.issued_at is not None
                                    or e.waiting_tags):
                                continue
                            if e.op.opclass is OC_FP_ADD:
                                ready.append(phys)
                            else:
                                ready_mul.append(phys)
                        n_ready = len(ready)
                        fsc_req += n_ready
                        cap = budget if budget < n_ready else n_ready
                    else:
                        # Scoreboard: queue holds only waiting or
                        # replay-pending entries, so both passes see
                        # zero requests.
                        ready_mul = ()
                        cap = 0
                    taken = 0
                    f_pending = fp_iq._pending_removal
                    if cap:
                        if fp_rr:
                            pairs = []
                            for k in range(n_fp):
                                if taken >= cap:
                                    break
                                t = (k + fp_rr_off) % n_fp
                                if (fp_busy_static[t]
                                        or now < fp_blocked[t]):
                                    continue
                                pairs.append((t, ready[taken]))
                                fgpt[t] += 1
                                taken += 1
                            pairs.sort()
                        else:
                            pairs = []
                            for t in range(n_fp):
                                if taken >= cap:
                                    break
                                if (fp_busy_static[t]
                                        or now < fp_blocked[t]):
                                    continue
                                pairs.append((t, ready[taken]))
                                fgpt[t] += 1
                                taken += 1
                        for t, phys in pairs:
                            e = slots[phys]
                            e.issued_at = fq_now
                            f_pending.append(e)
                            fc_grants += 1
                            op = e.op
                            fp_acc += ((op.src1 is not None)
                                       + (op.src2 is not None))
                            if fast_units:
                                j = n_int + t
                                fin = now + latency_of[OC_FP_ADD]
                                pipelines[j].append(
                                    mk_inflight(op, e.rob_index, fin))
                                if fin < nf[j]:
                                    nf[j] = fin
                                if fin < min_nf:
                                    min_nf = fin
                                fp_ops_acc[t] += 1
                            else:
                                fp_starts[t](op, e.rob_index, now)
                                fin = fp_adders[t]._next_finish
                                nf[n_int + t] = fin
                                if fin < min_nf:
                                    min_nf = fin
                            rob_entries[e.rob_index].issued = True
                            st_issued += 1
                    f_ready_n -= taken
                    if fp_rr:
                        fp_rr_off = (fp_rr_off + 1) % n_fp
                    if taken < budget:
                        # FP multiplier pass (uses the fused scan: the
                        # adds granted above were never in
                        # ``ready_mul``).
                        msc_cycles += 1
                        msc_req += len(ready_mul)
                        if ready_mul and not (fpm_busy
                                              or now < fpm_blocked):
                            phys = ready_mul[0]
                            mgpt[0] += 1
                            f_ready_n -= 1
                            e = slots[phys]
                            e.issued_at = fq_now
                            f_pending.append(e)
                            fc_grants += 1
                            op = e.op
                            fp_acc += ((op.src1 is not None)
                                       + (op.src2 is not None))
                            if fast_units:
                                fin = now + latency_of[OC_FP_MUL]
                                pipelines[mul_j].append(
                                    mk_inflight(op, e.rob_index, fin))
                                if fin < nf[mul_j]:
                                    nf[mul_j] = fin
                                if fin < min_nf:
                                    min_nf = fin
                                mul_ops_acc += 1
                            else:
                                fp_mul_start(op, e.rob_index, now)
                                fin = fp_mul._next_finish
                                nf[mul_j] = fin
                                if fin < min_nf:
                                    min_nf = fin
                            rob_entries[e.rob_index].issued = True
                            st_issued += 1

                # ---- queue tick (compaction) -------------------------
                i_now += 1
                ic_ticks += 1
                ic_occ += int_iq._top - int_iq._holes
                if int_iq._holes or int_iq._pending_removal:
                    int_iq._now = i_now
                    t0, t1, t2, t3, t4, t5, t6, t7 = i_compact()
                    ic_ce0 += t0
                    ic_ce1 += t1
                    ic_cm0 += t2
                    ic_cm1 += t3
                    ic_mx0 += t4
                    ic_mx1 += t5
                    ic_lm0 += t6
                    ic_lm1 += t7
                fq_now += 1
                fc_ticks += 1
                fc_occ += fp_iq._top - fp_iq._holes
                if fp_iq._holes or fp_iq._pending_removal:
                    fp_iq._now = fq_now
                    t0, t1, t2, t3, t4, t5, t6, t7 = f_compact()
                    fc_ce0 += t0
                    fc_ce1 += t1
                    fc_cm0 += t2
                    fc_cm1 += t3
                    fc_mx0 += t4
                    fc_mx1 += t5
                    fc_lm0 += t6
                    fc_lm1 += t7

                # ---- dispatch (peek-based rename + insert) -----------
                if f_buffer:
                    n_disp = len(f_buffer)
                    if n_disp > issue_width:
                        n_disp = issue_width
                    for _ in range(n_disp):
                        op = f_buffer[0]
                        oc = op.opclass
                        if oc is OC_FP_ADD or oc is OC_FP_MUL:
                            queue = fp_iq
                            q_cap = fq_cap
                            offset = _FP_OFFSET
                        else:
                            queue = int_iq
                            q_cap = i_cap
                            offset = 0
                        needs_lsq = oc is OC_LOAD or oc is OC_STORE
                        if (rob_count == rob_capacity
                                or queue._top >= q_cap
                                or (needs_lsq
                                    and lsq_count == lsq_capacity)
                                or (op.dst is not None
                                    and not free_list)):
                            break  # structural stall: op stays buffered
                        f_pop()
                        s1 = op.src1
                        s2 = op.src2
                        # ``wlist`` mirrors the set in insertion order
                        # so waiter registration below iterates a
                        # deterministic sequence, not the set.
                        waiting = set()
                        wlist = []
                        if s1 is not None:
                            tag = amap[offset + s1]
                            if tag not in ready_set:
                                waiting.add(tag)
                                wlist.append(tag)
                        if s2 is not None:
                            tag = amap[offset + s2]
                            if tag not in ready_set and tag not in waiting:
                                waiting.add(tag)
                                wlist.append(tag)
                        dst = op.dst
                        if dst is not None:
                            dst_tag = free_pop()
                            free_set.remove(dst_tag)
                            freed = amap[offset + dst]
                            amap[offset + dst] = dst_tag
                            ready_discard(dst_tag)
                        else:
                            dst_tag = None
                            freed = None
                        rob_entries[rob_tail] = ROBEntry(
                            op=op, dst_tag=dst_tag, freed_tag=freed)
                        rob_index = rob_tail
                        rob_tail += 1
                        if rob_tail == rob_capacity:
                            rob_tail = 0
                        rob_count += 1
                        if needs_lsq:
                            lsq_count += 1
                        iq_entry = IQEntry(op=op, rob_index=rob_index,
                                           waiting_tags=waiting)
                        queue.slots[queue._order[queue._top]] = iq_entry
                        queue._top += 1
                        if queue is int_iq:
                            ic_ins += 1
                            if not waiting:
                                i_ready_n += 1
                            for tag in wlist:
                                bucket = int_waiters_get(tag)
                                if bucket is None:
                                    int_waiters[tag] = [iq_entry]
                                else:
                                    bucket.append(iq_entry)
                        else:
                            fc_ins += 1
                            if not waiting:
                                f_ready_n += 1
                            for tag in wlist:
                                bucket = fp_waiters_get(tag)
                                if bucket is None:
                                    fp_waiters[tag] = [iq_entry]
                                else:
                                    bucket.append(iq_entry)

                # ---- fetch -------------------------------------------
                f_count = 0
                if f_resume is not None and now >= f_resume:
                    f_resume = None
                if f_resume is None and f_blocking is None:
                    if t_ops is not None:
                        # Replay fast path: endless stream, direct
                        # indexing (the cursor flushes back in finally).
                        while (len(f_buffer) < f_capacity
                               and f_count < f_width):
                            if t_pos < t_len:
                                op = t_ops[t_pos]
                            else:
                                op = t_get(t_pos)
                                t_len = len(t_ops)
                            t_pos += 1
                            f_push(op)
                            f_fetched += 1
                            f_count += 1
                            if op.opclass is OC_BRANCH:
                                if pred_mis(op, op.taken):
                                    op.mispredicted = True
                                    f_blocking = op.seq
                                    break
                                op.mispredicted = False
                    else:
                        while (len(f_buffer) < f_capacity
                               and f_count < f_width):
                            try:
                                op = trace_next()
                            except StopIteration:
                                f_exhausted = True
                                break
                            f_push(op)
                            f_fetched += 1
                            f_count += 1
                            if op.opclass is OC_BRANCH:
                                if pred_mis(op, op.taken):
                                    op.mispredicted = True
                                    f_blocking = op.seq
                                    break
                                op.mispredicted = False

            if f_exhausted and rob_count == 0 and not f_buffer:
                finished = True
                break
    finally:
        # ---- flush: write every hoisted scalar back ------------------
        proc.now = now
        st.cycles = st_cycles
        st.committed = st_committed
        st.stall_cycles = st_stall
        st.throttled_cycles = st_throttled
        st.issued = st_issued
        rob._head = rob_head
        rob._tail = rob_tail
        rob._count = rob_count
        rob.retired = rob_retired
        lsq._count = lsq_count
        fetch.fetched = f_fetched
        fetch.exhausted = f_exhausted
        fetch._blocking_branch = f_blocking
        fetch._resume_at = f_resume
        fetch._count_this_cycle = f_count
        if t_ops is not None:
            trace.position = t_pos
        proc.fp_reg_accesses = fp_acc
        int_iq._now = i_now
        fp_iq._now = fq_now
        c = int_iq._c
        c[IQC_CYCLES] += ic_ticks
        c[IQC_OCCUPANCY_SUM] += ic_occ
        c[IQC_BROADCASTS] += ic_bcasts
        c[IQC_INSERTS] += ic_ins
        c[IQC_SELECT_GRANTS] += ic_grants
        c[IQC_PAYLOAD_OPS] += ic_grants
        c[IQC_COUNTER_EVALS_0] += ic_ce0
        c[IQC_COUNTER_EVALS_1] += ic_ce1
        c[IQC_COMPACTION_MOVES_0] += ic_cm0
        c[IQC_COMPACTION_MOVES_0 + 1] += ic_cm1
        c[IQC_MUX_SELECTS_0] += ic_mx0
        c[IQC_MUX_SELECTS_0 + 1] += ic_mx1
        c[IQC_LONG_MOVES_0] += ic_lm0
        c[IQC_LONG_MOVES_0 + 1] += ic_lm1
        c = fp_iq._c
        c[IQC_CYCLES] += fc_ticks
        c[IQC_OCCUPANCY_SUM] += fc_occ
        c[IQC_BROADCASTS] += fc_bcasts
        c[IQC_INSERTS] += fc_ins
        c[IQC_SELECT_GRANTS] += fc_grants
        c[IQC_PAYLOAD_OPS] += fc_grants
        c[IQC_COUNTER_EVALS_0] += fc_ce0
        c[IQC_COUNTER_EVALS_1] += fc_ce1
        c[IQC_COMPACTION_MOVES_0] += fc_cm0
        c[IQC_COMPACTION_MOVES_0 + 1] += fc_cm1
        c[IQC_MUX_SELECTS_0] += fc_mx0
        c[IQC_MUX_SELECTS_0 + 1] += fc_mx1
        c[IQC_LONG_MOVES_0] += fc_lm0
        c[IQC_LONG_MOVES_0 + 1] += fc_lm1
        int_sel.counters.cycles = isc_cycles
        int_sel.counters.requests_seen = isc_req
        int_sel._rr_offset = int_rr_off
        fp_sel.counters.cycles = fsc_cycles
        fp_sel.counters.requests_seen = fsc_req
        fp_sel._rr_offset = fp_rr_off
        mul_sel.counters.cycles = msc_cycles
        mul_sel.counters.requests_seen = msc_req
        if any(rf_read_acc):
            regfile._reads += rf_read_acc
        if rf_write_events:
            regfile._writes += rf_write_events
        for j in range(n_units):
            unit = units[j]
            unit._pipeline = pipelines[j]
            unit._next_finish = nf[j]
        for t in range(n_int):
            int_alus[t]._blocked_until = int_blocked[t]
        if any(int_ops_acc):
            proc._int_bank.ops += int_ops_acc
        if any(fp_ops_acc):
            proc._fp_add_bank.ops += fp_ops_acc
        if mul_ops_acc:
            proc._fp_mul_bank.ops[0] += mul_ops_acc
        if busy_n and active_cycles:
            for unit in units:
                if unit.busy:
                    unit._bank.busy_cycles[unit._slot] += active_cycles
    return now - start_cycle, finished


# ---------------------------------------------------------------------------
# Batched grid execution (run axis)
# ---------------------------------------------------------------------------
#
# A figure grid runs many technique variants of one benchmark from one
# shared warm state.  Under the macro-step contract the DTM mutates
# gating state only at on_sample boundaries, so two variants execute
# *identically* — cycle for cycle, counter for counter — until the
# first boundary where their DTM decisions differ.  The batched path
# exploits that: runs are grouped into execution-equivalence classes;
# each class's leader executes chunks for real while its followers'
# counter rows receive the leader's activity delta as one vectorized
# broadcast per boundary.  Divergence is held as per-run state (the
# gating tuple) rather than control flow: every run's own DTM still
# observes its own thermal sensors and makes its own decisions each
# boundary, and the moment a follower's post-DTM gating tuple differs
# from its leader's, the follower forks — the leader's pipeline state
# is restored into it, its own counter row and gating decisions are
# overlaid, and it continues as a class of its own.


def batch_enabled() -> bool:
    """Whether the experiment engine may lock-step compatible run
    groups through one batched kernel invocation (``REPRO_BATCH``).

    Read from the environment on every call so tests can flip the
    variable between runs without rebuilding anything.
    """
    return os.environ.get("REPRO_BATCH", "1") != "0"


def batch_merge_enabled() -> bool:
    """Whether diverged execution classes may fold back together when
    their pipeline state re-converges (``REPRO_BATCH_MERGE``).

    Read from the environment on every call so tests can flip the
    variable between runs without rebuilding anything.
    """
    return os.environ.get("REPRO_BATCH_MERGE", "1") != "0"


class BatchStats:
    """Observable bookkeeping of batched execution.

    One instance can accumulate across several batched groups (the
    experiment engine folds these into ``EngineStats``).
    """

    __slots__ = ("fork_count", "merge_count", "boundaries",
                 "class_occupancy", "snapshot_full", "snapshot_reused",
                 "offloaded_runs")

    def __init__(self) -> None:
        #: Followers that diverged from their leader and became
        #: execution classes of their own.
        self.fork_count = 0
        #: Runs folded back into another class after re-convergence.
        self.merge_count = 0
        #: Sampling boundaries stepped by the lock-step wave loop.
        self.boundaries = 0
        #: ``{live execution classes -> boundaries observed at that
        #: occupancy}`` — the divergence trajectory of the grid.
        self.class_occupancy: Dict[int, int] = {}
        #: Full leader snapshots pickled for forks.
        self.snapshot_full = 0
        #: Forks served by a cached copy-on-write snapshot (leader ran
        #: only bulk-skipped stall cycles since the last capture).
        self.snapshot_reused = 0
        #: Diverged singleton classes handed to the process pool.
        self.offloaded_runs = 0

    def merge_from(self, other: "BatchStats") -> None:
        self.fork_count += other.fork_count
        self.merge_count += other.merge_count
        self.boundaries += other.boundaries
        for occupancy, count in other.class_occupancy.items():
            self.class_occupancy[occupancy] = (
                self.class_occupancy.get(occupancy, 0) + count)
        self.snapshot_full += other.snapshot_full
        self.snapshot_reused += other.snapshot_reused
        self.offloaded_runs += other.offloaded_runs


class BatchRun:
    """One run's slot in a batched kernel invocation.

    ``index`` is the run's row in the shared
    :class:`~repro.pipeline.soa.RunAxisStore`.  ``reads_pipeline``
    marks runs whose DTM inspects live pipeline state during
    ``on_sample`` (the activity-toggling policy reads queue occupancy
    and counters): such runs always execute for real — a follower's
    pipeline objects are stale between boundaries — so they lead a
    singleton class from the start.
    """

    __slots__ = ("proc", "index", "reads_pipeline")

    def __init__(self, proc: "Processor", index: int,
                 reads_pipeline: bool = False) -> None:
        self.proc = proc
        self.index = index
        self.reads_pipeline = reads_pipeline


class _ExecClass:
    """Runs currently sharing one execution (leader executes,
    followers receive broadcast deltas)."""

    __slots__ = ("leader", "followers", "remaining", "prev_row",
                 "session", "done", "at_boundary", "finished",
                 "blob", "blob_stamp", "merge_wait")

    def __init__(self, leader: BatchRun, followers: List[BatchRun],
                 remaining: int, store: "RunAxisStore",
                 merge_wait: int = -1) -> None:
        self.leader = leader
        self.followers = followers
        self.remaining = remaining
        # Leader-row snapshot delimiting the next broadcast delta;
        # refreshed after every boundary (so the leader's own DTM
        # counter bumps — which followers make on their own rows —
        # never leak into the execution delta).
        self.prev_row = store.row(leader.index).copy() if followers else None
        # A lowered accelerator session executing this class's chunks
        # (created lazily at the first advance; ``None`` for the pure
        # kernel backend).
        self.session: Optional[AccelSession] = None
        self.done = False
        self.at_boundary = False
        self.finished = False
        # Copy-on-write fork snapshot: the leader's pickled pipeline
        # state, valid while the leader has executed only bulk-skipped
        # stall cycles since capture (``blob_stamp`` is the active
        # cycle count at capture time).
        self.blob: Optional[bytes] = None
        self.blob_stamp = -1
        # Boundaries to wait for a re-convergence merge before
        # offering this class to the process pool (-1: never offload —
        # initial classes are the inline backbone of the group).
        self.merge_wait = merge_wait


def _effective_gating(proc: "Processor") -> tuple:
    """The gating tuple with stall/throttle deadlines normalized to
    cycles-remaining.

    An expired deadline is semantically inert — ``is_stalled``, the
    kernel's stall gate, and ``global_stall``'s ``max(old, now + c)``
    all behave identically for any past value — so two runs whose
    deadlines differ only in *when they expired* share their execution
    exactly.  Comparing normalized deadlines keeps such runs in one
    class instead of forking on dead state.
    """
    stalled, throttled, *rest = proc.capture_gating()
    now = proc.now
    stalled -= now
    throttled -= now
    return (stalled if stalled > 0 else 0,
            throttled if throttled > 0 else 0, *rest)


def _merge_signature(proc: "Processor") -> tuple:
    """Cheap scalar prefilter for re-convergence: two runs can only
    share future execution if every scalar the execution reads or
    reports agrees."""
    st = proc.stats
    fetch = proc.fetch
    mem = proc.memory
    return (proc.now, st.cycles, st.committed, st.issued,
            st.stall_cycles, st.throttled_cycles, fetch.fetched,
            fetch.trace.position, proc.rob.retired,
            proc.fp_reg_accesses, mem.l1d.stats.accesses,
            mem.l2.stats.accesses)


def _merge_digest(proc: "Processor") -> bytes:
    """Full-state digest deciding re-convergence.

    Pickle-byte equality of the masked snapshot implies structural
    identity of everything future execution depends on, so two runs
    with equal digests (and equal :func:`_merge_signature` scalars)
    produce bit-identical results from here on whether they execute
    separately or share one leader.  Masked before pickling:

    * per-run SoA counters (issue-queue counter blocks, functional-unit
      banks, regfile access counts) — they live on each run's own row,
      legitimately differ, and are preserved across adoption anyway;
    * stall/throttle deadlines, normalized to cycles-remaining exactly
      as :func:`_effective_gating` does (expired deadlines are inert);
    * set-valued state (rename ``ready``, regfile ``off``/``blocked``,
      issue-queue entry ``waiting_tags``), replaced by sorted tuples.
      These sets are membership-only — nothing iterates them in an
      execution-relevant order (checkpoint restore rebuilds them via
      ``set(...)`` and stays bit-identical) — but their pickle bytes
      depend on insertion history, and a forked run's state went
      through a pickle round-trip that reorders them.  Without the
      canonicalization a fork could never match its origin class again.

    Residual dict iteration-order differences can still produce
    different bytes for equal states (a false negative) — that only
    costs a missed merge, never a wrong one.
    """
    state = dict(proc.snapshot_state())
    now = proc.now
    for key in ("stalled_until", "throttled_until"):
        left = state[key] - now
        state[key] = left if left > 0 else 0
    for key in ("int_iq", "fp_iq"):
        queue = dict(state[key], counters=None)
        queue["slots"] = [_canon_entry(e) for e in queue["slots"]]
        queue["pending_removal"] = [_canon_entry(e) for e in
                                    queue["pending_removal"]]
        state[key] = queue
    for key in ("int_alus", "fp_adders"):
        state[key] = [dict(unit, counters=None) for unit in state[key]]
    state["fp_mul"] = dict(state["fp_mul"], counters=None)
    regfile = dict(state["regfile"], counters=None)
    regfile["off"] = tuple(sorted(regfile["off"]))
    regfile["blocked"] = tuple(sorted(regfile["blocked"]))
    state["regfile"] = regfile
    rename = dict(state["rename"])
    rename["ready"] = tuple(sorted(rename["ready"]))
    state["rename"] = rename
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def _canon_entry(entry) -> Optional[tuple]:
    """Order-canonical content tuple for one issue-queue slot.

    Content equality substitutes for identity here: ``op.seq`` is
    unique per in-flight op, so equal tuples can only come from the
    same logical entry (appearing in ``slots`` and, once issued, in
    ``pending_removal``)."""
    if entry is None:
        return None
    return (entry.op, entry.rob_index, entry.issued_at,
            tuple(sorted(entry.waiting_tags)))


def _leader_blob(cls: _ExecClass, stats: BatchStats) -> bytes:
    """The leader's pickled pipeline state, served copy-on-write.

    While a leader only bulk-skips stall cycles, nothing in its
    pipeline moves — only ``now``, ``stats.cycles`` and
    ``stats.stall_cycles`` advance (and gating, which adoption
    overlays anyway).  The active-cycle count stamps the cached blob;
    a stale-stamped reuse is finished off by the scalar patch in
    :func:`_adopt_leader_state`, so a fork during a stalled stretch
    costs O(delta) instead of re-pickling the whole processor.
    """
    proc = cls.leader.proc
    pstats = proc.stats
    stamp = pstats.cycles - pstats.stall_cycles
    if cls.blob is not None and cls.blob_stamp == stamp:
        stats.snapshot_reused += 1
        return cls.blob
    if cls.session is not None:
        cls.session.materialize()
    cls.blob = pickle.dumps(proc.snapshot_state())
    cls.blob_stamp = stamp
    stats.snapshot_full += 1
    return cls.blob


def run_batch(runs: List[BatchRun], store: "RunAxisStore",
              max_cycles: int, sample_interval: int,
              on_boundary,
              stats: Optional[BatchStats] = None,
              offload: Optional[Callable[[BatchRun, int], bool]] = None,
              merge_window: int = 4) -> None:
    """Step every run of one warm-state group through the macro-step
    loop in lock-step.

    All runs must share the same ``now`` (one restored warm state),
    the same replayable trace buffer, and adopted rows of ``store``.
    ``on_boundary(class_runs)`` is called once per execution class at
    every sampling boundary with the class leader first — the caller
    samples power/thermal state for those runs (batched across the
    run axis) and runs each run's DTM.  Boundary placement, the
    sample-fire condition, and the drain break mirror
    :func:`run_kernel` exactly, so per-run results are bit-identical
    to the per-run kernel (and, transitively, the reference loop).

    Execution classes advance **one sensing interval per wave** so
    every live class stands at the same boundary together.  That
    lock-step is what enables divergence tolerance: at each boundary,
    forked classes whose masked state digest re-matches another class
    fold back in as followers (:func:`_merge_digest`;
    ``REPRO_BATCH_MERGE=0`` disables), and a forked singleton that
    stays diverged past ``merge_window`` boundaries is offered to
    ``offload(run, remaining_cycles)`` — when that returns True, a
    pool worker owns the run from its current state onward.
    """
    if sample_interval <= 0:
        raise ValueError("batched execution requires a sampling interval")
    if not runs:
        return
    now0 = runs[0].proc.now
    for run in runs:
        if run.proc.now != now0:
            raise ValueError("batched runs must start in lock-step")
    if stats is None:
        stats = BatchStats()
    merging = batch_merge_enabled()
    sharers = [r for r in runs if not r.reads_pipeline]
    classes: List[_ExecClass] = []
    if sharers:
        classes.append(
            _ExecClass(sharers[0], sharers[1:], max_cycles, store))
    for run in runs:
        if run.reads_pipeline:
            classes.append(_ExecClass(run, [], max_cycles, store))
    # A lowered session executes a class's chunks when legal; its
    # counter writes land on the same live row views, so the broadcast
    # delta below is backend-independent.  Forks/merges materialize
    # the object state before any snapshot pickle.
    for cls in classes:
        cls.session = maybe_session(cls.leader.proc)
    try:
        _wave_loop(classes, store, sample_interval, on_boundary,
                   stats, merging, offload, merge_window)
    finally:
        for cls in classes:
            if cls.session is not None:
                cls.session.materialize()
                cls.session = None


def _wave_loop(classes: List[_ExecClass], store: "RunAxisStore",
               sample_interval: int, on_boundary,
               stats: BatchStats, merging: bool,
               offload: Optional[Callable[[BatchRun, int], bool]],
               merge_window: int) -> None:
    data = store.data
    while True:
        live = [cls for cls in classes if not cls.done]
        if not live:
            return
        # --- advance: every live class runs one boundary-aligned chunk
        for cls in live:
            leader = cls.leader
            proc = leader.proc
            session = cls.session
            now = session.now if session is not None else proc.now
            to_boundary = sample_interval - now % sample_interval
            chunk = (to_boundary if to_boundary < cls.remaining
                     else cls.remaining)
            if session is not None:
                ran, finished = session.run_chunk(chunk)
            else:
                ran, finished = _run_chunk(proc, chunk)
            cls.remaining -= ran
            if cls.followers:
                # Broadcast this chunk's execution delta to every run
                # still sharing the leader's execution.
                delta = data[leader.index] - cls.prev_row
                for follower in cls.followers:
                    data[follower.index] += delta
            cls.at_boundary = ran == chunk and chunk == to_boundary
            cls.finished = finished
        # --- boundary: sample/DTM per class, then fork divergents
        forked: List[_ExecClass] = []
        hit_boundary = False
        for cls in live:
            if not cls.at_boundary:
                continue
            hit_boundary = True
            proc = cls.leader.proc
            if cls.session is not None:
                cls.session.sync_out()
            for follower in cls.followers:
                _sync_scalars(follower.proc, proc)
            on_boundary([cls.leader, *cls.followers])
            if cls.followers:
                gate = _effective_gating(proc)
                kept: List[BatchRun] = []
                for follower in cls.followers:
                    if _effective_gating(follower.proc) == gate:
                        kept.append(follower)
                        continue
                    # Diverged: fork into a class of its own.
                    blob = _leader_blob(cls, stats)
                    _adopt_leader_state(follower, proc, blob, store)
                    child = _ExecClass(
                        follower, [], cls.remaining, store,
                        merge_wait=merge_window if merging else 0)
                    child.session = maybe_session(follower.proc)
                    forked.append(child)
                    stats.fork_count += 1
                cls.followers = kept
                if kept:
                    cls.prev_row = data[cls.leader.index].copy()
        classes.extend(forked)
        # --- merge: fold re-converged classes back together
        if merging:
            candidates = [cls for cls in live + forked
                          if cls.at_boundary and not cls.finished
                          and not cls.done and cls.remaining > 0]
            _try_merges(candidates, store, stats)
        # --- completion: budget exhausted or pipeline drained
        for cls in live + forked:
            if cls.done:
                continue
            if cls.finished or cls.remaining <= 0:
                _finalize_class(cls, store, stats)
                cls.done = True
        # --- offload: persistent divergents go to the pool
        if offload is not None:
            for cls in live + forked:
                if (cls.done or cls.followers or cls.merge_wait < 0
                        or not cls.at_boundary):
                    continue
                if cls.merge_wait > 0:
                    cls.merge_wait -= 1
                    continue
                if cls.session is not None:
                    cls.session.materialize()
                    cls.session = None
                if offload(cls.leader, cls.remaining):
                    cls.done = True
                    stats.offloaded_runs += 1
                cls.merge_wait = -1
        # --- resume accelerator sessions, record the wave
        for cls in live + forked:
            if (cls.at_boundary and not cls.done
                    and cls.session is not None):
                cls.session.sync_in()
        if hit_boundary:
            stats.boundaries += 1
            occupancy = sum(1 for cls in classes if not cls.done)
            # Occupancy 0 only occurs at the boundary where offload
            # retires the group's last class — a group exit, not a wave.
            if occupancy:
                stats.class_occupancy[occupancy] = (
                    stats.class_occupancy.get(occupancy, 0) + 1)


def _try_merges(candidates: List[_ExecClass], store: "RunAxisStore",
                stats: BatchStats) -> None:
    """Fold digest-identical classes standing at one boundary back
    into shared execution.

    A pipeline-reading leader (activity toggling) may absorb others
    but can never become a follower, so those classes sort first
    within a signature group.  The absorbed class's members join the
    absorber as followers; they keep their own counter rows, sensors,
    and DTM state, exactly as if they had been followers all along —
    legal because equal digests mean their future execution is the
    absorber's future execution.
    """
    if len(candidates) < 2:
        return
    groups: Dict[tuple, List[_ExecClass]] = {}
    for cls in candidates:
        proc = cls.leader.proc
        key = (_effective_gating(proc), _merge_signature(proc))
        groups.setdefault(key, []).append(cls)
    for group in groups.values():
        if len(group) < 2:
            continue
        group.sort(key=lambda cls: not cls.leader.reads_pipeline)
        base = group[0]
        base_digest: Optional[bytes] = None
        for cls in group[1:]:
            if cls.leader.reads_pipeline:
                continue  # may lead or absorb, never follow
            if base_digest is None:
                if base.session is not None:
                    base.session.materialize()
                base_digest = _merge_digest(base.leader.proc)
            if cls.session is not None:
                cls.session.materialize()
                cls.session = None
            if _merge_digest(cls.leader.proc) != base_digest:
                continue
            stats.merge_count += 1 + len(cls.followers)
            base.followers.append(cls.leader)
            base.followers.extend(cls.followers)
            base.prev_row = store.data[base.leader.index].copy()
            cls.followers = []
            cls.blob = None
            cls.done = True


def _finalize_class(cls: _ExecClass, store: "RunAxisStore",
                    stats: BatchStats) -> None:
    """Class completed (drain or cycle budget) with followers still
    attached: give each follower the leader's final pipeline state
    (identical by construction) with its own counters and gating
    overlaid."""
    if cls.session is not None:
        cls.session.materialize()
        cls.session = None
    if cls.followers:
        proc = cls.leader.proc
        blob = _leader_blob(cls, stats)
        for follower in cls.followers:
            _adopt_leader_state(follower, proc, blob, store)
        cls.followers = []
    cls.blob = None


def _sync_scalars(follower: "Processor", leader: "Processor") -> None:
    """Copy the scalar activity state a boundary consumer reads.

    A follower's counter rows are kept correct by the broadcast; the
    handful of scalars :meth:`Processor.activity_snapshot` reads (and
    ``now``, which stall deadlines are computed against) live outside
    the SoA store and are identical to the leader's by construction.
    """
    follower.now = leader.now
    follower.stats.cycles = leader.stats.cycles
    follower.stats.committed = leader.stats.committed
    follower.fp_reg_accesses = leader.fp_reg_accesses
    follower.fetch.fetched = leader.fetch.fetched
    follower.memory.l1d.stats.accesses = leader.memory.l1d.stats.accesses
    follower.memory.l2.stats.accesses = leader.memory.l2.stats.accesses


def _adopt_leader_state(run: BatchRun, leader: "Processor",
                        blob: bytes, store: "RunAxisStore") -> None:
    """Give ``run`` the leader's full pipeline state, preserving the
    run's own counters and DTM gating decisions.

    The leader snapshot is post-DTM, but the DTM mutates only gating
    state (plus counters on its own row), so restoring it and then
    overlaying this run's own gating tuple reconstructs exactly the
    state this run would have reached executing alone.  The run's
    trace cursor is repositioned to the leader's; unpickling per run
    keeps forked siblings from sharing mutable state.

    ``blob`` may be a copy-on-write snapshot captured before
    bulk-skipped stall cycles (see :func:`_leader_blob`); the only
    scalars that advance during such a stretch are patched from the
    live leader after the restore.
    """
    proc = run.proc
    own_row = store.row(run.index).copy()
    gating = proc.capture_gating()
    proc.restore_state(pickle.loads(blob))
    # restore_state wrote the leader's counter values through this
    # run's row views; put the run's own counters back.
    store.data[run.index] = own_row
    proc.now = leader.now
    proc.stats.cycles = leader.stats.cycles
    proc.stats.stall_cycles = leader.stats.stall_cycles
    proc.apply_gating(gating)
    proc.fetch.trace.seek(leader.fetch.trace.position)
