"""Lowered, compilable form of the macro-step inner loop.

:mod:`repro.pipeline.kernel` fused the per-cycle pipeline into
macro-steps, but each cycle still executes as interpreted Python over
heap objects (``IQEntry``/``ROBEntry``/``_InFlight`` instances, deques,
sets).  This module lowers that state **once per run** into a fixed set
of ``int64`` ndarrays plus an opcode-like schedule array over the
materialized trace, and re-expresses the whole chunk loop as a single
straight-line array program — :func:`_chunk_interp` — that one
``@njit`` compilation (or the same source, run as plain Python for the
always-available ``numpy`` backend) executes without touching a Python
object.

The lowering contract
---------------------

* **Chunk-constant gating.**  The macro-step contract (DESIGN.md §10)
  says the DTM mutates gating state — unit busy flags, regfile
  turnoffs, queue mode, stall/throttle windows — only inside the
  ``on_sample`` boundary hook.  The session therefore syncs scalars
  *out* to the objects before each boundary (:meth:`AccelSession.
  sync_out`) and gating state back *in* after it (:meth:`AccelSession.
  sync_in`); between boundaries the arrays are the only truth.
* **Sequence-indexed trace.**  The workload generator stamps
  ``op.seq`` with the op's position in the materialized trace, so any
  in-flight op — including checkpoint-restored clones — maps to a flat
  schedule row by ``op.seq - base``; lowering validates the mapping
  field-by-field and declines on any mismatch.
* **Exact side-effect order.**  Every stage mirrors the reference loop
  statement for statement (memory-hierarchy LRU touches, select
  counter updates, wakeup broadcasts, compaction charges), which is
  what keeps ``SimulationResult`` payloads ``dataclasses.asdict``-
  identical across the reference loop, the Python kernel, and both
  accelerator backends.

Decline rules
-------------

:func:`maybe_session` returns ``None`` (→ Python kernel) whenever a
run needs per-cycle Python visibility: an attached trace collector,
the runtime sanitizer (it wraps ``unit.start`` and hooks boundary
checks), a non-replayable trace, a stateful (GShare) predictor, an
already-exhausted front end, or any in-flight state the lowering
cannot prove it can represent.

Backend selection is by ``REPRO_ACCEL``: ``auto`` (numba when
importable, else the Python kernel), ``numba``, ``numpy`` (the same
interpreter run as pure Python — always available, used by the
identity-test matrix), or ``0`` to disable the accelerator entirely.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

import numpy as np

from .alu import _NEVER, _InFlight
from .isa import DEFAULT_LATENCY, NUM_INT_ARCH_REGS, OpClass
from .issue_queue import IQEntry, QueueMode
from .rob import ROBEntry
from .soa import (IQC_BROADCASTS, IQC_COMPACTION_MOVES_0,
                  IQC_COUNTER_EVALS_0, IQC_COUNTER_EVALS_1, IQC_CYCLES,
                  IQC_INSERTS, IQC_LONG_MOVES_0, IQC_MUX_SELECTS_0,
                  IQC_OCCUPANCY_SUM, IQC_PAYLOAD_OPS, IQC_SELECT_GRANTS)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .processor import Processor

_FP_OFFSET = NUM_INT_ARCH_REGS

# ---------------------------------------------------------------------------
# opcode-like encoding of the schedule array
# ---------------------------------------------------------------------------

OP_INT_ALU = 0
OP_INT_MUL = 1
OP_LOAD = 2
OP_STORE = 3
OP_BRANCH = 4
OP_FP_ADD = 5
OP_FP_MUL = 6
OP_NOP = 7

_OP_CODE = {
    OpClass.INT_ALU: OP_INT_ALU,
    OpClass.INT_MUL: OP_INT_MUL,
    OpClass.LOAD: OP_LOAD,
    OpClass.STORE: OP_STORE,
    OpClass.BRANCH: OP_BRANCH,
    OpClass.FP_ADD: OP_FP_ADD,
    OpClass.FP_MUL: OP_FP_MUL,
    OpClass.NOP: OP_NOP,
}
_OP_OF_CODE = {code: oc for oc, code in _OP_CODE.items()}

#: Interpreter exit statuses.
ST_OK = 0            # ran to the chunk end
ST_FINISHED = 1      # pipeline drained (reference drain break)
ST_NEED_TRACE = 2    # fetch is about to run past the lowered window
ST_ERR_OFF_COPY = 3  # read from a turned-off regfile copy (model error)

# ---------------------------------------------------------------------------
# scalar-vector slots (sv) — every mutable scalar the chunk loop touches
# ---------------------------------------------------------------------------

S_NOW = 0
S_CYCLES = 1
S_COMMITTED = 2
S_STALL = 3
S_THROTTLED = 4
S_ISSUED = 5
S_STALLED_UNTIL = 6
S_THROTTLED_UNTIL = 7
S_ROB_HEAD = 8
S_ROB_TAIL = 9
S_ROB_COUNT = 10
S_ROB_RETIRED = 11
S_LSQ_COUNT = 12
S_FETCHED = 13
S_EXHAUSTED = 14
S_BLOCKING = 15
S_RESUME = 16
S_FCOUNT = 17
S_FB_HEAD = 18
S_FB_N = 19
S_FPOS = 20
S_INOW = 21
S_ITOP = 22
S_IHOLES = 23
S_INPEND = 24
S_IMINIA = 25
S_IMODE = 26
S_FNOW = 27
S_FTOP = 28
S_FHOLES = 29
S_FNPEND = 30
S_FMINIA = 31
S_FMODE = 32
S_GCTR = 33
S_FREE_TOP = 34
S_IRR = 35
S_FRR = 36
S_ISC_CYC = 37
S_ISC_REQ = 38
S_FSC_CYC = 39
S_FSC_REQ = 40
S_MSC_CYC = 41
S_MSC_REQ = 42
S_FP_ACC = 43
S_BUSY_N = 44
S_PRED_BR = 45
S_PRED_MIS = 46
S_L1_ACC = 47
S_L1_MIS = 48
S_L2_ACC = 49
S_L2_MIS = 50
S_MEM_LD = 51
S_MEM_ST = 52
S_TLEN = 53
S_ERR_COPY = 54
S_ERR_ALU = 55
S_TFINAL = 56
N_S = 57

# ---------------------------------------------------------------------------
# constant-vector slots (C) — chunk-invariant machine geometry
# ---------------------------------------------------------------------------

C_COMMIT_W = 0
C_ISSUE_W = 1
C_N_INT = 2
C_N_FP = 3
C_N_UNITS = 4
C_MUL_J = 5
C_ICAP = 6
C_IMID = 7
C_FCAP = 8
C_FMID = 9
C_IWIN = 10
C_FWIN = 11
C_ICW = 12
C_FCW = 13
C_ROB_CAP = 14
C_LSQ_CAP = 15
C_PENALTY = 16
C_FWIDTH = 17
C_FB_CAP = 18
C_INT_RR = 19
C_FP_RR = 20
C_L1_SETS = 21
C_L1_ASSOC = 22
C_L1_OFF = 23
C_L1_LAT = 24
C_L2_SETS = 25
C_L2_ASSOC = 26
C_L2_OFF = 27
C_L2_LAT = 28
C_MEM_LAT = 29
C_N_COPIES = 30
N_C = 31

#: Trace window sizing: how far behind/ahead of the cursor the lowered
#: schedule arrays reach, and the growth step when fetch outruns them.
_BACK_WINDOW = 4096
_AHEAD = 8192
_GROW = 4096


def _chunk_interp(n_cycles, sv, C, lat,                      # repro: hot-loop
                  t_opc, t_dst, t_s1, t_s2, t_mem, t_mis, t_seq,
                  fb,
                  iq_op, iq_rob, iq_w1, iq_w2, iq_ia, iq_gs,
                  fq_op, fq_rob, fq_w1, fq_w2, fq_ia, fq_gs,
                  ic, fc,
                  r_op, r_dst, r_freed, r_done, r_issued,
                  amap, free_arr, ready,
                  u_op, u_rob, u_fin, u_n, u_nf, u_blocked, u_busy, ibs,
                  int_ops, fp_ops, mul_ops, int_bc, fp_bc, mul_bc,
                  ports, off_mask, rf_rd, rf_wr,
                  igpt, fgpt, mgpt,
                  l1_tags, l1_cnt, l2_tags, l2_cnt,
                  sc_op, sc_rob, sc_w1, sc_w2, sc_ia, sc_gs,
                  ready_buf, pair_t, pair_p):
    """Execute up to ``n_cycles`` cycles over the lowered arrays.

    One function, no helpers, no allocations: the same source compiles
    under ``numba.njit(cache=True)`` and runs unmodified as plain
    Python for the ``numpy`` backend.  All scalars load into locals on
    entry and store back through ``sv`` at the single exit; the return
    value is one of the ``ST_*`` statuses (error operands travel in
    ``sv[S_ERR_COPY]``/``sv[S_ERR_ALU]``).
    """
    # ---- geometry constants -----------------------------------------
    commit_width = int(C[C_COMMIT_W])
    issue_width = int(C[C_ISSUE_W])
    n_int = int(C[C_N_INT])
    n_fp = int(C[C_N_FP])
    n_units = int(C[C_N_UNITS])
    mul_j = int(C[C_MUL_J])
    icap = int(C[C_ICAP])
    imid = int(C[C_IMID])
    fcap = int(C[C_FCAP])
    fmid = int(C[C_FMID])
    iwin = int(C[C_IWIN])
    fwin = int(C[C_FWIN])
    icw = int(C[C_ICW])
    fcw = int(C[C_FCW])
    rob_cap = int(C[C_ROB_CAP])
    lsq_cap = int(C[C_LSQ_CAP])
    penalty = int(C[C_PENALTY])
    f_width = int(C[C_FWIDTH])
    fb_cap = int(C[C_FB_CAP])
    int_rr = int(C[C_INT_RR])
    fp_rr = int(C[C_FP_RR])
    l1_sets = int(C[C_L1_SETS])
    l1_assoc = int(C[C_L1_ASSOC])
    l1_off = int(C[C_L1_OFF])
    l1_lat = int(C[C_L1_LAT])
    l2_sets = int(C[C_L2_SETS])
    l2_assoc = int(C[C_L2_ASSOC])
    l2_off = int(C[C_L2_OFF])
    l2_lat = int(C[C_L2_LAT])
    mem_lat = int(C[C_MEM_LAT])
    n_copies = int(C[C_N_COPIES])

    # ---- mutable scalars --------------------------------------------
    now = int(sv[S_NOW])
    end = now + n_cycles
    st_cycles = int(sv[S_CYCLES])
    st_committed = int(sv[S_COMMITTED])
    st_stall = int(sv[S_STALL])
    st_throttled = int(sv[S_THROTTLED])
    st_issued = int(sv[S_ISSUED])
    stalled_until = int(sv[S_STALLED_UNTIL])
    throttled_until = int(sv[S_THROTTLED_UNTIL])
    rob_head = int(sv[S_ROB_HEAD])
    rob_tail = int(sv[S_ROB_TAIL])
    rob_count = int(sv[S_ROB_COUNT])
    rob_retired = int(sv[S_ROB_RETIRED])
    lsq_count = int(sv[S_LSQ_COUNT])
    f_fetched = int(sv[S_FETCHED])
    f_exhausted = int(sv[S_EXHAUSTED])
    f_blocking = int(sv[S_BLOCKING])
    f_resume = int(sv[S_RESUME])
    f_count = int(sv[S_FCOUNT])
    fb_head = int(sv[S_FB_HEAD])
    fb_n = int(sv[S_FB_N])
    fpos = int(sv[S_FPOS])
    i_qnow = int(sv[S_INOW])
    i_top = int(sv[S_ITOP])
    i_holes = int(sv[S_IHOLES])
    i_npend = int(sv[S_INPEND])
    i_minia = int(sv[S_IMINIA])
    i_mode = int(sv[S_IMODE])
    f_qnow = int(sv[S_FNOW])
    f_top = int(sv[S_FTOP])
    f_holes = int(sv[S_FHOLES])
    f_npend = int(sv[S_FNPEND])
    f_minia = int(sv[S_FMINIA])
    f_mode = int(sv[S_FMODE])
    gctr = int(sv[S_GCTR])
    free_top = int(sv[S_FREE_TOP])
    int_rr_off = int(sv[S_IRR])
    fp_rr_off = int(sv[S_FRR])
    isc_cyc = int(sv[S_ISC_CYC])
    isc_req = int(sv[S_ISC_REQ])
    fsc_cyc = int(sv[S_FSC_CYC])
    fsc_req = int(sv[S_FSC_REQ])
    msc_cyc = int(sv[S_MSC_CYC])
    msc_req = int(sv[S_MSC_REQ])
    fp_racc = int(sv[S_FP_ACC])
    busy_n = int(sv[S_BUSY_N])
    pred_br = int(sv[S_PRED_BR])
    pred_mis = int(sv[S_PRED_MIS])
    l1_acc = int(sv[S_L1_ACC])
    l1_mis = int(sv[S_L1_MIS])
    l2_acc = int(sv[S_L2_ACC])
    l2_mis = int(sv[S_L2_MIS])
    mem_ld = int(sv[S_MEM_LD])
    mem_st = int(sv[S_MEM_ST])
    t_len = int(sv[S_TLEN])
    t_final = int(sv[S_TFINAL])

    # ---- per-call accumulators (flushed at the single exit) ---------
    active_cycles = 0
    ic_ticks = 0
    ic_occ = 0
    ic_bcasts = 0
    ic_ins = 0
    ic_grants = 0
    fc_ticks = 0
    fc_occ = 0
    fc_bcasts = 0
    fc_ins = 0
    fc_grants = 0
    i_ce0 = 0
    i_ce1 = 0
    i_cm0 = 0
    i_cm1 = 0
    i_mx0 = 0
    i_mx1 = 0
    i_lm0 = 0
    i_lm1 = 0
    f_ce0 = 0
    f_ce1 = 0
    f_cm0 = 0
    f_cm1 = 0
    f_mx0 = 0
    f_mx1 = 0
    f_lm0 = 0
    f_lm1 = 0
    wr_events = 0
    status = ST_OK

    while now < end:
        nxt = now + 1
        if nxt < stalled_until:
            # Global stall: bulk-skip the stretch (reference semantics:
            # only cycle/stall counters move, drain condition is
            # re-checked once).
            if f_exhausted == 1 and rob_count == 0 and fb_n == 0:
                now = nxt
                st_cycles += 1
                st_stall += 1
                status = ST_FINISHED
                break
            last = stalled_until - 1
            if last > end:
                last = end
            n_stall = last - now
            now = last
            st_cycles += n_stall
            st_stall += n_stall
            continue
        if t_final == 0 and fpos + f_width > t_len:
            # Conservative: fetch consumes at most f_width rows this
            # cycle; pause at the cycle boundary so the session can
            # grow the lowered trace window.  No state has changed.
            status = ST_NEED_TRACE
            break
        now = nxt
        st_cycles += 1
        active_cycles += 1

        # ---- commit (fused ready_count + retire) --------------------
        if rob_count > 0:
            limit = rob_count if rob_count < commit_width else commit_width
            n_commit = 0
            pos = rob_head
            while n_commit < limit:
                if r_op[pos] < 0 or r_done[pos] == 0:
                    break
                opp = int(r_op[pos])
                oc = int(t_opc[opp])
                if oc == OP_STORE:
                    addr = int(t_mem[opp])
                    if addr >= 0:
                        # memory.store: write-allocate L1, then L2 on
                        # a miss (latency ignored for stores).
                        mem_st += 1
                        blk = addr >> l1_off
                        si = blk % l1_sets
                        tg = blk // l1_sets
                        l1_acc += 1
                        cnt = int(l1_cnt[si])
                        hw = -1
                        for w in range(cnt):
                            if l1_tags[si, w] == tg:
                                hw = w
                                break
                        if hw >= 0:
                            for w in range(hw, cnt - 1):
                                l1_tags[si, w] = l1_tags[si, w + 1]
                            l1_tags[si, cnt - 1] = tg
                        else:
                            l1_mis += 1
                            if cnt >= l1_assoc:
                                for w in range(cnt - 1):
                                    l1_tags[si, w] = l1_tags[si, w + 1]
                                l1_tags[si, cnt - 1] = tg
                            else:
                                l1_tags[si, cnt] = tg
                                l1_cnt[si] = cnt + 1
                            blk = addr >> l2_off
                            si = blk % l2_sets
                            tg = blk // l2_sets
                            l2_acc += 1
                            cnt = int(l2_cnt[si])
                            hw = -1
                            for w in range(cnt):
                                if l2_tags[si, w] == tg:
                                    hw = w
                                    break
                            if hw >= 0:
                                for w in range(hw, cnt - 1):
                                    l2_tags[si, w] = l2_tags[si, w + 1]
                                l2_tags[si, cnt - 1] = tg
                            else:
                                l2_mis += 1
                                if cnt >= l2_assoc:
                                    for w in range(cnt - 1):
                                        l2_tags[si, w] = l2_tags[si, w + 1]
                                    l2_tags[si, cnt - 1] = tg
                                else:
                                    l2_tags[si, cnt] = tg
                                    l2_cnt[si] = cnt + 1
                    lsq_count -= 1
                elif oc == OP_LOAD:
                    lsq_count -= 1
                ftag = int(r_freed[pos])
                if ftag >= 0:
                    free_arr[free_top] = ftag
                    free_top += 1
                    ready[ftag] = 0
                r_op[pos] = -1
                pos += 1
                if pos == rob_cap:
                    pos = 0
                n_commit += 1
            if n_commit > 0:
                rob_head = pos
                rob_count -= n_commit
                rob_retired += n_commit
                st_committed += n_commit

        # ---- writeback (in-place pipeline compaction + wakeup) ------
        for j in range(n_units):
            if now < int(u_nf[j]):
                continue
            nj = int(u_n[j])
            k_out = 0
            nfj = _NEVER
            for k in range(nj):
                fin = int(u_fin[j, k])
                if fin > now:
                    u_op[j, k_out] = u_op[j, k]
                    u_rob[j, k_out] = u_rob[j, k]
                    u_fin[j, k_out] = fin
                    if fin < nfj:
                        nfj = fin
                    k_out += 1
                    continue
                opp = int(u_op[j, k])
                ri = int(u_rob[j, k])
                r_done[ri] = 1
                oc = int(t_opc[opp])
                if oc == OP_BRANCH and f_blocking == int(t_seq[opp]):
                    f_blocking = -1
                    f_resume = now + penalty
                tag = int(r_dst[ri])
                if tag >= 0:
                    ready[tag] = 1
                    # Broadcast: clear the tag from every waiting slot
                    # (scan form of the reference's waiter buckets — a
                    # slot waits on a tag iff it registered for it).
                    ic_bcasts += 1
                    for p in range(icap):
                        if iq_op[p] >= 0:
                            if iq_w1[p] == tag:
                                iq_w1[p] = -1
                            if iq_w2[p] == tag:
                                iq_w2[p] = -1
                    fc_bcasts += 1
                    for p in range(fcap):
                        if fq_op[p] >= 0:
                            if fq_w1[p] == tag:
                                fq_w1[p] = -1
                            if fq_w2[p] == tag:
                                fq_w2[p] = -1
                    if oc == OP_FP_ADD or oc == OP_FP_MUL:
                        fp_racc += 1
                    else:
                        wr_events += 1
            u_n[j] = k_out
            u_nf[j] = nfj

        if throttled_until > now and (now & 1) == 1:
            st_throttled += 1
        else:
            # ---- int issue (fused select + grant + unit start) ------
            budget = issue_width
            if i_top != i_holes:
                n_ready = 0
                for l in range(i_top):
                    p = l if i_mode == 0 else (l + imid) % icap
                    if (iq_op[p] >= 0 and iq_ia[p] < 0
                            and iq_w1[p] < 0 and iq_w2[p] < 0):
                        ready_buf[n_ready] = p
                        n_ready += 1
                isc_cyc += 1
                isc_req += n_ready
                cap = budget if budget < n_ready else n_ready
                taken = 0
                if cap > 0:
                    for k in range(n_int):
                        if taken >= cap:
                            break
                        t = (k + int_rr_off) % n_int if int_rr == 1 else k
                        if ibs[t] == 1 or now < int(u_blocked[t]):
                            continue
                        pair_t[taken] = t
                        pair_p[taken] = ready_buf[taken]
                        igpt[t] += 1
                        taken += 1
                    if int_rr == 1 and taken > 1:
                        # Rotation assigns grants; processing runs in
                        # ascending ALU order (insertion sort).
                        for a in range(1, taken):
                            vt = int(pair_t[a])
                            vp = int(pair_p[a])
                            b = a - 1
                            while b >= 0 and int(pair_t[b]) > vt:
                                pair_t[b + 1] = pair_t[b]
                                pair_p[b + 1] = pair_p[b]
                                b -= 1
                            pair_t[b + 1] = vt
                            pair_p[b + 1] = vp
                    for g in range(taken):
                        t = int(pair_t[g])
                        p = int(pair_p[g])
                        iq_ia[p] = i_qnow
                        iq_gs[p] = gctr
                        gctr += 1
                        if i_npend == 0:
                            i_minia = i_qnow
                        i_npend += 1
                        ic_grants += 1
                        opp = int(iq_op[p])
                        oc = int(t_opc[opp])
                        extra = 0
                        if oc == OP_LOAD:
                            addr = int(t_mem[opp])
                            if addr >= 0:
                                mem_ld += 1
                                blk = addr >> l1_off
                                si = blk % l1_sets
                                tg = blk // l1_sets
                                l1_acc += 1
                                cnt = int(l1_cnt[si])
                                hw = -1
                                for w in range(cnt):
                                    if l1_tags[si, w] == tg:
                                        hw = w
                                        break
                                if hw >= 0:
                                    for w in range(hw, cnt - 1):
                                        l1_tags[si, w] = l1_tags[si, w + 1]
                                    l1_tags[si, cnt - 1] = tg
                                    extra = l1_lat
                                else:
                                    l1_mis += 1
                                    if cnt >= l1_assoc:
                                        for w in range(cnt - 1):
                                            l1_tags[si, w] = \
                                                l1_tags[si, w + 1]
                                        l1_tags[si, cnt - 1] = tg
                                    else:
                                        l1_tags[si, cnt] = tg
                                        l1_cnt[si] = cnt + 1
                                    blk = addr >> l2_off
                                    si = blk % l2_sets
                                    tg = blk // l2_sets
                                    l2_acc += 1
                                    cnt = int(l2_cnt[si])
                                    hw = -1
                                    for w in range(cnt):
                                        if l2_tags[si, w] == tg:
                                            hw = w
                                            break
                                    if hw >= 0:
                                        for w in range(hw, cnt - 1):
                                            l2_tags[si, w] = \
                                                l2_tags[si, w + 1]
                                        l2_tags[si, cnt - 1] = tg
                                        extra = l2_lat
                                    else:
                                        l2_mis += 1
                                        if cnt >= l2_assoc:
                                            for w in range(cnt - 1):
                                                l2_tags[si, w] = \
                                                    l2_tags[si, w + 1]
                                            l2_tags[si, cnt - 1] = tg
                                        else:
                                            l2_tags[si, cnt] = tg
                                            l2_cnt[si] = cnt + 1
                                        extra = mem_lat
                        n_operands = 0
                        if t_s1[opp] >= 0:
                            n_operands += 1
                        if t_s2[opp] >= 0:
                            n_operands += 1
                        err = 0
                        for port in range(n_operands):
                            copy = int(ports[t, port])
                            if off_mask[copy] == 1:
                                sv[S_ERR_COPY] = copy
                                sv[S_ERR_ALU] = t
                                status = ST_ERR_OFF_COPY
                                err = 1
                                break
                            rf_rd[copy] += 1
                        if err == 1:
                            break
                        base = int(lat[oc])
                        if oc == OP_INT_MUL:
                            u_blocked[t] = now + base
                        fin = now + base + extra
                        nt = int(u_n[t])
                        u_op[t, nt] = opp
                        u_rob[t, nt] = iq_rob[p]
                        u_fin[t, nt] = fin
                        u_n[t] = nt + 1
                        if fin < int(u_nf[t]):
                            u_nf[t] = fin
                        int_ops[t] += 1
                        r_issued[int(iq_rob[p])] = 1
                        st_issued += 1
                    if status == ST_ERR_OFF_COPY:
                        # Mirror the reference raise: budget, rotation
                        # advance, and the rest of the cycle are
                        # skipped; partial grant bookkeeping stands.
                        break
                    budget -= taken
                if int_rr == 1:
                    int_rr_off = (int_rr_off + 1) % n_int

            # ---- fp issue (adders, then the single multiplier) ------
            if budget > 0 and f_top != f_holes:
                n_ready = 0
                for l in range(f_top):
                    p = l if f_mode == 0 else (l + fmid) % fcap
                    if (fq_op[p] >= 0 and fq_ia[p] < 0
                            and fq_w1[p] < 0 and fq_w2[p] < 0
                            and t_opc[int(fq_op[p])] == OP_FP_ADD):
                        ready_buf[n_ready] = p
                        n_ready += 1
                fsc_cyc += 1
                fsc_req += n_ready
                cap = budget if budget < n_ready else n_ready
                taken = 0
                if cap > 0:
                    for k in range(n_fp):
                        if taken >= cap:
                            break
                        t = (k + fp_rr_off) % n_fp if fp_rr == 1 else k
                        if u_busy[n_int + t] == 1 \
                                or now < int(u_blocked[n_int + t]):
                            continue
                        pair_t[taken] = t
                        pair_p[taken] = ready_buf[taken]
                        fgpt[t] += 1
                        taken += 1
                    if fp_rr == 1 and taken > 1:
                        for a in range(1, taken):
                            vt = int(pair_t[a])
                            vp = int(pair_p[a])
                            b = a - 1
                            while b >= 0 and int(pair_t[b]) > vt:
                                pair_t[b + 1] = pair_t[b]
                                pair_p[b + 1] = pair_p[b]
                                b -= 1
                            pair_t[b + 1] = vt
                            pair_p[b + 1] = vp
                    for g in range(taken):
                        t = int(pair_t[g])
                        p = int(pair_p[g])
                        fq_ia[p] = f_qnow
                        fq_gs[p] = gctr
                        gctr += 1
                        if f_npend == 0:
                            f_minia = f_qnow
                        f_npend += 1
                        fc_grants += 1
                        opp = int(fq_op[p])
                        n_operands = 0
                        if t_s1[opp] >= 0:
                            n_operands += 1
                        if t_s2[opp] >= 0:
                            n_operands += 1
                        fp_racc += n_operands
                        j = n_int + t
                        fin = now + int(lat[OP_FP_ADD])
                        nt = int(u_n[j])
                        u_op[j, nt] = opp
                        u_rob[j, nt] = fq_rob[p]
                        u_fin[j, nt] = fin
                        u_n[j] = nt + 1
                        if fin < int(u_nf[j]):
                            u_nf[j] = fin
                        fp_ops[t] += 1
                        r_issued[int(fq_rob[p])] = 1
                        st_issued += 1
                if fp_rr == 1:
                    fp_rr_off = (fp_rr_off + 1) % n_fp
                if taken < budget:
                    # Multiplier pass re-scans: adds granted above are
                    # no longer ready.
                    n_ready = 0
                    for l in range(f_top):
                        p = l if f_mode == 0 else (l + fmid) % fcap
                        if (fq_op[p] >= 0 and fq_ia[p] < 0
                                and fq_w1[p] < 0 and fq_w2[p] < 0
                                and t_opc[int(fq_op[p])] == OP_FP_MUL):
                            ready_buf[n_ready] = p
                            n_ready += 1
                    msc_cyc += 1
                    msc_req += n_ready
                    if n_ready > 0 and not (
                            u_busy[mul_j] == 1
                            or now < int(u_blocked[mul_j])):
                        p = int(ready_buf[0])
                        mgpt[0] += 1
                        fq_ia[p] = f_qnow
                        fq_gs[p] = gctr
                        gctr += 1
                        if f_npend == 0:
                            f_minia = f_qnow
                        f_npend += 1
                        fc_grants += 1
                        opp = int(fq_op[p])
                        n_operands = 0
                        if t_s1[opp] >= 0:
                            n_operands += 1
                        if t_s2[opp] >= 0:
                            n_operands += 1
                        fp_racc += n_operands
                        fin = now + int(lat[OP_FP_MUL])
                        nt = int(u_n[mul_j])
                        u_op[mul_j, nt] = opp
                        u_rob[mul_j, nt] = fq_rob[p]
                        u_fin[mul_j, nt] = fin
                        u_n[mul_j] = nt + 1
                        if fin < int(u_nf[mul_j]):
                            u_nf[mul_j] = fin
                        mul_ops[0] += 1
                        r_issued[int(fq_rob[p])] = 1
                        st_issued += 1

            # ---- int queue tick (compaction) ------------------------
            i_qnow += 1
            ic_ticks += 1
            ic_occ += i_top - i_holes
            if i_holes > 0 or i_npend > 0:
                if i_holes == 0 and i_npend > 0 \
                        and i_qnow - i_minia < iwin:
                    # Dense queue, nothing expires: gating charges only.
                    marked = 0
                    for l in range(i_top):
                        p = l if i_mode == 0 else (l + imid) % icap
                        if marked > 0:
                            if p < imid:
                                i_ce0 += 1
                            else:
                                i_ce1 += 1
                        if iq_ia[p] >= 0:
                            marked += 1
                else:
                    boundary = icap - imid
                    for p in range(icap):
                        sc_op[p] = -1
                    reclaim = 0
                    marked = 0
                    newtop = 0
                    occ = 0
                    removed = 0
                    for l in range(i_top):
                        p = l if i_mode == 0 else (l + imid) % icap
                        o = int(iq_op[p])
                        if o < 0:
                            reclaim += 1
                            marked += 1
                            continue
                        ia = int(iq_ia[p])
                        if ia >= 0 and i_qnow - ia >= iwin:
                            reclaim += 1
                            marked += 1
                            removed = 1
                            continue
                        src_low = 1 if p < imid else 0
                        if marked > 0:
                            if src_low == 1:
                                i_ce0 += 1
                            else:
                                i_ce1 += 1
                        shift = reclaim
                        if shift > icw:
                            shift = icw
                        dst_l = l - shift
                        dst_p = dst_l if i_mode == 0 \
                            else (dst_l + imid) % icap
                        sc_op[dst_p] = o
                        sc_rob[dst_p] = iq_rob[p]
                        sc_w1[dst_p] = iq_w1[p]
                        sc_w2[dst_p] = iq_w2[p]
                        sc_ia[dst_p] = ia
                        sc_gs[dst_p] = iq_gs[p]
                        newtop = dst_l + 1
                        occ += 1
                        if ia >= 0:
                            marked += 1
                        if shift > 0:
                            if src_low == 1:
                                i_cm0 += 1
                            else:
                                i_cm1 += 1
                            if dst_p < imid:
                                i_mx0 += 1
                            else:
                                i_mx1 += 1
                            if i_mode == 1 and l >= boundary \
                                    and boundary > dst_l:
                                if src_low == 1:
                                    i_lm0 += 1
                                else:
                                    i_lm1 += 1
                    for p in range(icap):
                        iq_op[p] = sc_op[p]
                        iq_rob[p] = sc_rob[p]
                        iq_w1[p] = sc_w1[p]
                        iq_w2[p] = sc_w2[p]
                        iq_ia[p] = sc_ia[p]
                        iq_gs[p] = sc_gs[p]
                    i_top = newtop
                    i_holes = newtop - occ
                    if removed == 1:
                        i_npend = 0
                        i_minia = _NEVER
                        for p in range(icap):
                            if iq_op[p] >= 0 and iq_ia[p] >= 0:
                                i_npend += 1
                                if iq_ia[p] < i_minia:
                                    i_minia = int(iq_ia[p])

            # ---- fp queue tick (compaction) -------------------------
            f_qnow += 1
            fc_ticks += 1
            fc_occ += f_top - f_holes
            if f_holes > 0 or f_npend > 0:
                if f_holes == 0 and f_npend > 0 \
                        and f_qnow - f_minia < fwin:
                    marked = 0
                    for l in range(f_top):
                        p = l if f_mode == 0 else (l + fmid) % fcap
                        if marked > 0:
                            if p < fmid:
                                f_ce0 += 1
                            else:
                                f_ce1 += 1
                        if fq_ia[p] >= 0:
                            marked += 1
                else:
                    boundary = fcap - fmid
                    for p in range(fcap):
                        sc_op[p] = -1
                    reclaim = 0
                    marked = 0
                    newtop = 0
                    occ = 0
                    removed = 0
                    for l in range(f_top):
                        p = l if f_mode == 0 else (l + fmid) % fcap
                        o = int(fq_op[p])
                        if o < 0:
                            reclaim += 1
                            marked += 1
                            continue
                        ia = int(fq_ia[p])
                        if ia >= 0 and f_qnow - ia >= fwin:
                            reclaim += 1
                            marked += 1
                            removed = 1
                            continue
                        src_low = 1 if p < fmid else 0
                        if marked > 0:
                            if src_low == 1:
                                f_ce0 += 1
                            else:
                                f_ce1 += 1
                        shift = reclaim
                        if shift > fcw:
                            shift = fcw
                        dst_l = l - shift
                        dst_p = dst_l if f_mode == 0 \
                            else (dst_l + fmid) % fcap
                        sc_op[dst_p] = o
                        sc_rob[dst_p] = fq_rob[p]
                        sc_w1[dst_p] = fq_w1[p]
                        sc_w2[dst_p] = fq_w2[p]
                        sc_ia[dst_p] = ia
                        sc_gs[dst_p] = fq_gs[p]
                        newtop = dst_l + 1
                        occ += 1
                        if ia >= 0:
                            marked += 1
                        if shift > 0:
                            if src_low == 1:
                                f_cm0 += 1
                            else:
                                f_cm1 += 1
                            if dst_p < fmid:
                                f_mx0 += 1
                            else:
                                f_mx1 += 1
                            if f_mode == 1 and l >= boundary \
                                    and boundary > dst_l:
                                if src_low == 1:
                                    f_lm0 += 1
                                else:
                                    f_lm1 += 1
                    for p in range(fcap):
                        fq_op[p] = sc_op[p]
                        fq_rob[p] = sc_rob[p]
                        fq_w1[p] = sc_w1[p]
                        fq_w2[p] = sc_w2[p]
                        fq_ia[p] = sc_ia[p]
                        fq_gs[p] = sc_gs[p]
                    f_top = newtop
                    f_holes = newtop - occ
                    if removed == 1:
                        f_npend = 0
                        f_minia = _NEVER
                        for p in range(fcap):
                            if fq_op[p] >= 0 and fq_ia[p] >= 0:
                                f_npend += 1
                                if fq_ia[p] < f_minia:
                                    f_minia = int(fq_ia[p])

            # ---- dispatch (peek-based rename + insert) --------------
            if fb_n > 0:
                n_disp = fb_n if fb_n < issue_width else issue_width
                for _ in range(n_disp):
                    opp = int(fb[fb_head])
                    oc = int(t_opc[opp])
                    is_fp = 1 if (oc == OP_FP_ADD or oc == OP_FP_MUL) \
                        else 0
                    needs_lsq = 1 if (oc == OP_LOAD or oc == OP_STORE) \
                        else 0
                    dst = int(t_dst[opp])
                    if is_fp == 1:
                        q_top_cur = f_top
                        q_cap_cur = fcap
                    else:
                        q_top_cur = i_top
                        q_cap_cur = icap
                    if (rob_count == rob_cap or q_top_cur >= q_cap_cur
                            or (needs_lsq == 1 and lsq_count == lsq_cap)
                            or (dst >= 0 and free_top == 0)):
                        break  # structural stall: op stays buffered
                    fb_head += 1
                    if fb_head == fb_cap:
                        fb_head = 0
                    fb_n -= 1
                    offset = _FP_OFFSET if is_fp == 1 else 0
                    s1 = int(t_s1[opp])
                    s2 = int(t_s2[opp])
                    w1 = -1
                    if s1 >= 0:
                        tg = int(amap[offset + s1])
                        if ready[tg] == 0:
                            w1 = tg
                    w2 = -1
                    if s2 >= 0:
                        tg = int(amap[offset + s2])
                        if ready[tg] == 0 and tg != w1:
                            w2 = tg
                    if dst >= 0:
                        free_top -= 1
                        dst_tag = int(free_arr[free_top])
                        freed = int(amap[offset + dst])
                        amap[offset + dst] = dst_tag
                        ready[dst_tag] = 0
                    else:
                        dst_tag = -1
                        freed = -1
                    r_op[rob_tail] = opp
                    r_dst[rob_tail] = dst_tag
                    r_freed[rob_tail] = freed
                    r_done[rob_tail] = 0
                    r_issued[rob_tail] = 0
                    ri = rob_tail
                    rob_tail += 1
                    if rob_tail == rob_cap:
                        rob_tail = 0
                    rob_count += 1
                    if needs_lsq == 1:
                        lsq_count += 1
                    if is_fp == 1:
                        p = f_top if f_mode == 0 \
                            else (f_top + fmid) % fcap
                        fq_op[p] = opp
                        fq_rob[p] = ri
                        fq_w1[p] = w1
                        fq_w2[p] = w2
                        fq_ia[p] = -1
                        fq_gs[p] = -1
                        f_top += 1
                        fc_ins += 1
                    else:
                        p = i_top if i_mode == 0 \
                            else (i_top + imid) % icap
                        iq_op[p] = opp
                        iq_rob[p] = ri
                        iq_w1[p] = w1
                        iq_w2[p] = w2
                        iq_ia[p] = -1
                        iq_gs[p] = -1
                        i_top += 1
                        ic_ins += 1

            # ---- fetch ----------------------------------------------
            f_count = 0
            if f_resume >= 0 and now >= f_resume:
                f_resume = -1
            if f_resume < 0 and f_blocking < 0:
                while fb_n < fb_cap and f_count < f_width:
                    if fpos >= t_len:
                        # Only reachable on a final window: the trace
                        # source is exhausted (reference StopIteration).
                        f_exhausted = 1
                        break
                    opp = fpos
                    fpos += 1
                    tail = fb_head + fb_n
                    if tail >= fb_cap:
                        tail -= fb_cap
                    fb[tail] = opp
                    fb_n += 1
                    f_fetched += 1
                    f_count += 1
                    if t_opc[opp] == OP_BRANCH:
                        pred_br += 1
                        mis = int(t_mis[opp])
                        pred_mis += mis
                        if mis == 1:
                            f_blocking = int(t_seq[opp])
                            break

        if f_exhausted == 1 and rob_count == 0 and fb_n == 0:
            status = ST_FINISHED
            break

    # ---- single exit: store scalars, flush accumulators -------------
    sv[S_NOW] = now
    sv[S_CYCLES] = st_cycles
    sv[S_COMMITTED] = st_committed
    sv[S_STALL] = st_stall
    sv[S_THROTTLED] = st_throttled
    sv[S_ISSUED] = st_issued
    sv[S_ROB_HEAD] = rob_head
    sv[S_ROB_TAIL] = rob_tail
    sv[S_ROB_COUNT] = rob_count
    sv[S_ROB_RETIRED] = rob_retired
    sv[S_LSQ_COUNT] = lsq_count
    sv[S_FETCHED] = f_fetched
    sv[S_EXHAUSTED] = f_exhausted
    sv[S_BLOCKING] = f_blocking
    sv[S_RESUME] = f_resume
    sv[S_FCOUNT] = f_count
    sv[S_FB_HEAD] = fb_head
    sv[S_FB_N] = fb_n
    sv[S_FPOS] = fpos
    sv[S_INOW] = i_qnow
    sv[S_ITOP] = i_top
    sv[S_IHOLES] = i_holes
    sv[S_INPEND] = i_npend
    sv[S_IMINIA] = i_minia
    sv[S_FNOW] = f_qnow
    sv[S_FTOP] = f_top
    sv[S_FHOLES] = f_holes
    sv[S_FNPEND] = f_npend
    sv[S_FMINIA] = f_minia
    sv[S_GCTR] = gctr
    sv[S_FREE_TOP] = free_top
    sv[S_IRR] = int_rr_off
    sv[S_FRR] = fp_rr_off
    sv[S_ISC_CYC] = isc_cyc
    sv[S_ISC_REQ] = isc_req
    sv[S_FSC_CYC] = fsc_cyc
    sv[S_FSC_REQ] = fsc_req
    sv[S_MSC_CYC] = msc_cyc
    sv[S_MSC_REQ] = msc_req
    sv[S_FP_ACC] = fp_racc
    sv[S_PRED_BR] = pred_br
    sv[S_PRED_MIS] = pred_mis
    sv[S_L1_ACC] = l1_acc
    sv[S_L1_MIS] = l1_mis
    sv[S_L2_ACC] = l2_acc
    sv[S_L2_MIS] = l2_mis
    sv[S_MEM_LD] = mem_ld
    sv[S_MEM_ST] = mem_st
    ic[IQC_CYCLES] += ic_ticks
    ic[IQC_OCCUPANCY_SUM] += ic_occ
    ic[IQC_BROADCASTS] += ic_bcasts
    ic[IQC_INSERTS] += ic_ins
    ic[IQC_SELECT_GRANTS] += ic_grants
    ic[IQC_PAYLOAD_OPS] += ic_grants
    ic[IQC_COUNTER_EVALS_0] += i_ce0
    ic[IQC_COUNTER_EVALS_1] += i_ce1
    ic[IQC_COMPACTION_MOVES_0] += i_cm0
    ic[IQC_COMPACTION_MOVES_0 + 1] += i_cm1
    ic[IQC_MUX_SELECTS_0] += i_mx0
    ic[IQC_MUX_SELECTS_0 + 1] += i_mx1
    ic[IQC_LONG_MOVES_0] += i_lm0
    ic[IQC_LONG_MOVES_0 + 1] += i_lm1
    fc[IQC_CYCLES] += fc_ticks
    fc[IQC_OCCUPANCY_SUM] += fc_occ
    fc[IQC_BROADCASTS] += fc_bcasts
    fc[IQC_INSERTS] += fc_ins
    fc[IQC_SELECT_GRANTS] += fc_grants
    fc[IQC_PAYLOAD_OPS] += fc_grants
    fc[IQC_COUNTER_EVALS_0] += f_ce0
    fc[IQC_COUNTER_EVALS_1] += f_ce1
    fc[IQC_COMPACTION_MOVES_0] += f_cm0
    fc[IQC_COMPACTION_MOVES_0 + 1] += f_cm1
    fc[IQC_MUX_SELECTS_0] += f_mx0
    fc[IQC_MUX_SELECTS_0 + 1] += f_mx1
    fc[IQC_LONG_MOVES_0] += f_lm0
    fc[IQC_LONG_MOVES_0 + 1] += f_lm1
    if wr_events > 0:
        for cpy in range(n_copies):
            rf_wr[cpy] += wr_events
    if busy_n > 0 and active_cycles > 0:
        for j in range(n_units):
            if u_busy[j] == 1:
                if j < n_int:
                    int_bc[j] += active_cycles
                elif j < n_int + n_fp:
                    fp_bc[j - n_int] += active_cycles
                else:
                    mul_bc[0] += active_cycles
    return status


# ---------------------------------------------------------------------------
# lowering: objects -> arrays, and back
# ---------------------------------------------------------------------------


class _Declined(Exception):
    """The run cannot be lowered; fall back to the Python kernel."""


class AccelSession:
    """One lowered run: arrays are the truth between sample boundaries.

    Created by :func:`maybe_session` at run (or batch-leader) start.
    :meth:`run_chunk` executes boundary-aligned chunks through the
    backend; :meth:`sync_out`/:meth:`sync_in` bracket each ``on_sample``
    boundary; :meth:`materialize` rebuilds the full object state (ROB
    entries, queue slots, in-flight lists, fetch buffer, cache sets,
    rename table) and is idempotent — it is called before any snapshot
    pickle and once at run end.
    """

    def __init__(self, proc: "Processor", fn: Callable[..., int],
                 backend: str) -> None:
        self.proc = proc
        self._fn = fn
        self.backend = backend
        self._lower()
        global _COMPILE_S
        if backend == "numba" and _COMPILE_S is None:
            # First njit call compiles (or loads the on-disk cache).
            # A zero-cycle call is a proven no-op: the cycle loop never
            # runs and the exit flush adds zeros.  Timed here so bench
            # can report compile time separately from cycles_per_s.
            t0 = perf_counter()
            self._fn(0, *self._args)
            _COMPILE_S = perf_counter() - t0

    @property
    def now(self) -> int:
        return int(self.sv[S_NOW])

    # -- lowering -----------------------------------------------------

    def _op_row(self, op: Any) -> int:
        """Flat schedule row for an in-flight op, validated field by
        field (checkpoint restores hold value-identical clones, so the
        mapping is by ``seq``, never by object identity)."""
        rel = op.seq - self._b0
        if rel < 0 or rel >= self._tlen:
            raise _Declined("in-flight op outside the lowered window")
        ref = self._ops[rel]
        if (op.opclass is not ref.opclass or op.dst != ref.dst
                or op.src1 != ref.src1 or op.src2 != ref.src2
                or op.mem_addr != ref.mem_addr or op.taken != ref.taken
                or op.mispredicted != ref.mispredicted):
            raise _Declined("in-flight op does not match its trace row")
        return rel

    def _load_trace(self, hi: int) -> None:
        """(Re)build the flat schedule arrays for rows ``[b0, hi)``."""
        buf = self._trace.buffer
        ops = buf.ops[self._b0:hi]
        n = len(ops)
        t_opc = np.empty(n, np.int64)
        t_dst = np.empty(n, np.int64)
        t_s1 = np.empty(n, np.int64)
        t_s2 = np.empty(n, np.int64)
        t_mem = np.empty(n, np.int64)
        t_mis = np.empty(n, np.int64)
        t_seq = np.empty(n, np.int64)
        code_of = _OP_CODE
        b0 = self._b0
        # Validation doubles as a bounds proof for the compiled body:
        # every register/memory index the interpreter will read is
        # checked here, because out-of-bounds indexing under njit is
        # undefined behaviour rather than an IndexError.
        for i, op in enumerate(ops):            # repro: noqa[REP007] one-time lowering staging, not per-cycle work
            if op.seq != b0 + i:
                raise _Declined("trace row sequence mismatch")
            t_opc[i] = code_of[op.opclass]
            for val, arr in ((op.dst, t_dst), (op.src1, t_s1),
                             (op.src2, t_s2)):
                if val is None:
                    arr[i] = -1
                elif 0 <= val < NUM_INT_ARCH_REGS:
                    arr[i] = val
                else:
                    raise _Declined("register index out of range")
            m = op.mem_addr
            if m is None:
                t_mem[i] = -1
            elif m >= 0:
                t_mem[i] = m
            else:
                raise _Declined("negative memory address")
            t_mis[i] = 1 if op.mispredicted else 0
            t_seq[i] = op.seq
        self._ops = ops
        self._tlen = n
        self._t = (t_opc, t_dst, t_s1, t_s2, t_mem, t_mis, t_seq)

    def _lower_queue(self, q: Any, gs_base: int) -> List[np.ndarray]:
        cap = q.n_entries
        arrs = [np.full(cap, -1, dtype=np.int64) for _ in range(6)]
        q_op, q_rob, q_w1, q_w2, q_ia, q_gs = arrs
        pending = q._pending_removal
        pend_rank = {id(e): rank for rank, e in enumerate(pending)}
        seen_pending = 0
        for p, entry in enumerate(q.slots):
            if entry is None:
                continue
            q_op[p] = self._op_row(entry.op)
            q_rob[p] = entry.rob_index
            tags = sorted(entry.waiting_tags)
            if len(tags) > 2:
                raise _Declined("queue entry waits on more than 2 tags")
            if len(tags) >= 1:
                q_w1[p] = tags[0]
            if len(tags) == 2:
                q_w2[p] = tags[1]
            if entry.issued_at is not None:
                rank = pend_rank.get(id(entry))
                if rank is None:
                    raise _Declined("issued entry not in pending list")
                q_ia[p] = entry.issued_at
                q_gs[p] = gs_base + rank
                seen_pending += 1
        if seen_pending != len(pending):
            raise _Declined("pending list inconsistent with slots")
        return arrs

    @staticmethod
    def _lower_cache(cache: Any) -> Tuple[np.ndarray, np.ndarray]:
        n_sets = cache._n_sets
        assoc = cache._assoc
        tags = np.full((n_sets, assoc), -1, dtype=np.int64)
        cnt = np.zeros(n_sets, dtype=np.int64)
        for s, ways in enumerate(cache._sets):
            k = len(ways)
            if k > assoc:
                raise _Declined("cache set overflows associativity")
            cnt[s] = k
            for w in range(k):
                tags[s, w] = ways[w]
        return tags, cnt

    def _lower(self) -> None:
        from ..analysis.sanitize import sanitize_enabled
        from ..workloads.trace import ReplayTrace
        from .branch import TracePredictor

        proc = self.proc
        if proc.collector is not None:
            raise _Declined("trace collector attached")
        if sanitize_enabled():
            raise _Declined("runtime sanitizer enabled")
        units = proc._all_units
        for u in units:
            if "start" in u.__dict__:
                raise _Declined("unit.start is hooked")
        fetch = proc.fetch
        if type(fetch.predictor) is not TracePredictor:
            raise _Declined("stateful branch predictor")
        trace = fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise _Declined("trace is not replayable")
        if fetch.exhausted:
            raise _Declined("front end already exhausted")
        int_alus = proc.int_alus
        fp_adders = proc.fp_adders
        n_int = len(int_alus)
        n_fp = len(fp_adders)
        n_units = len(units)
        if n_int == 0 or n_fp == 0 or n_units != n_int + n_fp + 1:
            raise _Declined("degenerate unit configuration")
        mapping = proc.mapping
        ports = np.zeros((n_int, 2), dtype=np.int64)
        for i in range(n_int):
            copies = tuple(mapping.copies_for(i))
            if len(copies) != 2:
                raise _Declined("non-dual-ported ALU mapping")
            ports[i, 0] = copies[0]
            ports[i, 1] = copies[1]

        # -- trace window ---------------------------------------------
        self._trace = trace
        pos = trace.position
        b0 = pos - _BACK_WINDOW
        if b0 < 0:
            b0 = 0
        self._b0 = b0
        self._ops: List[Any] = []
        self._tlen = 0
        want = pos + _AHEAD
        buf = trace.buffer
        final = 0
        try:
            buf.get(want - 1)
        except (StopIteration, IndexError):
            pass
        n_avail = len(buf.ops)
        if n_avail < want:
            final = 1
        if n_avail <= pos:
            raise _Declined("trace window is empty")
        self._load_trace(n_avail if n_avail < want else want)

        sv = np.zeros(N_S, dtype=np.int64)
        C = np.zeros(N_C, dtype=np.int64)
        self.sv = sv
        self.C = C

        # -- fetch ----------------------------------------------------
        fb_cap = fetch.buffer_capacity
        fb = np.zeros(fb_cap, dtype=np.int64)
        if len(fetch.buffer) > fb_cap:
            raise _Declined("fetch buffer over capacity")
        for k, op in enumerate(fetch.buffer):
            fb[k] = self._op_row(op)
        self._fb = fb
        sv[S_FB_HEAD] = 0
        sv[S_FB_N] = len(fetch.buffer)
        sv[S_FPOS] = pos - b0
        sv[S_TLEN] = self._tlen
        sv[S_TFINAL] = final
        sv[S_FETCHED] = fetch.fetched
        sv[S_EXHAUSTED] = 0
        blocking = fetch._blocking_branch
        sv[S_BLOCKING] = -1 if blocking is None else blocking
        resume = fetch._resume_at
        sv[S_RESUME] = -1 if resume is None else resume
        sv[S_FCOUNT] = fetch._count_this_cycle
        ps = fetch.predictor._stats
        sv[S_PRED_BR] = ps.branches
        sv[S_PRED_MIS] = ps.mispredicts

        # -- rob / lsq ------------------------------------------------
        rob = proc.rob
        rob_cap = rob.capacity
        r_op = np.full(rob_cap, -1, dtype=np.int64)
        r_dst = np.full(rob_cap, -1, dtype=np.int64)
        r_freed = np.full(rob_cap, -1, dtype=np.int64)
        r_done = np.zeros(rob_cap, dtype=np.int64)
        r_issued = np.zeros(rob_cap, dtype=np.int64)
        for p, entry in enumerate(rob._entries):
            if entry is None:
                continue
            r_op[p] = self._op_row(entry.op)
            if entry.dst_tag is not None:
                r_dst[p] = entry.dst_tag
            if entry.freed_tag is not None:
                r_freed[p] = entry.freed_tag
            r_done[p] = 1 if entry.done else 0
            r_issued[p] = 1 if entry.issued else 0
        self._r_op = r_op
        self._r_dst = r_dst
        self._r_freed = r_freed
        self._r_done = r_done
        self._r_issued = r_issued
        sv[S_ROB_HEAD] = rob._head
        sv[S_ROB_TAIL] = rob._tail
        sv[S_ROB_COUNT] = rob._count
        sv[S_ROB_RETIRED] = rob.retired
        sv[S_LSQ_COUNT] = proc.lsq._count

        # -- rename table ---------------------------------------------
        rename = proc.rename
        amap_l = [int(x) for x in rename._map]
        free_l = [int(x) for x in rename._free]
        freed_l = [int(r_freed[p]) for p in range(rob_cap)
                   if r_op[p] >= 0 and r_freed[p] >= 0]
        all_tags = set(amap_l) | set(free_l) | set(freed_l)
        n_phys = (max(all_tags) + 1) if all_tags else 0
        if (len(all_tags) != len(amap_l) + len(free_l) + len(freed_l)
                or n_phys != len(all_tags)):
            raise _Declined("rename tag population is not dense")
        ready = np.zeros(n_phys, dtype=np.int64)
        for t in rename._ready:
            if not 0 <= t < n_phys:
                raise _Declined("ready tag out of range")
            ready[t] = 1
        free_arr = np.zeros(n_phys, dtype=np.int64)
        free_arr[:len(free_l)] = free_l
        self._amap = np.array(amap_l, dtype=np.int64)
        self._free_arr = free_arr
        self._ready = ready
        sv[S_FREE_TOP] = len(free_l)

        # -- issue queues ---------------------------------------------
        int_iq = proc.int_iq
        fp_iq = proc.fp_iq
        ni = len(int_iq._pending_removal)
        nf = len(fp_iq._pending_removal)
        self._iq = self._lower_queue(int_iq, 0)
        self._fq = self._lower_queue(fp_iq, ni)
        for arr in (self._iq[2], self._iq[3], self._fq[2], self._fq[3]):
            if arr.size and int(arr.max()) >= n_phys:
                raise _Declined("waiting tag out of range")
        sv[S_GCTR] = ni + nf
        sv[S_INOW] = int_iq._now
        sv[S_ITOP] = int_iq._top
        sv[S_IHOLES] = int_iq._holes
        sv[S_INPEND] = ni
        sv[S_IMINIA] = (int_iq._pending_removal[0].issued_at
                       if ni else _NEVER)
        sv[S_IMODE] = 0 if int_iq.mode is QueueMode.NORMAL else 1
        sv[S_FNOW] = fp_iq._now
        sv[S_FTOP] = fp_iq._top
        sv[S_FHOLES] = fp_iq._holes
        sv[S_FNPEND] = nf
        sv[S_FMINIA] = (fp_iq._pending_removal[0].issued_at
                       if nf else _NEVER)
        sv[S_FMODE] = 0 if fp_iq.mode is QueueMode.NORMAL else 1
        self._ic = int_iq._c
        self._fc = fp_iq._c

        # -- select networks ------------------------------------------
        int_sel = proc.int_select
        fp_sel = proc.fp_add_select
        mul_sel = proc.fp_mul_select
        igpt = np.array(int_sel.counters.grants_per_tree, dtype=np.int64)
        fgpt = np.array(fp_sel.counters.grants_per_tree, dtype=np.int64)
        mgpt = np.array(mul_sel.counters.grants_per_tree, dtype=np.int64)
        if igpt.shape[0] != n_int or fgpt.shape[0] != n_fp \
                or mgpt.shape[0] != 1:
            raise _Declined("select tree count mismatch")
        self._igpt = igpt
        self._fgpt = fgpt
        self._mgpt = mgpt
        sv[S_IRR] = int_sel._rr_offset
        sv[S_FRR] = fp_sel._rr_offset
        sv[S_ISC_CYC] = int_sel.counters.cycles
        sv[S_ISC_REQ] = int_sel.counters.requests_seen
        sv[S_FSC_CYC] = fp_sel.counters.cycles
        sv[S_FSC_REQ] = fp_sel.counters.requests_seen
        sv[S_MSC_CYC] = mul_sel.counters.cycles
        sv[S_MSC_REQ] = mul_sel.counters.requests_seen

        # -- functional units -----------------------------------------
        mem = proc.memory
        pipe_cap = mem._mem_lat + 32
        u_op = np.full((n_units, pipe_cap), -1, dtype=np.int64)
        u_rob = np.zeros((n_units, pipe_cap), dtype=np.int64)
        u_fin = np.zeros((n_units, pipe_cap), dtype=np.int64)
        u_n = np.zeros(n_units, dtype=np.int64)
        u_nf = np.full(n_units, _NEVER, dtype=np.int64)
        u_blocked = np.zeros(n_units, dtype=np.int64)
        u_busy = np.zeros(n_units, dtype=np.int64)
        for j, u in enumerate(units):
            pl = u._pipeline
            if len(pl) > pipe_cap:
                raise _Declined("unit pipeline deeper than lowered cap")
            for k, inf in enumerate(pl):
                u_op[j, k] = self._op_row(inf.op)
                u_rob[j, k] = inf.rob_index
                u_fin[j, k] = inf.finish_cycle
            u_n[j] = len(pl)
            u_nf[j] = u._next_finish
            u_blocked[j] = u._blocked_until
            u_busy[j] = 1 if u.busy else 0
        self._u_op = u_op
        self._u_rob = u_rob
        self._u_fin = u_fin
        self._u_n = u_n
        self._u_nf = u_nf
        self._u_blocked = u_blocked
        self._u_busy = u_busy
        self._int_ops = proc._int_bank.ops
        self._int_bc = proc._int_bank.busy_cycles
        self._fp_ops = proc._fp_add_bank.ops
        self._fp_bc = proc._fp_add_bank.busy_cycles
        self._mul_ops = proc._fp_mul_bank.ops
        self._mul_bc = proc._fp_mul_bank.busy_cycles
        sv[S_BUSY_N] = proc._busy_count[0]

        # -- register file --------------------------------------------
        regfile = proc.regfile
        n_copies = regfile.n_copies
        off_mask = np.zeros(n_copies, dtype=np.int64)
        for c in regfile._off:
            if not 0 <= c < n_copies:
                raise _Declined("turned-off copy out of range")
            off_mask[c] = 1
        blocked = regfile.blocked_alus()
        ibs = np.zeros(n_int, dtype=np.int64)
        for t in range(n_int):
            if int_alus[t].busy or t in blocked:
                ibs[t] = 1
        self._ports = ports
        self._off_mask = off_mask
        self._ibs = ibs
        self._rf_rd = regfile._reads
        self._rf_wr = regfile._writes

        # -- memory hierarchy -----------------------------------------
        self._l1_tags, self._l1_cnt = self._lower_cache(mem.l1d)
        self._l2_tags, self._l2_cnt = self._lower_cache(mem.l2)
        sv[S_L1_ACC] = mem.l1d.stats.accesses
        sv[S_L1_MIS] = mem.l1d.stats.misses
        sv[S_L2_ACC] = mem.l2.stats.accesses
        sv[S_L2_MIS] = mem.l2.stats.misses
        sv[S_MEM_LD] = mem.loads
        sv[S_MEM_ST] = mem.stores

        # -- core scalars ---------------------------------------------
        st = proc.stats
        sv[S_NOW] = proc.now
        sv[S_CYCLES] = st.cycles
        sv[S_COMMITTED] = st.committed
        sv[S_STALL] = st.stall_cycles
        sv[S_THROTTLED] = st.throttled_cycles
        sv[S_ISSUED] = st.issued
        sv[S_STALLED_UNTIL] = proc.stalled_until
        sv[S_THROTTLED_UNTIL] = proc.throttled_until
        sv[S_FP_ACC] = proc.fp_reg_accesses

        # -- geometry constants ---------------------------------------
        C[C_COMMIT_W] = proc._commit_width
        C[C_ISSUE_W] = proc._issue_width
        C[C_N_INT] = n_int
        C[C_N_FP] = n_fp
        C[C_N_UNITS] = n_units
        C[C_MUL_J] = n_units - 1
        C[C_ICAP] = int_iq.n_entries
        C[C_IMID] = int_iq.mid
        C[C_FCAP] = fp_iq.n_entries
        C[C_FMID] = fp_iq.mid
        C[C_IWIN] = int_iq.replay_window
        C[C_FWIN] = fp_iq.replay_window
        C[C_ICW] = int_iq.compact_width
        C[C_FCW] = fp_iq.compact_width
        C[C_ROB_CAP] = rob_cap
        C[C_LSQ_CAP] = proc.lsq.capacity
        C[C_PENALTY] = fetch.mispredict_penalty
        C[C_FWIDTH] = fetch.fetch_width
        C[C_FB_CAP] = fb_cap
        C[C_INT_RR] = 1 if int_sel.round_robin else 0
        C[C_FP_RR] = 1 if fp_sel.round_robin else 0
        C[C_L1_SETS] = mem.l1d._n_sets
        C[C_L1_ASSOC] = mem.l1d._assoc
        C[C_L1_OFF] = mem.l1d._offset_bits
        C[C_L1_LAT] = mem._l1_lat
        C[C_L2_SETS] = mem.l2._n_sets
        C[C_L2_ASSOC] = mem.l2._assoc
        C[C_L2_OFF] = mem.l2._offset_bits
        C[C_L2_LAT] = mem._l2_lat
        C[C_MEM_LAT] = mem._mem_lat
        C[C_N_COPIES] = n_copies

        lat = np.zeros(8, dtype=np.int64)
        for oc, code in _OP_CODE.items():
            lat[code] = DEFAULT_LATENCY[oc]
        self._lat = lat

        qmax = int_iq.n_entries
        if fp_iq.n_entries > qmax:
            qmax = fp_iq.n_entries
        self._sc = [np.full(qmax, -1, dtype=np.int64) for _ in range(6)]
        self._ready_buf = np.zeros(qmax, dtype=np.int64)
        self._pair_t = np.zeros(n_units, dtype=np.int64)
        self._pair_p = np.zeros(n_units, dtype=np.int64)
        self._rebuild_args()

    def _rebuild_args(self) -> None:
        t_opc, t_dst, t_s1, t_s2, t_mem, t_mis, t_seq = self._t
        self._args = (
            self.sv, self.C, self._lat,
            t_opc, t_dst, t_s1, t_s2, t_mem, t_mis, t_seq,
            self._fb,
            *self._iq, *self._fq,
            self._ic, self._fc,
            self._r_op, self._r_dst, self._r_freed, self._r_done,
            self._r_issued,
            self._amap, self._free_arr, self._ready,
            self._u_op, self._u_rob, self._u_fin, self._u_n, self._u_nf,
            self._u_blocked, self._u_busy, self._ibs,
            self._int_ops, self._fp_ops, self._mul_ops,
            self._int_bc, self._fp_bc, self._mul_bc,
            self._ports, self._off_mask, self._rf_rd, self._rf_wr,
            self._igpt, self._fgpt, self._mgpt,
            self._l1_tags, self._l1_cnt, self._l2_tags, self._l2_cnt,
            *self._sc, self._ready_buf, self._pair_t, self._pair_p,
        )


    # -- execution ----------------------------------------------------

    def _extend_trace(self) -> None:
        """Grow the lowered trace window (geometric growth, fixed
        ``b0``) after the interpreter paused at ``ST_NEED_TRACE``."""
        grow = self._tlen if self._tlen > _GROW else _GROW
        want = self._b0 + self._tlen + grow
        buf = self._trace.buffer
        try:
            buf.get(want - 1)
        except (StopIteration, IndexError):
            pass
        n_avail = len(buf.ops)
        if n_avail < want:
            self.sv[S_TFINAL] = 1
        hi = n_avail if n_avail < want else want
        if hi > self._b0 + self._tlen:
            try:
                self._load_trace(hi)
            except _Declined as exc:  # pragma: no cover - model corruption
                raise RuntimeError(
                    f"accel trace extension failed: {exc}") from exc
            self.sv[S_TLEN] = self._tlen
            self._rebuild_args()

    def run_chunk(self, n_cycles: int) -> Tuple[int, bool]:
        """Execute up to ``n_cycles`` cycles; returns ``(ran, finished)``
        exactly like the kernel's ``_run_chunk``."""
        sv = self.sv
        start = int(sv[S_NOW])
        target = start + n_cycles
        finished = False
        while True:
            status = self._fn(target - int(sv[S_NOW]), *self._args)
            if status == ST_NEED_TRACE:
                self._extend_trace()
                continue
            if status == ST_ERR_OFF_COPY:
                copy = int(sv[S_ERR_COPY])
                alu = int(sv[S_ERR_ALU])
                raise RuntimeError(
                    f"read from turned-off register-file copy {copy}; "
                    f"ALU {alu} should have been marked busy")
            finished = status == ST_FINISHED
            break
        return int(sv[S_NOW]) - start, finished

    # -- boundary sync ------------------------------------------------

    def sync_out(self) -> None:
        """Arrays -> objects: every scalar a boundary consumer (DTM,
        activity toggler, power accountant) can read."""
        proc = self.proc
        sv = self.sv
        proc.now = int(sv[S_NOW])
        st = proc.stats
        st.cycles = int(sv[S_CYCLES])
        st.committed = int(sv[S_COMMITTED])
        st.stall_cycles = int(sv[S_STALL])
        st.throttled_cycles = int(sv[S_THROTTLED])
        st.issued = int(sv[S_ISSUED])
        fetch = proc.fetch
        fetch.fetched = int(sv[S_FETCHED])
        fetch.exhausted = bool(int(sv[S_EXHAUSTED]))
        blocking = int(sv[S_BLOCKING])
        fetch._blocking_branch = None if blocking < 0 else blocking
        resume = int(sv[S_RESUME])
        fetch._resume_at = None if resume < 0 else resume
        fetch._count_this_cycle = int(sv[S_FCOUNT])
        ps = fetch.predictor._stats
        ps.branches = int(sv[S_PRED_BR])
        ps.mispredicts = int(sv[S_PRED_MIS])
        proc.fp_reg_accesses = int(sv[S_FP_ACC])
        # The activity toggler reads len(queue) = _top - _holes before
        # deciding to toggle, so queue geometry must be object-visible
        # at every boundary (sync_in repairs it again after a toggle).
        int_iq = proc.int_iq
        int_iq._now = int(sv[S_INOW])
        int_iq._top = int(sv[S_ITOP])
        int_iq._holes = int(sv[S_IHOLES])
        fp_iq = proc.fp_iq
        fp_iq._now = int(sv[S_FNOW])
        fp_iq._top = int(sv[S_FTOP])
        fp_iq._holes = int(sv[S_FHOLES])
        for sel, gpt in ((proc.int_select, self._igpt),
                         (proc.fp_add_select, self._fgpt),
                         (proc.fp_mul_select, self._mgpt)):
            grants = sel.counters.grants_per_tree
            for t in range(len(grants)):
                grants[t] = int(gpt[t])
        int_sel = proc.int_select
        int_sel.counters.cycles = int(sv[S_ISC_CYC])
        int_sel.counters.requests_seen = int(sv[S_ISC_REQ])
        int_sel._rr_offset = int(sv[S_IRR])
        fp_sel = proc.fp_add_select
        fp_sel.counters.cycles = int(sv[S_FSC_CYC])
        fp_sel.counters.requests_seen = int(sv[S_FSC_REQ])
        fp_sel._rr_offset = int(sv[S_FRR])
        mul_sel = proc.fp_mul_select
        mul_sel.counters.cycles = int(sv[S_MSC_CYC])
        mul_sel.counters.requests_seen = int(sv[S_MSC_REQ])
        mem = proc.memory
        mem.loads = int(sv[S_MEM_LD])
        mem.stores = int(sv[S_MEM_ST])
        mem.l1d.stats.accesses = int(sv[S_L1_ACC])
        mem.l1d.stats.misses = int(sv[S_L1_MIS])
        mem.l2.stats.accesses = int(sv[S_L2_ACC])
        mem.l2.stats.misses = int(sv[S_L2_MIS])
        self._trace.seek(self._b0 + int(sv[S_FPOS]))

    def _repair_queue_mode(self, q: Any, s_mode: int, s_top: int,
                           s_holes: int, q_op: np.ndarray) -> None:
        mode_now = 0 if q.mode is QueueMode.NORMAL else 1
        if mode_now == int(self.sv[s_mode]):
            return
        # The boundary toggled the queue: physical slot contents are
        # unchanged but the logical mapping flipped, so top/holes must
        # be recomputed under the new mapping (the object's own
        # _rebuild_order ran over stale slots).
        cap = q.n_entries
        mid = q.mid
        top = 0
        occ = 0
        for logical in range(cap):
            p = logical if mode_now == 0 else (logical + mid) % cap
            if q_op[p] >= 0:
                top = logical + 1
                occ += 1
        self.sv[s_mode] = mode_now
        self.sv[s_top] = top
        self.sv[s_holes] = top - occ
        q._top = top
        q._holes = top - occ

    def sync_in(self) -> None:
        """Objects -> arrays: re-read everything the DTM may have
        mutated at the boundary (the gating state of the macro-step
        contract)."""
        proc = self.proc
        sv = self.sv
        sv[S_STALLED_UNTIL] = proc.stalled_until
        sv[S_THROTTLED_UNTIL] = proc.throttled_until
        u_busy = self._u_busy
        for j, u in enumerate(proc._all_units):
            u_busy[j] = 1 if u.busy else 0
        sv[S_BUSY_N] = proc._busy_count[0]
        regfile = proc.regfile
        off = regfile._off
        off_mask = self._off_mask
        for c in range(off_mask.shape[0]):
            off_mask[c] = 1 if c in off else 0
        blocked = regfile.blocked_alus()
        ibs = self._ibs
        int_alus = proc.int_alus
        for t in range(ibs.shape[0]):
            ibs[t] = 1 if (int_alus[t].busy or t in blocked) else 0
        self._repair_queue_mode(proc.int_iq, S_IMODE, S_ITOP, S_IHOLES,
                                self._iq[0])
        self._repair_queue_mode(proc.fp_iq, S_FMODE, S_FTOP, S_FHOLES,
                                self._fq[0])

    # -- materialization ----------------------------------------------

    def _materialize_queue(self, q: Any,
                           arrs: List[np.ndarray]) -> None:
        q_op, q_rob, q_w1, q_w2, q_ia, q_gs = arrs
        slots = q.slots
        ops = self._ops
        pend: List[Tuple[int, IQEntry]] = []
        waiters: dict = {}
        for p in range(q.n_entries):
            o = int(q_op[p])
            if o < 0:
                slots[p] = None
                continue
            w1 = int(q_w1[p])
            w2 = int(q_w2[p])
            tags = set()
            if w1 >= 0:
                tags.add(w1)
            if w2 >= 0:
                tags.add(w2)
            ia = int(q_ia[p])
            entry = IQEntry(op=ops[o], rob_index=int(q_rob[p]),
                            waiting_tags=tags,
                            issued_at=None if ia < 0 else ia)
            slots[p] = entry
            if ia >= 0:
                pend.append((int(q_gs[p]), entry))
            for w in (w1, w2):
                if w >= 0:
                    waiters.setdefault(w, []).append(entry)
        pend.sort(key=lambda item: item[0])
        q._pending_removal = [entry for _, entry in pend]
        q._waiters = waiters
        q._rebuild_order()

    def _materialize_cache(self, cache: Any, tags: np.ndarray,
                           cnt: np.ndarray) -> None:
        for s in range(tags.shape[0]):
            k = int(cnt[s])
            cache._sets[s][:] = [int(tags[s, w]) for w in range(k)]

    def materialize(self) -> None:
        """Full arrays -> objects rebuild (idempotent).

        After this the processor object graph is exactly what the
        Python kernel's flush would have produced: snapshot_state(),
        the sanitizer-free reference loop, or a fresh AccelSession can
        all pick it up.
        """
        self.sync_out()
        proc = self.proc
        sv = self.sv
        ops = self._ops
        rename = proc.rename
        free_top = int(sv[S_FREE_TOP])
        rename._map[:] = [int(x) for x in self._amap]
        rename._free[:] = [int(x) for x in self._free_arr[:free_top]]
        rename._free_set = set(rename._free)
        ready = self._ready
        rename._ready = {t for t in range(ready.shape[0])
                         if ready[t] == 1}
        rob = proc.rob
        entries = rob._entries
        r_op = self._r_op
        for p in range(rob.capacity):
            o = int(r_op[p])
            if o < 0:
                entries[p] = None
                continue
            dst = int(self._r_dst[p])
            freed = int(self._r_freed[p])
            entries[p] = ROBEntry(
                op=ops[o],
                dst_tag=None if dst < 0 else dst,
                freed_tag=None if freed < 0 else freed,
                done=bool(int(self._r_done[p])),
                issued=bool(int(self._r_issued[p])))
        rob._head = int(sv[S_ROB_HEAD])
        rob._tail = int(sv[S_ROB_TAIL])
        rob._count = int(sv[S_ROB_COUNT])
        rob.retired = int(sv[S_ROB_RETIRED])
        proc.lsq._count = int(sv[S_LSQ_COUNT])
        self._materialize_queue(proc.int_iq, self._iq)
        self._materialize_queue(proc.fp_iq, self._fq)
        for j, u in enumerate(proc._all_units):
            n = int(self._u_n[j])
            u._pipeline = [
                _InFlight(ops[int(self._u_op[j, k])],
                          int(self._u_rob[j, k]),
                          int(self._u_fin[j, k]))
                for k in range(n)]
            u._next_finish = int(self._u_nf[j])
            u._blocked_until = int(self._u_blocked[j])
        fetch = proc.fetch
        buffer = fetch.buffer
        buffer.clear()
        head = int(sv[S_FB_HEAD])
        count = int(sv[S_FB_N])
        fb_cap = int(self.C[C_FB_CAP])
        for k in range(count):
            buffer.append(ops[int(self._fb[(head + k) % fb_cap])])
        self._materialize_cache(proc.memory.l1d, self._l1_tags,
                                self._l1_cnt)
        self._materialize_cache(proc.memory.l2, self._l2_tags,
                                self._l2_cnt)


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

_NUMBA_CHECKED = False
_NJIT_FN: Optional[Callable[..., int]] = None
_COMPILE_S: Optional[float] = None


def accel_mode() -> str:
    """The requested accelerator mode (``REPRO_ACCEL``), read from the
    environment on every call so tests can flip it between runs."""
    return os.environ.get("REPRO_ACCEL", "auto").strip().lower() or "auto"


def _njit_interp() -> Optional[Callable[..., int]]:
    """The numba-compiled interpreter, or ``None`` when numba is not
    installed (the ``repro[accel]`` extra).  Wrapping is cheap and done
    once per process; actual compilation happens on the first call and
    is timed by the first :class:`AccelSession`."""
    global _NUMBA_CHECKED, _NJIT_FN
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:
            import numba
        except Exception:
            _NJIT_FN = None
        else:
            _NJIT_FN = numba.njit(cache=True)(_chunk_interp)
    return _NJIT_FN


def resolve_backend() -> Optional[str]:
    """Backend name ``REPRO_ACCEL`` resolves to right now.

    ``auto`` → ``"numba"`` when importable else ``None`` (the Python
    kernel stays the fastest always-available path); ``numba`` →
    ``"numba"``, degrading to ``"numpy"`` when not installed;
    ``numpy`` → ``"numpy"`` (the same interpreter run as plain
    Python — always available, used by the identity matrix); anything
    else (``0``/``off``) → ``None``.
    """
    mode = accel_mode()
    if mode == "auto":
        return "numba" if _njit_interp() is not None else None
    if mode == "numba":
        return "numba" if _njit_interp() is not None else "numpy"
    if mode == "numpy":
        return "numpy"
    return None


def active_backend() -> str:
    """Execution backend label for bench/report provenance:
    ``numba``/``numpy`` when the accelerator is selected, ``kernel``
    when runs fall through to the Python macro-step kernel."""
    return resolve_backend() or "kernel"


def accel_compile_s() -> float:
    """Seconds the first numba compilation (or cache load) took in
    this process; 0.0 when no numba session has been built."""
    return _COMPILE_S if _COMPILE_S is not None else 0.0


def maybe_session(proc: "Processor") -> Optional[AccelSession]:
    """Build an :class:`AccelSession` for this run, or return ``None``
    when the accelerator is disabled, unavailable, or the run needs
    per-cycle Python visibility (decline rules in the module
    docstring)."""
    backend = resolve_backend()
    if backend is None:
        return None
    fn = _NJIT_FN if backend == "numba" else _chunk_interp
    if fn is None:  # pragma: no cover - defensive
        return None
    try:
        return AccelSession(proc, fn, backend)
    except _Declined:
        return None
