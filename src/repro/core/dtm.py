"""Dynamic thermal management orchestration.

:class:`ThermalManager` is the controller that runs at every sensing
interval: it reads the temperature sensors, drives the configured
spatial techniques (activity toggling, fine-grain turnoff, register-
file copy turnoff), and falls back to the *temporal* technique — a
global cooling stall of ``cooling_time`` (10 ms in the paper, the
Pentium 4 approach) — whenever a resource overheats beyond what the
spatial techniques can absorb:

* an issue-queue half at the ceiling (halves cannot be turned off —
  broadcast must reach all entries for correctness),
* every copy of a fine-grain-managed resource off at once,
* any copy of a base-policy resource at the ceiling, or
* any other die block at the ceiling (failsafe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..obs.collector import QueueTracer, TraceCollector, UnitTracer
from ..obs.events import CoreResume, ThermalCeilingCross
from ..pipeline.config import ThermalConfig
from ..pipeline.processor import Processor
from ..thermal.floorplan import (FP_ADD_BLOCKS, FP_QUEUE_BLOCKS,
                                 INT_ALU_BLOCKS, INT_QUEUE_BLOCKS,
                                 INT_REG_BLOCKS)
from ..thermal.sensors import SensorBank
from .activity_toggle import ActivityToggler
from .fine_grain import FineGrainController
from .policies import ALUPolicy, IssueQueuePolicy, TechniqueConfig


@dataclass
class DTMStats:
    """Controller-level behaviour over a run."""

    samples: int = 0
    global_stalls: int = 0
    stall_reasons: Dict[str, int] = field(default_factory=dict)
    iq_toggles: int = 0
    alu_turnoffs: int = 0
    fp_adder_turnoffs: int = 0
    rf_turnoffs: int = 0

    def record_stall(self, reason: str) -> None:
        self.global_stalls += 1
        self.stall_reasons[reason] = self.stall_reasons.get(reason, 0) + 1


class ThermalManager:
    """Per-sample DTM controller for one processor + thermal model."""

    def __init__(self, processor: Processor, sensors: SensorBank,
                 thermal_config: ThermalConfig,
                 techniques: TechniqueConfig,
                 collector: Optional[TraceCollector] = None) -> None:
        self.processor = processor
        self.sensors = sensors
        self.config = thermal_config
        self.techniques = techniques
        self.stats = DTMStats()
        #: Event sink (None = tracing off; every emission site below
        #: degrades to a single ``is not None`` check).
        self.collector = collector
        #: Blocks currently sensed at/above the ceiling, for
        #: crossing-edge detection (membership checks only — never
        #: iterated, so no hash-order dependence).
        self._above_ceiling: Set[str] = set()
        #: Reason/kind of the stall or throttle whose resume event is
        #: still owed (None when the core runs free).
        self._pending_resume: Optional[Tuple[str, str, int]] = None

        tmax = thermal_config.max_temperature_k
        hyst = thermal_config.turnoff_hysteresis_k
        clock = self._clock

        self.int_toggler: Optional[ActivityToggler] = None
        self.fp_toggler: Optional[ActivityToggler] = None
        if techniques.issue_queue is IssueQueuePolicy.ACTIVITY_TOGGLING:
            self.int_toggler = ActivityToggler(
                processor.int_iq, thermal_config.toggle_threshold_k,
                ceiling_k=tmax,
                tracer=(QueueTracer(collector, "IntQ", clock)
                        if collector is not None else None))
            self.fp_toggler = ActivityToggler(
                processor.fp_iq, thermal_config.toggle_threshold_k,
                ceiling_k=tmax,
                tracer=(QueueTracer(collector, "FPQ", clock)
                        if collector is not None else None))

        self.alu_controller: Optional[FineGrainController] = None
        self.fp_adder_controller: Optional[FineGrainController] = None
        if techniques.alus in (ALUPolicy.FINE_GRAIN, ALUPolicy.ROUND_ROBIN):
            self.alu_controller = FineGrainController(
                len(INT_ALU_BLOCKS), tmax, hyst,
                turn_off=lambda i: processor.set_alu_busy(i, True),
                turn_on=lambda i: processor.set_alu_busy(i, False),
                tracer=(UnitTracer(collector, INT_ALU_BLOCKS, clock)
                        if collector is not None else None))
            self.fp_adder_controller = FineGrainController(
                len(FP_ADD_BLOCKS), tmax, hyst,
                turn_off=lambda i: processor.set_fp_adder_busy(i, True),
                turn_on=lambda i: processor.set_fp_adder_busy(i, False),
                tracer=(UnitTracer(collector, FP_ADD_BLOCKS, clock)
                        if collector is not None else None))

        self.rf_controller: Optional[FineGrainController] = None
        if (techniques.regfile.fine_grain_turnoff
                and processor.mapping.supports_turnoff):
            self.rf_controller = FineGrainController(
                processor.regfile.n_copies,
                tmax - thermal_config.rf_turnoff_margin_k, hyst,
                turn_off=processor.turn_off_regfile_copy,
                turn_on=processor.turn_on_regfile_copy,
                tracer=(UnitTracer(collector, INT_REG_BLOCKS, clock)
                        if collector is not None else None))

        self._handled = set(INT_QUEUE_BLOCKS) | set(FP_QUEUE_BLOCKS)
        self._handled |= set(INT_ALU_BLOCKS) | set(FP_ADD_BLOCKS)
        self._handled |= set(INT_REG_BLOCKS)

    def _clock(self) -> int:
        """Cycle stamp for emitted events (the processor's counter)."""
        return self.processor.now

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Every mutable field of the controller and its
        sub-controllers, as plain picklable data (the controllers
        themselves hold processor-bound callbacks and cannot be
        pickled).  Used for mid-run handoff of a run to another
        process; the receiving manager is built from the same config,
        so the structural fields already match."""
        state: dict = {
            "stats": self.stats,
            "above_ceiling": set(self._above_ceiling),
            "pending_resume": self._pending_resume,
        }
        for name in ("int_toggler", "fp_toggler", "alu_controller",
                     "fp_adder_controller", "rf_controller"):
            controller = getattr(self, name)
            state[name] = (controller.snapshot_state()
                           if controller is not None else None)
        return state

    def restore_state(self, state: dict) -> None:
        self.stats = state["stats"]
        self._above_ceiling = set(state["above_ceiling"])
        self._pending_resume = state["pending_resume"]
        for name in ("int_toggler", "fp_toggler", "alu_controller",
                     "fp_adder_controller", "rf_controller"):
            controller = getattr(self, name)
            sub = state[name]
            if (controller is None) != (sub is None):
                raise ValueError(
                    f"controller mismatch restoring {name}")
            if controller is not None:
                controller.restore_state(sub)

    # ------------------------------------------------------------------
    def on_sample(self, processor: Processor) -> None:
        """Run one DTM decision round (called every sensing interval)."""
        if processor is not self.processor:
            raise ValueError("manager is bound to a different processor")
        self.stats.samples += 1
        tmax = self.config.max_temperature_k
        temps = self.sensors.read_all()
        already_stalled = processor.is_stalled
        if self.collector is not None:
            self._trace_sample(temps, tmax, already_stalled)

        # --- issue queues -------------------------------------------------
        int_halves = (temps["IntQ0"], temps["IntQ1"])
        fp_halves = (temps["FPQ0"], temps["FPQ1"])
        if self.int_toggler is not None and not already_stalled:
            if self.int_toggler.observe(int_halves):
                self.stats.iq_toggles += 1
            if self.fp_toggler.observe(fp_halves):
                self.stats.iq_toggles += 1
        if max(int_halves) >= tmax or max(fp_halves) >= tmax:
            self._stall(processor, "issue_queue", already_stalled)

        # --- ALUs ---------------------------------------------------------
        int_alu_temps = [temps[b] for b in INT_ALU_BLOCKS]
        fp_add_temps = [temps[b] for b in FP_ADD_BLOCKS]
        if self.alu_controller is not None:
            all_int_off = self.alu_controller.observe(int_alu_temps)
            all_fp_off = self.fp_adder_controller.observe(fp_add_temps)
            self.stats.alu_turnoffs = self.alu_controller.stats.turnoff_events
            self.stats.fp_adder_turnoffs = (
                self.fp_adder_controller.stats.turnoff_events)
            if all_int_off or all_fp_off:
                self._stall(processor, "all_alus_off", already_stalled)
        else:
            if max(int_alu_temps) >= tmax or max(fp_add_temps) >= tmax:
                self._stall(processor, "alu", already_stalled)

        # --- register file copies ------------------------------------------
        rf_temps = [temps[b] for b in INT_REG_BLOCKS]
        if self.rf_controller is not None:
            if self.rf_controller.observe(rf_temps):
                self._stall(processor, "all_rf_copies_off", already_stalled)
            self.stats.rf_turnoffs = self.rf_controller.stats.turnoff_events
        else:
            if max(rf_temps) >= tmax:
                self._stall(processor, "regfile", already_stalled)

        # --- failsafe for everything else ----------------------------------
        for name, temp in temps.items():
            if name not in self._handled and temp >= tmax:
                self._stall(processor, f"other:{name}", already_stalled)
                break

    def _trace_sample(self, temps: Dict[str, float], tmax: float,
                      already_stalled: bool) -> None:
        """Emit sample-edge events: owed resumes and ceiling crossings.

        Resume events are detected *lazily* — the stall's end cycle is
        known when the stall starts, but emitting the resume eagerly
        would put a future-stamped event ahead of any ceiling
        crossings that happen during the stall, breaking the buffer's
        chronological order.  Instead the first sample after the core
        runs free emits the event stamped with the true resume cycle.
        """
        collector = self.collector
        pending = self._pending_resume
        if pending is not None:
            reason, temporal, until = pending
            if self.processor.now >= until:
                collector.emit(CoreResume(cycle=until, reason=reason,
                                          temporal=temporal))
                self._pending_resume = None
        now = self.processor.now
        for name, temp in temps.items():
            if temp >= tmax:
                if name not in self._above_ceiling:
                    self._above_ceiling.add(name)
                    collector.emit(ThermalCeilingCross(
                        cycle=now, block=name, temperature_k=float(temp),
                        ceiling_k=tmax))
            else:
                self._above_ceiling.discard(name)

    def _stall(self, processor: Processor, reason: str,
               already_stalled: bool) -> None:
        if already_stalled or processor.is_stalled:
            return
        if self.config.temporal_technique == "throttle":
            if processor.is_throttled:
                return
            # Half duty cycle halves the dynamic power, so cooling to
            # the same temperature takes about twice as long.
            processor.throttle(2 * self.config.cooling_cycles, reason)
            if self.collector is not None:
                self._pending_resume = (reason, "throttle",
                                        processor.throttled_until)
        else:
            processor.global_stall(self.config.cooling_cycles, reason)
            if self.collector is not None:
                self._pending_resume = (reason, "stall",
                                        processor.stalled_until)
        self.stats.record_stall(reason)
