"""Activity toggling for the compacting issue queue (paper §2.1.1).

The controller watches the temperatures of the two physical halves of
an issue queue and toggles the queue's head/tail configuration so that
compaction activity lands in the cooler half — before either half
overheats.  Toggling is correct regardless of queue contents (priority
order is a performance heuristic, not a correctness requirement).

The controller composes three rules, all driven by the 0.5 K
imbalance threshold of the paper plus state the hardware already has
(the tail pointer and the per-half gating activity counters):

1. **Balancing toggle** — when the hotter half is the one receiving
   compaction activity, the imbalance exceeds the threshold, and the
   queue is below half occupancy (so the wrap wires stay idle after
   the toggle), flip the configuration.
2. **Saturation revert** — when sitting in the toggled configuration
   with a queue past half occupancy, return to the conventional
   configuration immediately: entries would otherwise straddle the
   wrap and pay the long-compaction wire energy on every issue (the
   paper's power-density disadvantage), while a saturated queue
   spreads activity over both halves anyway.  The toggled
   configuration therefore only ever persists at low occupancy, where
   it is free.

Activity toggling cannot *guarantee* the queue stays cool: broadcast
must continue to all entries for correctness, so a bursty application
can overheat both halves anyway, at which point the temporal fallback
(a global cooling stall, handled by :mod:`repro.core.dtm`) kicks in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from ..pipeline.issue_queue import CompactingIssueQueue, QueueMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.collector import QueueTracer


@dataclass
class ToggleStats:
    """Observable behaviour of one toggling controller."""

    toggles: int = 0
    emergency_toggles: int = 0
    samples: int = 0
    max_imbalance_k: float = 0.0


class ActivityToggler:
    """Drives one issue queue's head/tail mode from its half temps."""

    def __init__(self, queue: CompactingIssueQueue,
                 threshold_k: float = 0.5,
                 ceiling_k: float = 358.0,
                 refractory_samples: int = 2,
                 tracer: Optional["QueueTracer"] = None) -> None:
        if threshold_k <= 0:
            raise ValueError("threshold must be positive")
        if refractory_samples < 0:
            raise ValueError("refractory period must be non-negative")
        self.queue = queue
        self.threshold_k = threshold_k
        self.ceiling_k = ceiling_k
        self.refractory_samples = refractory_samples
        #: Optional :class:`~repro.obs.collector.QueueTracer`; when
        #: set, every toggle emits a cycle-stamped ``ToggleEvent``.
        self.tracer = tracer
        self.stats = ToggleStats()
        self._cooldown = 0
        self._last_activity = self._activity_counts()
        counters = self.queue.counters
        self._occ_history: Deque[Tuple[int, int]] = deque(
            [(counters.occupancy_sum, counters.cycles)], maxlen=4)
        self._last_longs = sum(counters.long_moves)

    def _activity_counts(self) -> List[int]:
        """Cumulative compaction-logic activity per physical half."""
        c = self.queue.counters
        return [c.counter_evals[h] + c.long_moves[h] for h in (0, 1)]

    def snapshot_state(self) -> dict:
        """The controller's mutable observation state (the queue
        itself is restored separately via the processor snapshot)."""
        return {"stats": self.stats, "cooldown": self._cooldown,
                "last_activity": list(self._last_activity),
                "occ_history": list(self._occ_history),
                "last_longs": self._last_longs}

    def restore_state(self, state: dict) -> None:
        self.stats = state["stats"]
        self._cooldown = state["cooldown"]
        self._last_activity = list(state["last_activity"])
        self._occ_history = deque(state["occ_history"], maxlen=4)
        self._last_longs = state["last_longs"]

    def _toggle(self, half_temps: Tuple[float, float],
                emergency: bool = False) -> bool:
        self.queue.toggle()
        self.stats.toggles += 1
        if emergency:
            self.stats.emergency_toggles += 1
        self._cooldown = self.refractory_samples
        if self.tracer is not None:
            self.tracer.toggled(self.queue.mode.name.lower(),
                                half_temps, emergency)
        return True

    def observe(self, half_temps: Tuple[float, float]) -> bool:
        """Feed one sensor sample; returns True if the queue toggled.

        ``half_temps`` is (lower physical half, upper physical half).
        """
        low, high = half_temps
        self.stats.samples += 1
        current = self._activity_counts()
        delta = [current[0] - self._last_activity[0],
                 current[1] - self._last_activity[1]]
        self._last_activity = current

        imbalance = abs(high - low)
        if imbalance > self.stats.max_imbalance_k:
            self.stats.max_imbalance_k = imbalance
        if self._cooldown > 0:
            self._cooldown -= 1
            return False

        hot_half = 1 if high > low else 0
        active_half = 1 if delta[1] > delta[0] else 0
        hot_is_active = (hot_half == active_half
                         and delta[hot_half] > 0)
        # Multi-sample average occupancy: a transient drain (mispredict
        # or miss recovery) must not look like a persistently
        # low-occupancy queue, so the toggle-in decision averages over
        # the last few sensing intervals.
        counters = self.queue.counters
        occ_sum, cyc = counters.occupancy_sum, counters.cycles
        prev_sum, prev_cyc = self._occ_history[0]
        self._occ_history.append((occ_sum, cyc))
        elapsed = max(1, cyc - prev_cyc)
        occupancy = (occ_sum - prev_sum) / elapsed
        longs = sum(counters.long_moves)
        wire_activity = longs - self._last_longs
        self._last_longs = longs
        mid = self.queue.mid

        # Rule 2: revert to the wire-free configuration when the queue
        # approaches half occupancy from below or the long-compaction
        # wires started burning.  This uses *instantaneous* signals so
        # a phase change is caught at the first sample after it
        # happens, unlike the toggle-in rule which deliberately
        # averages; a revert gets a longer refractory period so a
        # whipsawing queue settles in the conventional configuration.
        if (self.queue.mode is QueueMode.TOGGLED
                and (len(self.queue) > mid - 4 or wire_activity > 20)):
            self._toggle(half_temps)
            self._cooldown = 3 * self.refractory_samples
            return True

        # Rule 1: ordinary balancing toggle.
        if imbalance <= self.threshold_k:
            return False
        if not hot_is_active:
            return False  # current mode is already cooling the hot half
        if occupancy > mid - 6 or len(self.queue) > mid - 2:
            # A toggle now would soon leave entries on both sides of
            # the wrap, putting the long-compaction wires in
            # continuous use (the paper's power-density disadvantage)
            # and throttling dispatch while the relabelled tail drifts
            # back down.
            return False
        return self._toggle(half_temps)
