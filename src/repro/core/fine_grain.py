"""Fine-grain turnoff of resource copies (paper §2.2–§2.3).

Instead of stalling the whole processor when one resource copy crosses
the thermal threshold, fine-grain turnoff marks just that copy *busy*:

* an overheated ALU's select tree grants nothing, so instructions flow
  to lower-priority (cooler) ALUs — the hardware cost is only the busy
  signal select trees already support;
* an overheated register-file copy is turned off by marking busy every
  ALU whose read ports are wired to it (writes continue during cooling
  under the paper's slightly-lowered-threshold scheme).

Only when *all* copies of a resource are simultaneously off does the
controller ask for the temporal fallback (a global cooling stall).
A turned-off copy re-enables once it has cooled a hysteresis margin
below its trigger temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.collector import UnitTracer


@dataclass
class TurnoffStats:
    """Observable behaviour of one fine-grain controller."""

    turnoff_events: int = 0
    turnon_events: int = 0
    all_off_events: int = 0
    samples: int = 0
    #: Per-copy count of turnoff events (index-aligned with the copies).
    per_copy: List[int] = field(default_factory=list)


class FineGrainController:
    """Thermostat over N copies of one resource.

    Parameters
    ----------
    n_copies:
        Number of independently switchable copies.
    trigger_k:
        Temperature at which a copy is turned off.
    hysteresis_k:
        A copy re-enables at ``trigger_k - hysteresis_k``.
    turn_off / turn_on:
        Callbacks receiving the copy index (e.g. mark an ALU busy, or
        disable a register-file copy and busy its mapped ALUs).
    tracer:
        Optional :class:`~repro.obs.collector.UnitTracer`; when set,
        every on/off transition emits a cycle-stamped
        ``UnitTurnoff``/``UnitTurnon`` event.  ``None`` (the default)
        keeps the observe loop free of tracing work.
    """

    def __init__(self, n_copies: int, trigger_k: float,
                 hysteresis_k: float,
                 turn_off: Callable[[int], None],
                 turn_on: Callable[[int], None],
                 tracer: Optional["UnitTracer"] = None) -> None:
        if n_copies < 1:
            raise ValueError("need at least one copy")
        if hysteresis_k < 0:
            raise ValueError("hysteresis must be non-negative")
        self.n_copies = n_copies
        self.trigger_k = trigger_k
        self.hysteresis_k = hysteresis_k
        self._turn_off = turn_off
        self._turn_on = turn_on
        self.tracer = tracer
        self.off = [False] * n_copies
        self.stats = TurnoffStats(per_copy=[0] * n_copies)

    def observe(self, temps: Sequence[float]) -> bool:
        """Feed one sensor sample (one temperature per copy).

        Returns True when every copy is off after this sample — the
        signal for the caller to apply the temporal fallback.
        """
        if len(temps) != self.n_copies:
            raise ValueError("one temperature per copy required")
        self.stats.samples += 1
        for copy, temp in enumerate(temps):
            if not self.off[copy] and temp >= self.trigger_k:
                self.off[copy] = True
                # TurnoffStats.turnoff_events is a plain int tally on
                # the stats dataclass, not the UnitBank SoA array of
                # the same name.
                self.stats.turnoff_events += 1  # repro: noqa[REP103]
                self.stats.per_copy[copy] += 1
                self._turn_off(copy)
                if self.tracer is not None:
                    self.tracer.turnoff(copy, temp)
            elif self.off[copy] and temp <= self.trigger_k - self.hysteresis_k:
                self.off[copy] = False
                self.stats.turnon_events += 1
                self._turn_on(copy)
                if self.tracer is not None:
                    self.tracer.turnon(copy, temp)
        all_off = all(self.off)
        if all_off:
            self.stats.all_off_events += 1
        return all_off

    def snapshot_state(self) -> dict:
        """The controller's mutable state; the gating side effects of
        ``off`` (busy flags, disabled copies) live in the processor
        snapshot and are restored there."""
        return {"off": list(self.off), "stats": self.stats}

    def restore_state(self, state: dict) -> None:
        self.off = list(state["off"])
        self.stats = state["stats"]

    def force_all_on(self) -> None:
        """Re-enable everything (e.g. after a global cooling stall)."""
        for copy in range(self.n_copies):
            if self.off[copy]:
                self.off[copy] = False
                self._turn_on(copy)
                if self.tracer is not None:
                    self.tracer.turnon(copy)
