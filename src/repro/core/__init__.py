"""The paper's techniques: balancing utilization of back-end resources."""

from .activity_toggle import ActivityToggler, ToggleStats
from .dtm import DTMStats, ThermalManager
from .fine_grain import FineGrainController, TurnoffStats
from .mapping import (MappingKind, PortMapping, balanced_mapping,
                      completely_balanced_mapping, make_mapping,
                      priority_mapping)
from .policies import (ALL_TECHNIQUES, BASELINE, ALUPolicy,
                       IssueQueuePolicy, RegFilePolicy, TechniqueConfig)

__all__ = [
    "ALL_TECHNIQUES", "ALUPolicy", "ActivityToggler", "BASELINE",
    "DTMStats", "FineGrainController", "IssueQueuePolicy", "MappingKind",
    "PortMapping", "RegFilePolicy", "TechniqueConfig", "ThermalManager",
    "ToggleStats", "TurnoffStats", "balanced_mapping",
    "completely_balanced_mapping", "make_mapping", "priority_mapping",
]
