"""Policy surface for the three balancing techniques.

A :class:`TechniqueConfig` names, for each back-end resource, which of
the paper's policies the DTM controller applies:

* issue queue — ``BASE`` (stall-on-overheat only) or
  ``ACTIVITY_TOGGLING`` (paper §2.1),
* ALUs — ``BASE``, ``FINE_GRAIN`` turnoff (paper §2.2), or the
  idealized ``ROUND_ROBIN`` upper bound,
* register file — a port :class:`~repro.core.mapping.MappingKind`
  plus whether fine-grain copy turnoff is enabled (paper §2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .mapping import MappingKind


class IssueQueuePolicy(enum.Enum):
    BASE = "base"
    ACTIVITY_TOGGLING = "activity_toggling"


class ALUPolicy(enum.Enum):
    BASE = "base"
    FINE_GRAIN = "fine_grain"
    ROUND_ROBIN = "round_robin"


@dataclass(frozen=True)
class RegFilePolicy:
    """Register-file configuration: port mapping + optional turnoff."""

    mapping: MappingKind = MappingKind.PRIORITY
    fine_grain_turnoff: bool = True

    def label(self) -> str:
        suffix = ("+ fine-grain turnoff" if self.fine_grain_turnoff
                  else "only")
        return f"{self.mapping.value}-mapping {suffix}"


@dataclass(frozen=True)
class TechniqueConfig:
    """Full DTM technique selection for one simulation."""

    issue_queue: IssueQueuePolicy = IssueQueuePolicy.BASE
    alus: ALUPolicy = ALUPolicy.BASE
    regfile: RegFilePolicy = field(default_factory=RegFilePolicy)

    @property
    def round_robin_alus(self) -> bool:
        return self.alus is ALUPolicy.ROUND_ROBIN


#: The paper's recommended configuration: all three techniques on.
ALL_TECHNIQUES = TechniqueConfig(
    issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING,
    alus=ALUPolicy.FINE_GRAIN,
    regfile=RegFilePolicy(MappingKind.PRIORITY, fine_grain_turnoff=True),
)

#: The conventional baseline: stall-on-overheat everywhere.
BASELINE = TechniqueConfig(
    issue_queue=IssueQueuePolicy.BASE,
    alus=ALUPolicy.BASE,
    regfile=RegFilePolicy(MappingKind.PRIORITY, fine_grain_turnoff=False),
)
