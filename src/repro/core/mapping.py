"""Register-file port mapping strategies (paper §2.3, Figure 4).

Processors replicate the register file so each copy needs fewer read
ports; every ALU's two read ports are *hard-wired* to one (or two)
copies.  Because ALUs are utilized asymmetrically (static select
priority), the choice of which ALUs wire to which copy decides how
heat distributes across copies:

* **Priority mapping** — all high-priority ALUs on copy 0, all
  low-priority ALUs on copy 1.  Concentrates reads in copy 0 (its
  ports run hot and *efficiently*); combined with fine-grain turnoff
  this achieves utilization symmetry both within and across copies —
  the paper's recommended, counter-intuitive design.
* **Balanced mapping** (simplified balanced) — interleaves priorities
  (ALUs 0,2,4 on copy 0; 1,3,5 on copy 1).  Heats the copies evenly
  (symmetric across copies) but leaves low-priority ports idle within
  each copy, so with fine-grain turnoff it wastes port bandwidth.
* **Completely-balanced mapping** — each ALU reads one operand from
  each copy.  Perfectly symmetric but needs long cross-chip wires, and
  fine-grain turnoff of one copy would block *every* ALU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class MappingKind(enum.Enum):
    PRIORITY = "priority"
    BALANCED = "balanced"
    COMPLETELY_BALANCED = "completely_balanced"


@dataclass(frozen=True)
class PortMapping:
    """Hard-wired assignment of each ALU's two read ports to copies.

    ``ports[alu]`` is a tuple of copy indices, one per read port.
    """

    kind: MappingKind
    n_alus: int
    n_copies: int
    ports: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.ports) != self.n_alus:
            raise ValueError("one port tuple required per ALU")
        for alu_ports in self.ports:
            if len(alu_ports) != 2:
                raise ValueError("each ALU has exactly two read ports")
            for copy in alu_ports:
                if not 0 <= copy < self.n_copies:
                    raise ValueError(f"copy index {copy} out of range")

    def copies_for(self, alu: int) -> Tuple[int, ...]:
        """Copy index accessed by each of the ALU's two read ports."""
        return self.ports[alu]

    def alus_on_copy(self, copy: int) -> List[int]:
        """ALUs with at least one read port wired to ``copy``.

        These are the ALUs that must be marked busy to turn the copy
        off (fine-grain turnoff, paper §2.3).
        """
        return [alu for alu, alu_ports in enumerate(self.ports)
                if copy in alu_ports]

    def read_ports_per_copy(self) -> List[int]:
        """Number of read ports wired to each copy."""
        counts = [0] * self.n_copies
        for alu_ports in self.ports:
            for copy in alu_ports:
                counts[copy] += 1
        return counts

    @property
    def supports_turnoff(self) -> bool:
        """Whether any single copy can be turned off while some ALU
        still has both its ports live (false for completely-balanced,
        where every ALU straddles both copies)."""
        all_alus = set(range(self.n_alus))
        return any(set(self.alus_on_copy(c)) != all_alus
                   for c in range(self.n_copies))


def priority_mapping(n_alus: int, n_copies: int = 2) -> PortMapping:
    """Group ALUs by select priority: ALUs ``[0, n/k)`` on copy 0, etc."""
    _validate(n_alus, n_copies)
    per_copy = n_alus // n_copies
    ports = tuple((alu // per_copy, alu // per_copy) for alu in range(n_alus))
    return PortMapping(MappingKind.PRIORITY, n_alus, n_copies, ports)


def balanced_mapping(n_alus: int, n_copies: int = 2) -> PortMapping:
    """Interleave priorities across copies (ALU ``i`` on copy ``i % k``)."""
    _validate(n_alus, n_copies)
    ports = tuple((alu % n_copies, alu % n_copies) for alu in range(n_alus))
    return PortMapping(MappingKind.BALANCED, n_alus, n_copies, ports)


def completely_balanced_mapping(n_alus: int, n_copies: int = 2) -> PortMapping:
    """One read port of every ALU on each copy (requires n_copies == 2)."""
    _validate(n_alus, n_copies)
    if n_copies != 2:
        raise ValueError("completely-balanced mapping is defined for "
                         "two copies (one port on each)")
    ports = tuple((0, 1) for _ in range(n_alus))
    return PortMapping(MappingKind.COMPLETELY_BALANCED, n_alus, n_copies,
                       ports)


_FACTORIES = {
    MappingKind.PRIORITY: priority_mapping,
    MappingKind.BALANCED: balanced_mapping,
    MappingKind.COMPLETELY_BALANCED: completely_balanced_mapping,
}


def make_mapping(kind: MappingKind, n_alus: int,
                 n_copies: int = 2) -> PortMapping:
    """Build a mapping of the given kind."""
    return _FACTORIES[kind](n_alus, n_copies)


def _validate(n_alus: int, n_copies: int) -> None:
    if n_copies < 1:
        raise ValueError("need at least one register-file copy")
    if n_alus < n_copies or n_alus % n_copies:
        raise ValueError("ALU count must be a positive multiple of the "
                         "copy count")
