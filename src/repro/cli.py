"""Command-line interface: run single simulations or paper experiments.

Examples::

    python -m repro run perlbmk --variant alu --alus fine_grain
    python -m repro figure 7 --benchmarks perlbmk,parser --cycles 80000
    python -m repro list
    python -m repro lint src/ tests/
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pstats
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

from .analysis import lint as analysis_lint
from .core.mapping import MappingKind
from .core.policies import (ALUPolicy, IssueQueuePolicy, RegFilePolicy,
                            TechniqueConfig)
from .obs import report as obs_report
from .pipeline.accel import accel_compile_s, active_backend
from .sim.checkpoint import CheckpointStore
from .sim.experiments import (alu_experiment, issue_queue_experiment,
                              regfile_experiment)
from .sim.parallel import ExperimentEngine, ResultCache, default_jobs
from .sim.runner import SimulationConfig, Simulator, run_simulation
from .thermal.floorplan import FloorplanVariant
from .workloads.spec2000 import BENCHMARK_NAMES, PROFILES


def _parse_benchmarks(text: str) -> List[str]:
    names = [n.strip() for n in text.split(",") if n.strip()]
    for name in names:
        if name not in PROFILES:
            raise SystemExit(f"unknown benchmark {name!r}; see "
                             f"'python -m repro list'")
    return names


#: CLI spellings of the accelerator backend request (``--accel``),
#: mirrored verbatim into ``REPRO_ACCEL`` — see
#: :func:`repro.pipeline.accel.resolve_backend` for the semantics.
ACCEL_CHOICES = ("auto", "numba", "numpy", "0")


def _apply_accel(args: argparse.Namespace) -> None:
    """Mirror ``--accel`` into ``REPRO_ACCEL`` for this process (worker
    processes inherit the environment, so pool runs follow suit)."""
    if getattr(args, "accel", None):
        os.environ["REPRO_ACCEL"] = args.accel


def _git_commit() -> str:
    """Short commit hash for bench provenance, ``unknown`` outside a
    checkout (installed package, tarball)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except OSError:
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _timed_best_of(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``, preceded by
    one untimed warmup call.

    The warmup call eats every first-invocation effect — accelerator
    JIT compilation, trace materialization, interpreter cache warming —
    so the timed windows measure steady-state execution only (asserted
    in ``tests/pipeline/test_accel.py``).  Compile time is reported
    separately via :func:`repro.pipeline.accel.accel_compile_s`.
    """
    fn()
    walls = []
    for _ in range(repeats):
        # Collect the previous run's garbage outside the timed window
        # (the simulator pauses the GC while cycling); best-of-N
        # rejects scheduler noise on shared machines.
        gc.collect()
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _cmd_list(_: argparse.Namespace) -> int:
    print(f"{'benchmark':10s} {'type':5s} {'ILP':>5s} {'L1 miss':>8s} "
          f"{'mispredict':>11s}")
    for name in BENCHMARK_NAMES:
        profile = PROFILES[name]
        kind = "fp" if profile.fp_fraction > 0 else "int"
        print(f"{name:10s} {kind:5s} {profile.dep_mean:5.1f} "
              f"{profile.l1_miss:8.2f} {profile.mispredict_rate:11.2f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_accel(args)
    techniques = TechniqueConfig(
        issue_queue=IssueQueuePolicy(args.issue_queue),
        alus=ALUPolicy(args.alus),
        regfile=RegFilePolicy(MappingKind(args.mapping),
                              fine_grain_turnoff=args.rf_turnoff))
    config = SimulationConfig(
        benchmark=args.benchmark,
        variant=FloorplanVariant(args.variant),
        techniques=techniques,
        max_cycles=args.cycles,
        seed=args.seed,
        sanitize=args.sanitize,
        trace_events=bool(args.trace or args.trace_out))
    simulator = Simulator(config)
    result = simulator.run()
    print(f"benchmark:      {result.benchmark}")
    print(f"techniques:     {config.label()}")
    print(f"backend:        {active_backend()}")
    print(f"IPC:            {result.ipc:.3f}")
    print(f"committed:      {result.committed} in {result.cycles} cycles")
    print(f"cooling stalls: {result.global_stalls} "
          f"({result.stall_cycles} cycles) {result.stall_reasons}")
    print(f"IQ toggles:     {result.iq_toggles}")
    print(f"ALU turnoffs:   {result.alu_turnoffs}")
    print(f"RF turnoffs:    {result.rf_turnoffs}")
    hottest = sorted(result.mean_temps.items(), key=lambda kv: -kv[1])[:8]
    print("hottest blocks (mean K / max K):")
    for name, mean in hottest:
        print(f"  {name:10s} {mean:7.2f} / {result.max_temps[name]:7.2f}")
    collector = simulator.collector
    if collector is not None:
        print(f"trace:          {collector.summary()}")
        if args.trace_out:
            count = collector.export_jsonl(args.trace_out)
            print(f"trace written:  {count} event(s) to {args.trace_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return analysis_lint.main(args.lint_args)


_EXPERIMENTS = {
    "6": issue_queue_experiment,
    "7": alu_experiment,
    "8": regfile_experiment,
}


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _EXPERIMENTS[args.number]
    benchmarks = (_parse_benchmarks(args.benchmarks)
                  if args.benchmarks else tuple(BENCHMARK_NAMES))
    engine = ExperimentEngine(jobs=args.jobs)
    experiment = runner(benchmarks=benchmarks, max_cycles=args.cycles,
                        seed=args.seed, engine=engine)
    print(experiment.format())
    stats = engine.stats
    print(f"\n[{stats.total} runs: {stats.cache_hits} cached, "
          f"{stats.batched_runs} batched, "
          f"{stats.parallel_runs} parallel, {stats.inline_runs} inline; "
          f"jobs={engine.jobs}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the figure grids as a Markdown or HTML report.

    Runs go through the caching engine, so a report over cached grids
    re-renders without simulating; pass ``--output -`` to print to
    stdout instead of writing a file.
    """
    figures = [f.strip() for f in args.figures.split(",") if f.strip()]
    for figure in figures:
        if figure not in obs_report.FIGURES:
            raise SystemExit(f"unknown figure {figure!r}; choose from "
                             f"{sorted(obs_report.FIGURES)}")
    benchmarks = (_parse_benchmarks(args.benchmarks)
                  if args.benchmarks else None)
    engine = ExperimentEngine(jobs=args.jobs)
    report = obs_report.generate(
        figures=figures, benchmarks=benchmarks, max_cycles=args.cycles,
        seed=args.seed, engine=engine)
    rendered = (report.to_html() if args.format == "html"
                else report.to_markdown())
    if args.output == "-":
        print(rendered, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        stats = engine.stats
        print(f"report written to {args.output} "
              f"[{stats.total} runs: {stats.cache_hits} cached, "
              f"{stats.batched_runs} batched, "
              f"{stats.parallel_runs} parallel, "
              f"{stats.inline_runs} inline]")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache()
    checkpoints = CheckpointStore(cache.root / "checkpoints")
    if args.action == "clear":
        if args.checkpoints:
            removed = checkpoints.clear()
            print(f"removed {removed} checkpoint(s) from "
                  f"{checkpoints.root}")
            return 0
        removed = cache.clear()
        ckpt_removed = checkpoints.clear()
        print(f"removed {removed} cached result(s) and {ckpt_removed} "
              f"checkpoint(s) from {cache.root}")
        return 0
    info = cache.info()
    ckpt = checkpoints.info()
    print(f"cache root:  {info.root}")
    print(f"results:     {info.entries} entries, "
          f"{info.size_bytes / 1024:.1f} KiB")
    print(f"checkpoints: {ckpt.entries} entries, "
          f"{ckpt.size_bytes / 1024:.1f} KiB")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation under cProfile and print hot spots."""
    config = SimulationConfig(
        benchmark=args.benchmark,
        variant=FloorplanVariant(args.variant),
        max_cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed)
    simulator = Simulator(config)
    profiler = cProfile.Profile()
    result = profiler.runcall(simulator.run)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    print(f"IPC {result.ipc:.3f} over {result.cycles} measured cycles")
    total = sum(simulator.stage_times.values()) or 1.0
    print("stage wall-clock breakdown:")
    for name, seconds in sorted(simulator.stage_times.items()):
        print(f"  {name:10s} {seconds:8.3f}s ({seconds / total:5.1%})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time the paper-figure grids through the execution engine.

    Each grid is measured three ways: cold through the worker pool at
    ``jobs > 1`` (the requested job count, floored at 2 so the bench
    always exercises parallel dispatch), once more against the
    now-warm cache, and cold again serially at ``jobs=1`` — so the
    report's ``serial_wall_s``/``parallel_speedup`` fields capture the
    parallel scaling trajectory on every run.  The serial pass runs
    compatible runs through the batched kernel, and its all-runs
    throughput is reported as ``grid_cycles_per_s`` alongside the
    per-run ``cycles_per_s`` metrics.  The measurements land in a
    JSON report (default ``BENCH_parallel.json``).

    Each report is also appended as one JSON line to a history file
    (default ``BENCH_history.jsonl``) with commit, accelerator-backend,
    and config provenance, so the performance trajectory survives the
    per-PR snapshot overwrite.  Accelerator compile time (numba's
    one-time JIT cost) is absorbed by untimed warmup calls and broken
    out as ``accel_compile_s`` rather than polluting any timed window.
    """
    _apply_accel(args)
    benchmarks = (_parse_benchmarks(args.benchmarks)
                  if args.benchmarks else tuple(BENCHMARK_NAMES))
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 2:
        jobs = 2
    figures = [f.strip() for f in args.figures.split(",") if f.strip()]
    for figure in figures:
        if figure not in _EXPERIMENTS:
            raise SystemExit(f"unknown figure {figure!r}; "
                             f"choose from {sorted(_EXPERIMENTS)}")

    report: Dict[str, Any] = {
        "jobs": jobs,
        "cycles": args.cycles,
        "benchmarks": list(benchmarks),
        "accel_backend": active_backend(),
        "grids": [],
    }

    single_cycles = args.cycles
    config = SimulationConfig(
        benchmark=benchmarks[0], variant=FloorplanVariant.ALU,
        techniques=TechniqueConfig(alus=ALUPolicy.FINE_GRAIN),
        max_cycles=single_cycles)
    single_wall = _timed_best_of(lambda: run_simulation(config))
    # The warmup inside _timed_best_of triggered (and timed) any JIT
    # compilation; surface it next to — never inside — the timings.
    report["accel_compile_s"] = accel_compile_s()
    report["single_run"] = {
        "benchmark": benchmarks[0],
        "cycles": single_cycles,
        "wall_s": single_wall,
        "cycles_per_s": single_cycles / single_wall,
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        for figure in figures:
            runner = _EXPERIMENTS[figure]
            engine = ExperimentEngine(jobs=jobs,
                                      cache=ResultCache(tmp))
            start = time.perf_counter()
            runner(benchmarks=benchmarks, max_cycles=args.cycles,
                   seed=args.seed, engine=engine)
            cold_wall = time.perf_counter() - start
            runs = engine.stats.total
            total_cycles = runs * args.cycles
            # Snapshot cold-run accounting before the warm rerun adds
            # cache hits on top of it.
            stage_seconds = engine.stats.stage_seconds()
            restores = engine.stats.checkpoint_restores
            captures = engine.stats.checkpoint_captures

            start = time.perf_counter()
            runner(benchmarks=benchmarks, max_cycles=args.cycles,
                   seed=args.seed, engine=engine)
            warm_wall = time.perf_counter() - start

            grid: Dict[str, Any] = {
                "figure": figure,
                "runs": runs,
                "jobs": engine.jobs,
                "total_cycles": total_cycles,
                "wall_s": cold_wall,
                "cycles_per_s": total_cycles / cold_wall,
                "warm_wall_s": warm_wall,
                "cache_hit_rate": engine.stats.cache_hit_rate,
                "stage_seconds": stage_seconds,
                "checkpoint_restores": restores,
                "checkpoint_captures": captures,
            }
            serial = ExperimentEngine(jobs=1, use_cache=False,
                                      use_checkpoints=False)
            start = time.perf_counter()
            runner(benchmarks=benchmarks, max_cycles=args.cycles,
                   seed=args.seed, engine=serial)
            serial_wall = time.perf_counter() - start
            grid["serial_wall_s"] = serial_wall
            grid["parallel_speedup"] = serial_wall / cold_wall
            # Grid throughput counts every run in flight: the serial
            # cold pass executes compatible runs through the batched
            # kernel (one invocation per warm-state group), so this is
            # the honest all-runs metric next to the per-run
            # ``cycles_per_s`` of ``single_run``.
            grid["grid_cycles_per_s"] = total_cycles / serial_wall
            grid["batched_runs"] = serial.stats.batched_runs
            grid["batch_groups"] = serial.stats.batch_groups
            # Divergence accounting from the batched serial pass plus
            # pool-side dispatch accounting from the cold parallel one.
            grid["fork_count"] = serial.stats.fork_count
            grid["merge_count"] = serial.stats.merge_count
            grid["batch_class_occupancy"] = {
                str(size): waves for size, waves in
                sorted(serial.stats.batch_class_occupancy.items())}
            grid["offloaded_runs"] = engine.stats.offloaded_runs
            grid["pool_fallbacks"] = engine.stats.pool_fallbacks
            report["grids"].append(grid)
            line = (f"figure {figure}: {runs} runs, "
                    f"{cold_wall:.2f}s cold "
                    f"({grid['cycles_per_s']:,.0f} cycles/s), "
                    f"{warm_wall:.3f}s cached "
                    f"(hit rate {grid['cache_hit_rate']:.0%}), "
                    f"{restores} ckpt restore(s)")
            line += (f", {grid['serial_wall_s']:.2f}s serial "
                     f"({grid['parallel_speedup']:.2f}x, "
                     f"{grid['grid_cycles_per_s']:,.0f} grid cycles/s, "
                     f"{grid['batched_runs']} runs in "
                     f"{grid['batch_groups']} batch(es), "
                     f"{grid['fork_count']} fork(s), "
                     f"{grid['merge_count']} merge(s))")
            print(line)
            if grid["parallel_speedup"] < 1.0:
                print(f"WARNING: figure {figure}: pool dispatch at "
                      f"jobs={jobs} ran SLOWER than batched serial "
                      f"({grid['parallel_speedup']:.2f}x; "
                      f"{grid['pool_fallbacks']} wave(s) already fell "
                      f"back inline). Treat wall_s/cycles_per_s as a "
                      f"regression signal, not a parallel win.",
                      file=sys.stderr)

    print(f"accel backend: {report['accel_backend']}"
          + (f" (compile {report['accel_compile_s']:.2f}s, "
             f"excluded from timed windows)"
             if report["accel_compile_s"] else ""))
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {args.output}")
    if args.history:
        entry = {
            "written_at": time.strftime("%Y-%m-%dT%H:%M:%S",
                                        time.gmtime()) + "Z",
            "commit": _git_commit(),
            "accel_backend": report["accel_backend"],
            "accel_compile_s": report["accel_compile_s"],
            "config": {"figures": figures,
                       "benchmarks": list(benchmarks),
                       "cycles": args.cycles, "seed": args.seed,
                       "jobs": jobs},
            "single_run": report["single_run"],
            "grids": [{key: grid[key] for key in
                       ("figure", "runs", "wall_s", "cycles_per_s",
                        "serial_wall_s", "grid_cycles_per_s",
                        "parallel_speedup", "batched_runs",
                        "batch_groups", "fork_count", "merge_count",
                        "offloaded_runs", "pool_fallbacks")}
                      for grid in report["grids"]],
        }
        with open(args.history, "a") as handle:
            json.dump(entry, handle, separators=(",", ":"))
            handle.write("\n")
        print(f"history appended to {args.history}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Balancing Resource Utilization to "
                    "Mitigate Power Density in Processor Pipelines' "
                    "(MICRO 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list workload models")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run_p.add_argument("--variant", default="base",
                       choices=[v.value for v in FloorplanVariant])
    run_p.add_argument("--issue-queue", default="base",
                       choices=[p.value for p in IssueQueuePolicy])
    run_p.add_argument("--alus", default="base",
                       choices=[p.value for p in ALUPolicy])
    run_p.add_argument("--mapping", default="priority",
                       choices=[m.value for m in MappingKind])
    run_p.add_argument("--rf-turnoff", action="store_true")
    run_p.add_argument("--cycles", type=int, default=100_000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--sanitize", action="store_true",
                       help="install runtime invariant checks "
                            "(see repro.analysis.sanitize)")
    run_p.add_argument("--trace", action="store_true",
                       help="collect cycle-stamped DTM events and "
                            "print a per-kind summary")
    run_p.add_argument("--trace-out", default="", metavar="PATH",
                       help="write collected events as JSON Lines to "
                            "PATH (implies --trace)")
    run_p.add_argument("--accel", default=None, choices=ACCEL_CHOICES,
                       help="accelerator backend (mirrors REPRO_ACCEL: "
                            "auto = numba when installed else the "
                            "Python kernel; numpy = the lowered "
                            "interpreter without JIT; 0 = off)")
    run_p.set_defaults(func=_cmd_run)

    fig_p = sub.add_parser("figure",
                           help="reproduce one of the paper's figures")
    fig_p.add_argument("number", choices=sorted(_EXPERIMENTS))
    fig_p.add_argument("--benchmarks", default="",
                       help="comma-separated subset (default: all 22)")
    fig_p.add_argument("--cycles", type=int, default=100_000)
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or "
                            "all cores; 1 = inline)")
    fig_p.set_defaults(func=_cmd_figure)

    bench_p = sub.add_parser(
        "bench", help="time the figure grids through the parallel "
                      "engine and write a JSON report")
    bench_p.add_argument("--figures", default="6,7,8",
                         help="comma-separated figure numbers "
                              "(default: 6,7,8)")
    bench_p.add_argument("--benchmarks", default="",
                         help="comma-separated subset (default: all 22)")
    bench_p.add_argument("--cycles", type=int, default=100_000)
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS "
                              "or all cores; floored at 2 so the bench "
                              "always exercises parallel dispatch)")
    bench_p.add_argument("--compare-serial", action="store_true",
                         help="deprecated no-op: the serial comparison "
                              "now always runs")
    bench_p.add_argument("--output", default="BENCH_parallel.json",
                         help="report path (default: "
                              "BENCH_parallel.json)")
    bench_p.add_argument("--history", default="BENCH_history.jsonl",
                         help="JSONL history file each report is "
                              "appended to with commit/backend/config "
                              "provenance; '' disables (default: "
                              "BENCH_history.jsonl)")
    bench_p.add_argument("--accel", default=None, choices=ACCEL_CHOICES,
                         help="accelerator backend (mirrors "
                              "REPRO_ACCEL; recorded in the report's "
                              "accel_backend field)")
    bench_p.set_defaults(func=_cmd_bench)

    report_p = sub.add_parser(
        "report", help="render the figure grids as a Markdown or HTML "
                       "report (cached results re-render without "
                       "re-simulating)")
    report_p.add_argument("--figures", default="6,7,8",
                          help="comma-separated figure numbers "
                               "(default: 6,7,8)")
    report_p.add_argument("--benchmarks", default="",
                          help="comma-separated subset (default: all 22)")
    report_p.add_argument("--cycles", type=int, default=100_000)
    report_p.add_argument("--seed", type=int, default=1)
    report_p.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS "
                               "or all cores; 1 = inline)")
    report_p.add_argument("--format", default="md",
                          choices=("md", "html"),
                          help="output format (default: md)")
    report_p.add_argument("--output", default="REPORT.md",
                          help="output path, or '-' for stdout "
                               "(default: REPORT.md)")
    report_p.set_defaults(func=_cmd_report)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk result and "
                      "checkpoint caches")
    cache_p.add_argument("action", choices=("info", "clear"))
    cache_p.add_argument("--checkpoints", action="store_true",
                         help="clear only warm-state checkpoints, "
                              "keeping cached results")
    cache_p.set_defaults(func=_cmd_cache)

    profile_p = sub.add_parser(
        "profile", help="profile one simulation run (cProfile) and "
                        "print the hottest functions plus the "
                        "per-stage wall-clock breakdown")
    profile_p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    profile_p.add_argument("--variant", default="base",
                           choices=[v.value for v in FloorplanVariant])
    profile_p.add_argument("--cycles", type=int, default=60_000)
    profile_p.add_argument("--warmup", type=int, default=12_000)
    profile_p.add_argument("--seed", type=int, default=1)
    profile_p.add_argument("--top", type=int, default=25,
                           help="functions to print, by cumulative "
                                "time (default: 25)")
    profile_p.set_defaults(func=_cmd_profile)

    lint_p = sub.add_parser(
        "lint", help="run repro-lint static analysis (REP001-REP007 "
                     "shallow; REP101-REP104 semantic with --deep)",
        add_help=False)
    lint_p.add_argument("lint_args", nargs=argparse.REMAINDER,
                        help="arguments for repro.analysis.lint "
                             "(paths, --select, --deep, --sarif, "
                             "--format, --stats, --list-rules)")
    lint_p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Hand everything after "lint" to the linter's own parser so
        # its options need no mirroring here.
        return analysis_lint.main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
