"""Runtime sanitizer: cheap cross-substrate invariants for full runs.

The simulator's substrates (core, power accountant, RC thermal model,
DTM controller) exchange plain floats and dicts; a bookkeeping bug in
any of them produces *plausible* numbers, not crashes.  The sanitizer
wraps the seams between substrates with invariant checks that hold for
every correct run:

* **energy conservation** — per sample, the per-block energies the
  accountant hands the thermal model sum to the accountant's own
  running energy total (±ε): no block's heat is dropped or counted
  twice between activity counters and the power vector;
* **temperature sanity** — no block below ambient or above 450 K (the
  RC network only heats, and silicon past ~450 K means the model, not
  the chip, has failed);
* **queue coherence** — issue-queue and active-list occupancy within
  capacity, and no micro-op present twice across the int/FP queues or
  the active list;
* **register-file coherence** — the port mapping stays a cover (and,
  for partitioned mappings, a partition) of the ALUs, and every ALU
  wired to a turned-off copy is marked busy;
* **no issue to turned-off units** — a functional unit never receives
  work while its fine-grain turnoff flag is raised.

Enable with ``REPRO_SANITIZE=1`` in the environment or
``SimulationConfig(sanitize=True)``; a violation raises
:class:`SanitizerError` immediately, naming the invariant.  Overhead
is one pass over the back-end structures per *sensing interval* (every
250 cycles by default), not per cycle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Set

from ..core.mapping import MappingKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..pipeline.processor import Processor
    from ..sim.runner import Simulator

#: Hard physical ceiling for any modelled temperature.  The DTM
#: ceiling (358 K) is a policy; this is "the model has diverged".
TEMP_CEILING_K = 450.0


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitized runs."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


class SanitizerError(AssertionError):
    """An invariant of the simulation was violated."""

    def __init__(self, invariant: str, message: str) -> None:
        self.invariant = invariant
        super().__init__(f"[{invariant}] {message}")


@dataclass
class SanitizerStats:
    """How much checking a sanitized run actually performed."""

    samples: int = 0
    energy_checks: int = 0
    temperature_checks: int = 0
    queue_checks: int = 0
    regfile_checks: int = 0
    issue_checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def total_checks(self) -> int:
        return (self.energy_checks + self.temperature_checks
                + self.queue_checks + self.regfile_checks
                + self.issue_checks)


class Sanitizer:
    """Installs invariant hooks into one :class:`Simulator`'s parts.

    The hooks are plain attribute shadows over the bound methods of the
    *instances* being watched, so an un-sanitized run pays nothing and
    the production classes carry no checking code.
    """

    def __init__(self, energy_rel_tol: float = 1e-9,
                 energy_abs_tol_j: float = 1e-15,
                 temp_ceiling_k: float = TEMP_CEILING_K) -> None:
        self.energy_rel_tol = energy_rel_tol
        self.energy_abs_tol_j = energy_abs_tol_j
        self.temp_ceiling_k = temp_ceiling_k
        self.stats = SanitizerStats()
        self._last_total_j = 0.0
        self._last_block_sum_j = 0.0

    # ------------------------------------------------------------------
    def attach(self, simulator: "Simulator") -> None:
        """Hook the accountant, thermal model, DTM and functional
        units of ``simulator``."""
        self._watch_accountant(simulator.accountant)
        self._watch_thermal(simulator.thermal)
        self._watch_dtm(simulator.dtm, simulator.processor)
        self._watch_units(simulator.processor)

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str) -> None:
        self.stats.violations.append(f"{invariant}: {message}")
        raise SanitizerError(invariant, message)

    def _watch_accountant(self, accountant: Any) -> None:
        original_sample = accountant.sample
        original_sample_powers = accountant.sample_powers

        def sample(snapshot: Any, interval_s: float) -> Dict[str, float]:
            powers = original_sample(snapshot, interval_s)
            self._check_energy(accountant)
            return powers

        def sample_powers(snapshot: Any, interval_s: float) -> Any:
            powers = original_sample_powers(snapshot, interval_s)
            self._check_energy(accountant)
            return powers

        accountant.sample = sample
        accountant.sample_powers = sample_powers

    def _check_energy(self, accountant: Any) -> None:
        self.stats.energy_checks += 1
        total_j = accountant.total_energy_j
        block_sum_j = sum(accountant.block_energy_j.values())
        delta_total = total_j - self._last_total_j
        delta_blocks = block_sum_j - self._last_block_sum_j
        self._last_total_j = total_j
        self._last_block_sum_j = block_sum_j
        tolerance = (self.energy_abs_tol_j
                     + self.energy_rel_tol * max(abs(delta_total),
                                                 abs(delta_blocks)))
        if abs(delta_total - delta_blocks) > tolerance:
            self._fail(
                "energy_conservation",
                f"sample {self.stats.energy_checks}: per-block energies "
                f"sum to {delta_blocks:.6e} J but the accountant total "
                f"moved {delta_total:.6e} J "
                f"(diff {delta_total - delta_blocks:.3e} J)")

    def _watch_thermal(self, thermal: Any) -> None:
        original_step = thermal.step
        original_init = thermal.initialize_steady_state

        original_step_vector = thermal.step_vector

        def step(powers: Mapping[str, float], dt: float) -> None:
            original_step(powers, dt)
            self._check_temperatures(thermal, "after step")

        def step_vector(die_powers: Any, dt: float) -> None:
            original_step_vector(die_powers, dt)
            self._check_temperatures(thermal, "after step")

        def initialize_steady_state(powers: Mapping[str, float]) -> None:
            original_init(powers)
            self._check_temperatures(thermal, "after steady-state init")

        thermal.step = step
        thermal.step_vector = step_vector
        thermal.initialize_steady_state = initialize_steady_state

    def _check_temperatures(self, thermal: Any, where: str) -> None:
        self.stats.temperature_checks += 1
        floor_k = thermal.ambient_k - 1e-6
        for name, temp_k in thermal.temperatures().items():
            if temp_k < floor_k:
                self._fail(
                    "temperature_bounds",
                    f"{name} at {temp_k:.3f} K is below ambient "
                    f"{thermal.ambient_k:.3f} K {where}")
            if temp_k > self.temp_ceiling_k:
                self._fail(
                    "temperature_bounds",
                    f"{name} at {temp_k:.3f} K exceeds the "
                    f"{self.temp_ceiling_k:.0f} K physical ceiling "
                    f"{where}")

    def _watch_dtm(self, dtm: Any, processor: "Processor") -> None:
        original_on_sample = dtm.on_sample

        def on_sample(proc: "Processor") -> None:
            original_on_sample(proc)
            self.stats.samples += 1
            self._check_queues(processor)
            self._check_regfile(processor)

        dtm.on_sample = on_sample

    def _check_queues(self, processor: "Processor") -> None:
        self.stats.queue_checks += 1
        seen: Dict[int, str] = {}
        for label, queue in (("int_iq", processor.int_iq),
                             ("fp_iq", processor.fp_iq)):
            occupancy = len(queue)
            if not 0 <= occupancy <= queue.n_entries:
                self._fail(
                    "queue_occupancy",
                    f"{label} occupancy {occupancy} outside "
                    f"[0, {queue.n_entries}]")
            for entry in queue.slots:
                if entry is None:
                    continue
                seq = entry.op.seq
                if seq in seen:
                    self._fail(
                        "queue_duplicates",
                        f"uop seq {seq} present in both {seen[seq]} "
                        f"and {label}")
                seen[seq] = label
        rob = processor.rob
        occupancy = len(rob)
        if not 0 <= occupancy <= rob.capacity:
            self._fail("queue_occupancy",
                       f"active list occupancy {occupancy} outside "
                       f"[0, {rob.capacity}]")
        rob_seqs: Set[int] = set()
        live_entries = 0
        for entry in rob._entries:
            if entry is None:
                continue
            live_entries += 1
            seq = entry.op.seq
            if seq in rob_seqs:
                self._fail("queue_duplicates",
                           f"uop seq {seq} allocated twice in the "
                           f"active list")
            rob_seqs.add(seq)
        if live_entries != occupancy:
            self._fail("queue_occupancy",
                       f"active list count {occupancy} disagrees with "
                       f"{live_entries} live entries")
        lsq = processor.lsq
        if not 0 <= len(lsq) <= lsq.capacity:
            self._fail("queue_occupancy",
                       f"LSQ occupancy {len(lsq)} outside "
                       f"[0, {lsq.capacity}]")

    def _check_regfile(self, processor: "Processor") -> None:
        self.stats.regfile_checks += 1
        mapping = processor.mapping
        all_alus = set(range(mapping.n_alus))
        covered: Set[int] = set()
        total_memberships = 0
        for copy in range(mapping.n_copies):
            members = mapping.alus_on_copy(copy)
            covered.update(members)
            total_memberships += len(members)
        if covered != all_alus:
            self._fail("regfile_mapping",
                       f"port mapping covers ALUs {sorted(covered)}, "
                       f"not all of {sorted(all_alus)}")
        if (mapping.kind is not MappingKind.COMPLETELY_BALANCED
                and total_memberships != len(all_alus)):
            self._fail("regfile_mapping",
                       f"{mapping.kind.value} mapping is not a "
                       f"partition: {total_memberships} memberships "
                       f"for {len(all_alus)} ALUs")
        regfile = processor.regfile
        off_copies = {c for c in range(regfile.n_copies)
                      if regfile.is_off(c)}
        expected_blocked: Set[int] = set()
        for copy in sorted(off_copies):
            expected_blocked.update(mapping.alus_on_copy(copy))
        actual_blocked = regfile.blocked_alus()
        if actual_blocked != expected_blocked:
            self._fail("regfile_mapping",
                       f"blocked ALUs {sorted(actual_blocked)} disagree "
                       f"with turned-off copies {sorted(off_copies)} "
                       f"(expected {sorted(expected_blocked)})")
        for alu in sorted(expected_blocked):
            if not processor.int_alus[alu].busy:
                self._fail(
                    "regfile_turnoff",
                    f"ALU {alu} reads turned-off register-file "
                    f"copy(ies) {sorted(off_copies)} but is not marked "
                    f"busy — the DTM could issue to it")

    def _watch_units(self, processor: "Processor") -> None:
        for unit in processor._all_units:
            self._watch_unit(unit)

    def _watch_unit(self, unit: Any) -> None:
        original_start = unit.start

        def start(op: Any, rob_index: int, now: int,
                  extra_latency: int = 0) -> int:
            self.stats.issue_checks += 1
            if unit.busy:
                self._fail(
                    "issue_to_off_unit",
                    f"{unit.name} received uop seq {op.seq} while its "
                    f"fine-grain turnoff flag is raised")
            return original_start(op, rob_index, now,
                                  extra_latency=extra_latency)

        unit.start = start
