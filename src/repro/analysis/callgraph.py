"""Project-wide analysis infrastructure: module index, symbol table,
call graph.

The deep semantic rules (:mod:`repro.analysis.semantic`) need facts no
single file can provide — "is this function reachable from the DTM's
``on_sample`` hook?", "which counters does the kernel's flush land?".
This module builds those facts **once per lint run** from the same
parsed :class:`~repro.analysis.rules.FileContext` objects the shallow
REP0xx rules consume, so every file is read and parsed exactly once no
matter how many rules run.

Resolution model
----------------
Python has no static dispatch, so the call graph is a deliberate
over-approximation (in the permissive direction — reachability grows,
contract rules get *less* eager to fire):

* a call ``f(...)`` / ``obj.f(...)`` links to **every** project
  function whose simple name is ``f`` (class-hierarchy-agnostic, like
  rapid type analysis without the type feedback);
* function *references* are tracked through an alias map: a lambda or
  ``obj.method`` passed as a call argument or stored in an attribute
  (``turn_off=lambda i: ...``, ``self._cb = callback``) records the
  receiving name, so a later call through that name
  (``self._cb(x)``) links to the referenced functions — this is how
  DTM gating callbacks stay on the graph;
* calls through computed expressions (``handlers[i](x)``) link to
  every **address-taken** function (one whose reference escapes) plus
  every lambda;
* calls whose name matches nothing in the project (``np.zeros``,
  ``handle.write``) are external and contribute no edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import FileContext

__all__ = ["FunctionInfo", "ProjectIndex", "CallGraph",
           "build_project_index"]

#: Builtin names never treated as project call targets even when a
#: project function shadows them somewhere.
_BUILTIN_NAMES = frozenset({
    "len", "range", "print", "min", "max", "abs", "sum", "sorted",
    "enumerate", "zip", "isinstance", "float", "int", "str", "bool",
    "list", "dict", "set", "tuple", "frozenset", "getattr", "setattr",
    "hasattr", "super", "iter", "next", "open", "repr", "format", "id",
    "type", "vars", "round", "any", "all", "map", "filter",
})


@dataclass
class FunctionInfo:
    """One function (or lambda) definition in the project."""

    qualname: str               #: ``path::Class.method`` / ``path::f``
    name: str                   #: simple name (``method``)
    path: str                   #: posix path of the defining file
    class_name: Optional[str]   #: enclosing class, if any
    node: ast.AST               #: FunctionDef / AsyncFunctionDef / Lambda
    lineno: int = 0
    is_lambda: bool = False

    @property
    def method_key(self) -> str:
        """``Class.name`` (or bare ``name`` at module level)."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ProjectIndex:
    """Everything the deep pass knows about the project, parsed once.

    ``contexts`` are the exact objects the shallow pass linted — the
    index never re-reads or re-parses a file.
    """

    contexts: Tuple[FileContext, ...]
    #: qualname -> FunctionInfo for every def/lambda in the project.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: simple name -> every FunctionInfo sharing it.
    by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    #: class name -> posix paths defining it (symbol table).
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: (path, lineno) -> lambda FunctionInfo, for reference tracking.
    lambdas_at: Dict[Tuple[str, int], FunctionInfo] = field(
        default_factory=dict)

    def functions_matching(self, name: str,
                           class_name: Optional[str] = None,
                           path_suffix: str = "") -> List[FunctionInfo]:
        """Functions with simple name ``name``, optionally restricted
        to a class and/or a posix-path suffix."""
        out = []
        for info in self.by_name.get(name, []):
            if class_name is not None and info.class_name != class_name:
                continue
            if path_suffix and not info.path.endswith(path_suffix):
                continue
            out.append(info)
        return out


def _collect_functions(ctx: FileContext) -> List[FunctionInfo]:
    """Every def / lambda in one file, with class attribution."""
    infos: List[FunctionInfo] = []
    path = ctx.posix_path

    def visit(node: ast.AST, class_name: Optional[str],
              scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name, f"{scope}{child.name}.")
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                qual = f"{path}::{scope}{child.name}"
                infos.append(FunctionInfo(
                    qualname=qual, name=child.name, path=path,
                    class_name=class_name, node=child,
                    lineno=child.lineno))
                visit(child, class_name, f"{scope}{child.name}.")
            elif isinstance(child, ast.Lambda):
                qual = f"{path}::{scope}<lambda:{child.lineno}>"
                infos.append(FunctionInfo(
                    qualname=qual, name=f"<lambda:{child.lineno}>",
                    path=path, class_name=class_name, node=child,
                    lineno=child.lineno, is_lambda=True))
                visit(child, class_name, scope)
            else:
                visit(child, class_name, scope)

    visit(ctx.tree, None, "")
    return infos


def build_project_index(
        contexts: Sequence[FileContext]) -> ProjectIndex:
    """Build the symbol table over already-parsed file contexts."""
    index = ProjectIndex(contexts=tuple(contexts))
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                index.classes.setdefault(node.name, []).append(
                    ctx.posix_path)
        for info in _collect_functions(ctx):
            index.functions[info.qualname] = info
            index.by_name.setdefault(info.name, []).append(info)
            if info.is_lambda:
                index.lambdas_at[(info.path, info.lineno)] = info
    return index


def _direct_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's body without descending into nested function
    definitions or lambdas (those are separate call-graph nodes)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The name an expression dispatches on: ``f`` for ``f``/``a.f``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class CallGraph:
    """Name-resolved call graph over a :class:`ProjectIndex`."""

    #: Pseudo-target for computed calls (``handlers[i](x)``); resolved
    #: to the address-taken set during reachability.
    UNKNOWN = "<unknown-callable>"

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: qualname -> direct call targets (qualnames / UNKNOWN).
        self.edges: Dict[str, Set[str]] = {}
        #: Functions whose reference escapes (plus all lambdas).
        self.address_taken: Set[str] = set()
        #: name -> function qualnames the name may hold (callback
        #: slots: ``turn_off=...`` keywords, ``self._cb = ...`` stores).
        self.aliases: Dict[str, Set[str]] = {}
        self._func_ranges = self._build_ranges()
        self._build_aliases()
        self._build_edges()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_ranges(self) -> Dict[str, List[FunctionInfo]]:
        by_path: Dict[str, List[FunctionInfo]] = {}
        for info in self.index.functions.values():
            by_path.setdefault(info.path, []).append(info)
        return by_path

    def _ref_targets(self, node: ast.AST,
                     path: str) -> Optional[Set[str]]:
        """Qualnames a *reference expression* may denote: a lambda, or
        a name/attribute matching project functions or a known alias.
        None when the expression is not a function reference."""
        if isinstance(node, ast.Lambda):
            info = self.index.lambdas_at.get((path, node.lineno))
            return {info.qualname} if info else None
        name = _terminal_name(node)
        if name is None:
            return None
        out: Set[str] = set()
        for info in self.index.by_name.get(name, []):
            out.add(info.qualname)
        out |= self.aliases.get(name, set())
        return out or None

    def _build_aliases(self) -> None:
        """Fixpoint over reference flows: keyword/assignment targets
        receiving a function reference become callback slots."""
        for _ in range(3):
            changed = False
            for ctx in self.index.contexts:
                path = ctx.posix_path
                for node in ast.walk(ctx.tree):
                    pairs: List[Tuple[str, ast.AST]] = []
                    if isinstance(node, ast.Call):
                        for kw in node.keywords:
                            if kw.arg:
                                pairs.append((kw.arg, kw.value))
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            name = _terminal_name(target)
                            if name:
                                pairs.append((name, node.value))
                    for name, value in pairs:
                        targets = self._ref_targets(value, path)
                        if not targets:
                            continue
                        slot = self.aliases.setdefault(name, set())
                        if not targets <= slot:
                            slot.update(targets)
                            changed = True
            if not changed:
                break

    def _build_edges(self) -> None:
        index = self.index
        for qual, info in index.functions.items():
            targets: Set[str] = set()
            for node in _direct_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _terminal_name(node.func)
                if name is None:
                    # Computed callee: could be any escaped function.
                    targets.add(self.UNKNOWN)
                    continue
                resolved = {t.qualname
                            for t in index.by_name.get(name, [])}
                resolved |= self.aliases.get(name, set())
                if name in _BUILTIN_NAMES:
                    resolved -= {t.qualname for t in
                                 index.by_name.get(name, [])}
                targets.update(resolved)
            self.edges[qual] = targets
        # Address-taken scan runs over whole files (module-level
        # ``HANDLERS = [a, b]`` tables escape functions too).  A
        # reference in the func slot of a call is a plain call, any
        # other use takes the address.
        for ctx in self.index.contexts:
            call_func_ids = {id(n.func) for n in ast.walk(ctx.tree)
                             if isinstance(n, ast.Call)}
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.Name, ast.Attribute)):
                    continue
                name = _terminal_name(node)
                if (name in index.by_name
                        and id(node) not in call_func_ids):
                    for t in index.by_name[name]:
                        self.address_taken.add(t.qualname)
        for info in index.functions.values():
            if info.is_lambda:
                self.address_taken.add(info.qualname)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        """Direct call targets, with computed calls expanded to the
        address-taken set."""
        raw = self.edges.get(qualname, set())
        if self.UNKNOWN not in raw:
            return set(raw)
        out = {t for t in raw if t != self.UNKNOWN}
        out |= self.address_taken
        return out

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for target in self.callees(qual):
                if target not in seen and target in self.edges:
                    stack.append(target)
        return seen

    def enclosing_function(self, path: str,
                           node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost project function whose body spans ``node``
        (by line interval within ``path``)."""
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        best: Optional[FunctionInfo] = None
        for info in self._func_ranges.get(path, []):
            end = getattr(info.node, "end_lineno", info.lineno)
            if info.lineno <= lineno <= (end or info.lineno):
                if best is None or info.lineno > best.lineno:
                    best = info
        return best
