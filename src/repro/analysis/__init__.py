"""Simulator-aware correctness tooling (repro-lint + runtime sanitizer).

The paper's conclusions rest on deltas that are tiny by construction —
a 0.5 K issue-queue toggle threshold, IPC gaps of a few percent between
fine-grain turnoff and a global stall.  A silent determinism bug (an
unseeded RNG, iteration over a set) or a unit bug (adding kelvin to
watts) does not crash the simulator; it quietly produces a different,
equally plausible-looking table.  This package holds the tooling that
keeps those bug classes out of the tree as it grows:

* :mod:`repro.analysis.lint` — **repro-lint**, an AST static-analysis
  pass with simulator-specific rules (``python -m repro.analysis.lint
  src/`` or ``repro lint``).  See :data:`repro.analysis.rules.RULES`
  for the rule catalogue (REP001–REP007).
* :mod:`repro.analysis.sanitize` — a **runtime sanitizer** of cheap
  cross-substrate invariants (energy conservation, temperature bounds,
  queue occupancy, register-file mapping coherence, no issue to
  turned-off units), enabled with ``REPRO_SANITIZE=1`` or
  ``SimulationConfig(sanitize=True)``.
"""

from importlib import import_module
from typing import Any

#: Public name -> providing submodule.  Resolved lazily (PEP 562) so
#: ``python -m repro.analysis.lint`` does not import the submodule a
#: second time under a different name (runpy's double-import warning).
_EXPORTS = {
    "Finding": "lint",
    "LintReport": "lint",
    "lint_paths": "lint",
    "lint_source": "lint",
    "RULES": "rules",
    "Rule": "rules",
    "Sanitizer": "sanitize",
    "SanitizerError": "sanitize",
    "SanitizerStats": "sanitize",
    "sanitize_enabled": "sanitize",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(import_module(f".{module}", __name__), name)
