"""Dimensional analysis: physical units inferred from REP003 suffixes
and propagated through expressions.

The repo's unit discipline is purely lexical — ``interval_s`` carries
seconds because its name says so (REP003).  This module turns those
suffixes into an actual unit algebra so the deep pass (REP101 in
:mod:`repro.analysis.semantic`) can check *flow*, not just naming:

* a name's trailing unit chain parses to an exponent vector over base
  dimensions (``_k_per_w`` -> K·W⁻¹ -> ``{K: 1, J: -1, s: 1}``);
* ``*`` and ``/`` combine exponent vectors; ``+``, ``-`` and
  comparisons require equal vectors; ``**`` with a literal integer
  exponent scales them;
* watts are stored as J·s⁻¹, so ``energy_j / interval_s`` flows into a
  ``_w`` name without complaint while ``energy_j`` alone does not —
  the missing ``interval_s`` conversion is exactly the mismatch;
* nanojoules are a *distinct* base unit from joules: the per-event
  tables are nJ and a raw ``x_nj + y_j`` sum is a real 1e9 bug.  The
  ``NANOJOULE`` constant carries J·nJ⁻¹, so multiplying by it is the
  sanctioned conversion.

Cycle counts (``_cycles``) are additive-incompatible with seconds —
``stall_cycles + interval_s`` is flagged — but **multiplicatively
transparent**: a count times a per-cycle quantity is just a scaled
quantity (``cooling_cycles * cycle_time_s`` is seconds, not
cycle-seconds), so ``cyc`` exponents are dropped from every product
and quotient.

Unknown stays unknown: a bare float with no suffix and no inferable
source contributes no constraints, which is what keeps the pass quiet
on dimensionless code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .rules import unit_of

__all__ = ["Dim", "DIMENSIONLESS", "parse_unit_chain", "dim_of_name",
           "format_dim", "DimEvent", "FunctionDims", "DimInferencer"]

#: A dimension: canonically sorted (base, exponent) pairs. ``()`` is
#: dimensionless (a known pure number); ``None`` elsewhere means
#: "unknown" (no information — never checked).
Dim = Tuple[Tuple[str, int], ...]

DIMENSIONLESS: Dim = ()

#: Suffix token -> base-dimension exponents.  Watts and hertz are
#: derived (J·s⁻¹ and s⁻¹) so conversions through ``* interval_s`` /
#: ``/ interval_s`` type-check structurally.
_TOKEN_DIMS: Dict[str, Dict[str, int]] = {
    "k": {"K": 1},
    "j": {"J": 1},
    "nj": {"nJ": 1},
    "w": {"J": 1, "s": -1},
    "s": {"s": 1},
    "hz": {"s": -1},
    "m": {"m": 1},
    "m2": {"m": 2},
    "m3": {"m": 3},
    "v": {"V": 1},
    "cycles": {"cyc": 1},
}

#: Module-level constants with known dimensions (conversion factors).
KNOWN_CONSTANT_DIMS: Dict[str, Dim] = {
    # energy.NANOJOULE = 1e-9 J per nJ: the sanctioned nJ -> J bridge.
    "NANOJOULE": (("J", 1), ("nJ", -1)),
}


def _canon(exps: Dict[str, int]) -> Dim:
    return tuple(sorted((base, exp) for base, exp in exps.items()
                        if exp != 0))


def parse_unit_chain(chain: str) -> Optional[Dim]:
    """``'k_per_w'`` -> K·W⁻¹ as an exponent vector; None if any token
    is unrecognised."""
    exps: Dict[str, int] = {}
    sign = 1
    for token in chain.split("_"):
        if token == "per":
            sign = -1
            continue
        dims = _TOKEN_DIMS.get(token)
        if dims is None:
            return None
        for base, exp in dims.items():
            exps[base] = exps.get(base, 0) + sign * exp
    return _canon(exps)


def dim_of_name(name: str) -> Optional[Dim]:
    """Dimension a name declares via its unit suffix, or None."""
    chain = unit_of(name)
    if chain is None:
        return None
    return parse_unit_chain(chain)


def _strip_cycles(dim: Dim) -> Dim:
    """Drop ``cyc`` exponents (counts are multiplicative scalars)."""
    return tuple((b, e) for b, e in dim if b != "cyc")


def dim_mul(a: Dim, b: Dim, sign: int = 1) -> Dim:
    exps = dict(a)
    for base, exp in b:
        exps[base] = exps.get(base, 0) + sign * exp
    return _strip_cycles(_canon(exps))


def dim_pow(a: Dim, exponent: int) -> Dim:
    return _canon({base: exp * exponent for base, exp in a})


#: Pretty names for common derived vectors, for messages.
_PRETTY: Dict[Dim, str] = {
    DIMENSIONLESS: "1",
    (("J", 1), ("s", -1)): "W",
    (("J", -1), ("s", 1)): "1/W",
    (("J", -1), ("K", 1), ("s", 1)): "K/W",
    (("s", -1),): "Hz",
    (("J", 1), ("m", -2), ("s", -1)): "W/m^2",
}


def format_dim(dim: Dim) -> str:
    """Human-readable unit: ``[K/W]``-style bracket contents."""
    pretty = _PRETTY.get(dim)
    if pretty is not None:
        return pretty
    num = [f"{b}^{e}" if e != 1 else b for b, e in dim if e > 0]
    den = [f"{b}^{-e}" if e != -1 else b for b, e in dim if e < 0]
    if not num and not den:
        return "1"
    text = "*".join(num) if num else "1"
    if den:
        text += "/" + "/".join(den)
    return text


@dataclass(frozen=True)
class DimEvent:
    """One dimensional inconsistency found while inferring."""

    kind: str        #: ``mix`` | ``compare`` | ``assign`` | ``return`` | ``arg``
    node: ast.AST
    message: str


@dataclass
class FunctionDims:
    """Summary of one function: parameter and return dimensions."""

    param_dims: List[Tuple[str, Optional[Dim]]] = field(
        default_factory=list)
    return_dim: Optional[Dim] = None


class DimInferencer:
    """Single-pass, statement-ordered dimension inference over one
    function body.

    ``known_returns`` maps simple function names to their inferred
    return dimension (built project-wide by the caller, then fed back
    for a second pass so cross-module calls resolve).
    ``param_table`` maps simple function names to their parameter
    dimension lists for call-site argument checking.
    """

    #: Builtins that pass their argument's dimension through.
    _PASSTHROUGH = frozenset({"abs", "float"})
    #: Builtins returning the common dimension of their arguments.
    _CONSISTENT = frozenset({"min", "max", "sum"})

    def __init__(self,
                 known_returns: Optional[Dict[str, Dim]] = None,
                 param_table: Optional[
                     Dict[str, List[Tuple[str, Optional[Dim]]]]] = None
                 ) -> None:
        self.known_returns = known_returns or {}
        self.param_table = param_table or {}
        self.events: List[DimEvent] = []
        self._env: Dict[str, Optional[Dim]] = {}
        self._returns: List[Optional[Dim]] = []

    # ------------------------------------------------------------------
    def infer(self, func: ast.AST) -> FunctionDims:
        """Infer over one FunctionDef; events accumulate on self."""
        self._env = {}
        self._returns = []
        summary = FunctionDims()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                dim = dim_of_name(arg.arg)
                if arg.arg not in ("self", "cls"):
                    summary.param_dims.append((arg.arg, dim))
                if dim is not None:
                    self._env[arg.arg] = dim
        for stmt in getattr(func, "body", []):
            self._stmt(stmt)
        declared = dim_of_name(getattr(func, "name", ""))
        known = [d for d in self._returns
                 if d is not None and d != DIMENSIONLESS]
        if known and all(d == known[0] for d in known):
            summary.return_dim = known[0]
        if declared is not None and summary.return_dim is not None \
                and summary.return_dim != declared:
            # Anchor on the first offending return statement.
            for stmt, dim in zip(
                    [s for s in ast.walk(func)
                     if isinstance(s, ast.Return)], self._returns):
                if dim is not None and dim != declared \
                        and dim != DIMENSIONLESS:
                    self.events.append(DimEvent(
                        "return", stmt,
                        f"returns [{format_dim(dim)}] from a function "
                        f"whose name declares [{format_dim(declared)}]"))
                    break
        if declared is not None:
            summary.return_dim = declared
        return summary

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            value_dim = self._dim(stmt.value)
            for target in stmt.targets:
                self._bind(target, value_dim, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._dim(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
        elif isinstance(stmt, ast.Return):
            dim = self._dim(stmt.value) if stmt.value is not None else None
            self._returns.append(dim)
        elif isinstance(stmt, ast.Expr):
            self._dim(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._dim(stmt.test)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._dim(stmt.iter)
            self._bind(stmt.target, None, stmt, check=False)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        elif isinstance(stmt, ast.Assert):
            self._dim(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._dim(stmt.exc)
        # Nested defs/lambdas are separate inference units: skipped.

    def _key(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return f"self.{target.attr}"
        return None

    def _declared(self, target: ast.AST) -> Optional[Dim]:
        """Dimension a target's name (or its array base's name) claims."""
        if isinstance(target, ast.Subscript):
            target = target.value
        name = _terminal(target)
        if name is None:
            return None
        return dim_of_name(name)

    def _bind(self, target: ast.AST, value_dim: Optional[Dim],
              stmt: ast.AST, check: bool = True) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, stmt, check=False)
            return
        declared = self._declared(target)
        if (check and declared is not None and value_dim is not None
                and value_dim != DIMENSIONLESS
                and value_dim != declared):
            name = _terminal(target) or "<target>"
            self.events.append(DimEvent(
                "assign", stmt,
                f"assigns [{format_dim(value_dim)}] to '{name}' which "
                f"declares [{format_dim(declared)}]"))
        key = self._key(target)
        if key is not None:
            self._env[key] = declared if declared is not None \
                else value_dim

    def _augassign(self, stmt: ast.AugAssign) -> None:
        target_dim = self._declared(stmt.target)
        if target_dim is None:
            key = self._key(stmt.target)
            target_dim = self._env.get(key) if key else None
        value_dim = self._dim(stmt.value)
        op = stmt.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if (target_dim is not None and value_dim is not None
                    and target_dim != DIMENSIONLESS
                    and value_dim != DIMENSIONLESS
                    and target_dim != value_dim):
                name = _terminal(stmt.target) or "<target>"
                self.events.append(DimEvent(
                    "assign", stmt,
                    f"accumulates [{format_dim(value_dim)}] into "
                    f"'{name}' [{format_dim(target_dim)}]"))
        elif isinstance(op, (ast.Mult, ast.Div)):
            key = self._key(stmt.target)
            if key is not None and target_dim is not None \
                    and value_dim is not None:
                sign = 1 if isinstance(op, ast.Mult) else -1
                self._env[key] = dim_mul(target_dim, value_dim, sign)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _dim(self, node: ast.AST) -> Optional[Dim]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) \
                    and not isinstance(node.value, bool):
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.Name):
            if node.id in self._env:
                return self._env[node.id]
            if node.id in KNOWN_CONSTANT_DIMS:
                return KNOWN_CONSTANT_DIMS[node.id]
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self._dim(node.value)
            key = self._key(node)
            if key is not None and key in self._env:
                return self._env[key]
            if node.attr in KNOWN_CONSTANT_DIMS:
                return KNOWN_CONSTANT_DIMS[node.attr]
            return dim_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            # An element of an array carries the array's dimension.
            return self._dim(node.value)
        if isinstance(node, ast.UnaryOp):
            return self._dim(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self._dim(node.test)
            a = self._dim(node.body)
            b = self._dim(node.orelse)
            return a if a == b else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._dim(elt)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self._dim(value)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._dim(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                self._dim(gen.iter)
            return None
        return None

    def _binop(self, node: ast.BinOp) -> Optional[Dim]:
        left = self._dim(node.left)
        right = self._dim(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if (left is not None and right is not None
                    and left != DIMENSIONLESS
                    and right != DIMENSIONLESS and left != right):
                sym = "+" if isinstance(op, ast.Add) else "-"
                self.events.append(DimEvent(
                    "mix", node,
                    f"'{_describe(node.left)} {sym} "
                    f"{_describe(node.right)}' mixes "
                    f"[{format_dim(left)}] and [{format_dim(right)}]"))
                return left
            if left is None or left == DIMENSIONLESS:
                return right if right not in (None, DIMENSIONLESS) \
                    else left if left is not None else right
            return left
        if isinstance(op, ast.Mult):
            if left is None or right is None:
                return None
            return dim_mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return dim_mul(left, right, -1)
        if isinstance(op, ast.Pow):
            if (left is not None
                    and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)):
                return dim_pow(left, node.right.value)
            return None
        if isinstance(op, ast.Mod):
            return left
        return None

    def _compare(self, node: ast.Compare) -> None:
        dims = [self._dim(node.left)]
        dims.extend(self._dim(c) for c in node.comparators)
        known = [(d, i) for i, d in enumerate(dims)
                 if d is not None and d != DIMENSIONLESS]
        for (a, _), (b, j) in zip(known, known[1:]):
            if a != b:
                self.events.append(DimEvent(
                    "compare", node,
                    f"comparison mixes [{format_dim(a)}] and "
                    f"[{format_dim(b)}]"))
                break

    def _call(self, node: ast.Call) -> Optional[Dim]:
        arg_dims = [self._dim(arg) for arg in node.args]
        for kw in node.keywords:
            self._dim(kw.value)
        name = _terminal(node.func)
        if name is None:
            return None
        if name in self._PASSTHROUGH and arg_dims:
            return arg_dims[0]
        if name in self._CONSISTENT:
            known = [d for d in arg_dims
                     if d is not None and d != DIMENSIONLESS]
            if known and all(d == known[0] for d in known):
                return known[0]
            return None
        self._check_args(node, name, arg_dims)
        return self.known_returns.get(name)

    def _check_args(self, node: ast.Call, name: str,
                    arg_dims: Sequence[Optional[Dim]]) -> None:
        params = self.param_table.get(name)
        if params is None:
            return
        for i, (arg, dim) in enumerate(zip(node.args, arg_dims)):
            if i >= len(params):
                break
            pname, pdim = params[i]
            self._check_one_arg(node, name, arg, dim, pname, pdim)
        by_name = dict(params)
        for kw in node.keywords:
            if kw.arg in by_name:
                self._check_one_arg(node, name, kw.value,
                                    self._dim(kw.value), kw.arg,
                                    by_name[kw.arg])

    def _check_one_arg(self, call: ast.Call, fname: str, arg: ast.AST,
                       dim: Optional[Dim], pname: str,
                       pdim: Optional[Dim]) -> None:
        if dim is None or pdim is None:
            return
        if dim == DIMENSIONLESS or dim == pdim:
            return
        self.events.append(DimEvent(
            "arg", arg,
            f"passes [{format_dim(dim)}] to parameter '{pname}' "
            f"[{format_dim(pdim)}] of {fname}()"))


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _describe(node: ast.AST) -> str:
    name = _terminal(node)
    if name is not None:
        return name
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"
