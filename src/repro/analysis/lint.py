"""repro-lint driver: walk files, run rules, report findings.

Usage::

    python -m repro.analysis.lint src/            # or: repro lint src/
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --select REP001,REP003 src/ tests/

Exit status is non-zero when findings remain after suppressions, so
the command is usable as a CI gate.  Suppress a single line with
``# repro: noqa[REP003]`` (comma-separated IDs) or ``# repro: noqa``.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import (RULES, FileContext, Finding, Rule,
                    collect_frozen_classes)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".benchmarks", "build", "dist"})


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        summary = (f"{len(self.findings)} finding(s) in "
                   f"{self.files_checked} file(s)"
                   + (f", {self.suppressed} suppressed"
                      if self.suppressed else ""))
        return "\n".join([*lines, summary])


def _noqa_ids(line: str) -> Optional[Set[str]]:
    """IDs suppressed on ``line``: a set of rule IDs, the empty set for
    a bare ``# repro: noqa`` (suppress everything), or None."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    ids = match.group("ids")
    if ids is None:
        return set()
    return {part.strip().upper() for part in ids.split(",") if part.strip()}


def _apply_suppressions(findings: Iterable[Finding],
                        lines: Sequence[str]) -> Tuple[List[Finding], int]:
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        ids = _noqa_ids(line)
        if ids is not None and (not ids or finding.rule_id in ids):
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def _select_rules(select: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    if not select:
        return RULES
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - {rule.rule_id for rule in RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(rule for rule in RULES if rule.rule_id in wanted)


def _check_context(ctx: FileContext,
                   rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return _apply_suppressions(findings, ctx.source.splitlines())


def lint_source(source: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None,
                extra_frozen: Sequence[str] = ()) -> LintReport:
    """Lint one source string (the test-fixture entry point)."""
    tree = ast.parse(source, filename=path)
    frozen = collect_frozen_classes([tree]) | set(extra_frozen)
    ctx = FileContext(path=path, source=source, tree=tree,
                      frozen_classes=frozen)
    kept, suppressed = _check_context(ctx, _select_rules(select))
    return LintReport(findings=tuple(kept), files_checked=1,
                      suppressed=suppressed)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if not os.path.exists(path):
            # A typo'd path must not pass the CI gate vacuously.
            raise FileNotFoundError(f"no such file or directory: {path}")
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info"))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Runs in two passes so project-wide facts (the set of frozen
    dataclass names REP005 tracks) see every file before any rule
    fires.
    """
    rules = _select_rules(select)
    parsed: List[Tuple[str, str, ast.Module]] = []
    for filename in _iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        parsed.append((filename, source,
                       ast.parse(source, filename=filename)))

    frozen = collect_frozen_classes([tree for _, _, tree in parsed])
    all_findings: List[Finding] = []
    suppressed_total = 0
    for filename, source, tree in parsed:
        ctx = FileContext(path=filename, source=source, tree=tree,
                          frozen_classes=frozen)
        kept, suppressed = _check_context(ctx, rules)
        all_findings.extend(kept)
        suppressed_total += suppressed
    return LintReport(findings=tuple(all_findings),
                      files_checked=len(parsed),
                      suppressed=suppressed_total)


def _format_rule_list() -> str:
    lines = []
    for rule in RULES:
        doc = (rule.__class__.__doc__ or "").strip().splitlines()
        lines.append(f"{rule.rule_id}  {rule.title}")
        for doc_line in doc:
            lines.append(f"    {doc_line.strip()}")
        lines.append(f"    fix: {rule.autofix_hint}")
        lines.append("")
    return "\n".join(lines).rstrip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Simulator-aware static analysis (repro-lint)")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories (default: src/)")
    parser.add_argument("--select", default="",
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=("text", "json"))
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_format_rule_list())
        return 0
    paths = args.paths or ["src"]
    select = [s for s in args.select.split(",") if s.strip()] or None
    try:
        report = lint_paths(paths, select=select)
    except (ValueError, OSError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        payload: Dict[str, object] = {
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "rule": f.rule_id, "message": f.message, "hint": f.hint}
                for f in report.findings],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
