"""repro-lint driver: walk files, run rules, report findings.

Usage::

    python -m repro.analysis.lint src/            # or: repro lint src/
    python -m repro.analysis.lint --deep src/     # + REP1xx semantic pass
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --select REP001,REP102 --deep src/
    python -m repro.analysis.lint --deep --sarif out.sarif src/

Every file is read and parsed exactly once per run; the parsed
:class:`~repro.analysis.rules.FileContext` objects are shared by all
shallow rules and (with ``--deep``) the project-wide semantic pass.

Exit status: 0 when clean, 1 when findings remain after suppressions
and the baseline, 2 when the analysis itself failed (bad arguments,
unreadable files, a rule crash) — so a red CI gate is diagnosable
from the code alone.  Suppress a single line with
``# repro: noqa[REP003]`` (comma-separated IDs) or ``# repro: noqa``;
accept a legacy finding by adding it to the baseline file
(``--write-baseline`` regenerates it).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import (Counter as CounterT, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)
from collections import Counter

from .rules import (RULES, FileContext, Finding, Rule,
                    collect_frozen_classes)
from .semantic import DEEP_RULES, DeepRule, check_project

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".benchmarks", "build", "dist"})

#: Baseline file consulted by default (repo root, checked in).
DEFAULT_BASELINE = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed: int
    #: Findings accepted by the checked-in baseline file.
    baselined: int = 0
    #: Wall time of the rule passes (parse + shallow + deep), seconds.
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self, stats: bool = False) -> str:
        lines = [f.format() for f in self.findings]
        summary = (f"{len(self.findings)} finding(s) in "
                   f"{self.files_checked} file(s)"
                   + (f", {self.suppressed} suppressed"
                      if self.suppressed else "")
                   + (f", {self.baselined} baselined"
                      if self.baselined else ""))
        if stats:
            summary += f" [{self.duration_s * 1000.0:.1f} ms]"
        return "\n".join([*lines, summary])


def _noqa_ids(line: str) -> Optional[Set[str]]:
    """IDs suppressed on ``line``: a set of rule IDs, the empty set for
    a bare ``# repro: noqa`` (suppress everything), or None."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    ids = match.group("ids")
    if ids is None:
        return set()
    return {part.strip().upper() for part in ids.split(",") if part.strip()}


def _apply_suppressions(findings: Iterable[Finding],
                        lines: Sequence[str]) -> Tuple[List[Finding], int]:
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        ids = _noqa_ids(line)
        if ids is not None and (not ids or finding.rule_id in ids):
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def _select_rules(select: Optional[Sequence[str]]
                  ) -> Tuple[Tuple[Rule, ...], Tuple[DeepRule, ...]]:
    """Split a ``--select`` list into (shallow, deep) rule tuples."""
    if not select:
        return RULES, DEEP_RULES
    wanted = {s.strip().upper() for s in select if s.strip()}
    known = {rule.rule_id for rule in RULES} \
        | {rule.rule_id for rule in DEEP_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return (tuple(r for r in RULES if r.rule_id in wanted),
            tuple(r for r in DEEP_RULES if r.rule_id in wanted))


def _check_context(ctx: FileContext,
                   rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return _apply_suppressions(findings, ctx.source.splitlines())


def lint_source(source: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None,
                extra_frozen: Sequence[str] = ()) -> LintReport:
    """Lint one source string (the test-fixture entry point)."""
    tree = ast.parse(source, filename=path)
    frozen = collect_frozen_classes([tree]) | set(extra_frozen)
    ctx = FileContext(path=path, source=source, tree=tree,
                      frozen_classes=frozen)
    shallow, _ = _select_rules(select)
    kept, suppressed = _check_context(ctx, shallow)
    return LintReport(findings=tuple(kept), files_checked=1,
                      suppressed=suppressed)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if not os.path.exists(path):
            # A typo'd path must not pass the CI gate vacuously.
            raise FileNotFoundError(f"no such file or directory: {path}")
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info"))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def _fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """Line-number-independent identity of a finding, so unrelated
    edits above an accepted legacy finding don't un-accept it."""
    return (finding.rule_id, finding.path.replace("\\", "/"),
            finding.message)


def load_baseline(path: str) -> CounterT[Tuple[str, str, str]]:
    """Accepted-finding fingerprints from a baseline file (a multiset:
    two identical legacy findings need two entries)."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    entries = doc.get("entries", []) if isinstance(doc, dict) else []
    baseline: CounterT[Tuple[str, str, str]] = Counter()
    for entry in entries:
        baseline[(str(entry["rule"]), str(entry["path"]),
                  str(entry["message"]))] += 1
    return baseline


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    entries = [{"rule": f.rule_id,
                "path": f.path.replace("\\", "/"),
                "message": f.message}
               for f in sorted(findings, key=_fingerprint)]
    doc = {"comment": "Accepted legacy repro-lint findings. "
                      "Regenerate with: repro lint --deep "
                      "--write-baseline",
           "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")


def _apply_baseline(findings: Sequence[Finding],
                    baseline: CounterT[Tuple[str, str, str]]
                    ) -> Tuple[List[Finding], int]:
    remaining = Counter(baseline)
    kept: List[Finding] = []
    accepted = 0
    for finding in findings:
        key = _fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            accepted += 1
            continue
        kept.append(finding)
    return kept, accepted


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               deep: bool = False,
               baseline: Optional[CounterT[Tuple[str, str, str]]] = None,
               ) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Each file is read and parsed exactly once; the resulting
    ``FileContext`` objects feed project-wide fact collection (frozen
    dataclass names for REP005), every shallow rule, and — when
    ``deep`` is set — the REP1xx semantic pass, in that order.
    """
    started = time.perf_counter()
    shallow_rules, deep_rules = _select_rules(select)
    contexts: List[FileContext] = []
    for filename in _iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        contexts.append(FileContext(
            path=filename, source=source,
            tree=ast.parse(source, filename=filename)))

    frozen = collect_frozen_classes([ctx.tree for ctx in contexts])
    all_findings: List[Finding] = []
    suppressed_total = 0
    for ctx in contexts:
        ctx.frozen_classes = frozen
        kept, suppressed = _check_context(ctx, shallow_rules)
        all_findings.extend(kept)
        suppressed_total += suppressed

    if deep and deep_rules:
        lines_of = {ctx.path: ctx.source.splitlines()
                    for ctx in contexts}
        deep_findings = check_project(contexts, deep_rules)
        kept, suppressed = [], 0
        for finding in deep_findings:
            one, n = _apply_suppressions(
                [finding], lines_of.get(finding.path, []))
            kept.extend(one)
            suppressed += n
        all_findings.extend(kept)
        suppressed_total += suppressed

    baselined = 0
    if baseline:
        all_findings, baselined = _apply_baseline(all_findings, baseline)
    return LintReport(findings=tuple(all_findings),
                      files_checked=len(contexts),
                      suppressed=suppressed_total,
                      baselined=baselined,
                      duration_s=time.perf_counter() - started)


def _format_rule_list() -> str:
    lines = []
    for rule in [*RULES, *DEEP_RULES]:
        doc = (rule.__class__.__doc__ or "").strip().splitlines()
        lines.append(f"{rule.rule_id}  {rule.title}")
        for doc_line in doc:
            lines.append(f"    {doc_line.strip()}")
        lines.append(f"    fix: {rule.autofix_hint}")
        lines.append("")
    return "\n".join(lines).rstrip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Simulator-aware static analysis (repro-lint)")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories (default: src/)")
    parser.add_argument("--select", default="",
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--deep", action="store_true",
                        help="also run the project-wide REP1xx "
                             "semantic pass (dimensions, macro-step/"
                             "SoA contracts, kernel parity)")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=("text", "json"))
    parser.add_argument("--sarif", metavar="FILE", default="",
                        help="also write findings as SARIF 2.1.0 to "
                             "FILE")
    parser.add_argument("--baseline", metavar="FILE",
                        default=DEFAULT_BASELINE,
                        help="accepted-findings baseline (default: "
                             f"{DEFAULT_BASELINE} when it exists); "
                             "pass an empty string to disable")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--stats", action="store_true",
                        help="report wall time with the summary")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_format_rule_list())
        return 0
    paths = args.paths or ["src"]
    select = [s for s in args.select.split(",") if s.strip()] or None
    try:
        baseline: Optional[CounterT[Tuple[str, str, str]]] = None
        if (args.baseline and os.path.exists(args.baseline)
                and not args.write_baseline):
            baseline = load_baseline(args.baseline)
        report = lint_paths(paths, select=select, deep=args.deep,
                            baseline=baseline)
        if args.write_baseline:
            target = args.baseline or DEFAULT_BASELINE
            write_baseline(report.findings, target)
            print(f"wrote {len(report.findings)} finding(s) to "
                  f"{target}")
            return 0
        if args.sarif:
            from .sarif import write_sarif
            write_sarif(report.findings, args.sarif)
    except (ValueError, OSError, SyntaxError) as exc:
        # Expected operational failures: bad --select, missing path,
        # unparseable file.
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    except Exception:  # noqa: BLE001 - a crashed rule is exit 2,
        # distinguishable in CI from exit 1 (real findings).
        traceback.print_exc()
        print("repro-lint: internal error while running rules",
              file=sys.stderr)
        return 2
    if args.output_format == "json":
        payload: Dict[str, object] = {
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "duration_s": report.duration_s,
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "rule": f.rule_id, "message": f.message, "hint": f.hint}
                for f in report.findings],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.format(stats=args.stats))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
