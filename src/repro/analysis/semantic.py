"""Deep semantic rules (REP101–REP104): project-wide contracts.

The shallow REP0xx rules look at one file at a time.  The rules here
run behind ``repro lint --deep`` and check the *cross-file* contracts
every kernel speedup since PR 3 has leaned on:

REP101
    Dimensional consistency.  Unit suffixes (REP003) induce an actual
    unit algebra (:mod:`repro.analysis.dimensions`); mixing joules
    with watts, or kelvin with seconds, in ``power/`` / ``thermal/`` /
    ``pipeline/`` is flagged — including across module boundaries via
    inferred function return/parameter dimensions.

REP102
    Macro-step contract.  Gating/throttle state (``busy``, ``mode``,
    ``stalled_until``, ``throttled_until``, the regfile ``_off`` set)
    may only be written by code reachable from an ``on_sample``
    boundary (plus construction/checkpoint restore).  This is the
    legality condition of the macro-stepped kernel: between samples
    the per-cycle loop must observe *frozen* gating state.

REP103
    SoA view discipline.  The SoA backing arrays (``UnitBank.ops`` /
    ``busy_cycles`` / ``turnoff_events``, the issue-queue ``_c``
    counter block, regfile ``_reads``/``_writes``) are mutated only
    inside ``repro/pipeline/``, where the write-through views and the
    kernel flush live.  Everything else reads through views.

REP104
    Kernel/reference counter parity.  Every SoA counter the
    ``REPRO_KERNEL=0`` reference loop (``Processor.step`` closure)
    bumps must also be landed by the kernel (``pipeline/kernel.py``
    closure) — a counter the kernel forgets silently skews energy
    accounting only when the kernel is on, the worst kind of drift.
    The batched arm additionally checks the merge/fork write-back:
    any batched-path function that restores a pickled leader snapshot
    must write the run's own counter row back into the run-axis store,
    or adoption clobbers the follower's counters with the leader's.

All four are built on the shared one-parse infrastructure
(:class:`~repro.analysis.callgraph.ProjectIndex` and
:class:`~repro.analysis.callgraph.CallGraph`); the reachability model
is deliberately permissive (see :mod:`repro.analysis.callgraph`), so
these rules under-report rather than cry wolf.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import (CallGraph, FunctionInfo, ProjectIndex,
                        build_project_index)
from .dimensions import DimInferencer, FunctionDims
from .rules import FileContext, Finding, Rule

__all__ = ["ProjectContext", "DeepRule", "DEEP_RULES",
           "check_project"]


@dataclass
class ProjectContext:
    """Shared facts for one deep-lint run: parsed files, symbol table,
    call graph.  Built once; every deep rule reads from it."""

    index: ProjectIndex
    graph: CallGraph

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectContext":
        index = build_project_index(contexts)
        return cls(index=index, graph=CallGraph(index))


class DeepRule(Rule):
    """A rule that inspects the whole project at once."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # deep rules have no per-file pass

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST,
                   message: str) -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule_id=self.rule_id, message=message,
                       hint=self.autofix_hint)


def _in_scope(path: str, segments: Tuple[str, ...]) -> bool:
    return any(segment in path for segment in segments)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# REP101 — dimensional consistency
# ---------------------------------------------------------------------------

class DimensionalConsistencyRule(DeepRule):
    """REP101: unit-suffixed quantities must combine consistently.

    Dimensions are inferred from REP003 suffixes on names, parameters
    and dataclass fields, then propagated through assignments,
    arithmetic and (name-resolved) cross-module calls.  Additive or
    comparative mixing of distinct dimensions, assigning a value of
    one dimension to a name declaring another, and passing the wrong
    dimension to a suffixed parameter are all flagged.  Watts are
    joules per second, so a missing ``/ interval_s`` shows up as a
    J-vs-W mismatch; nanojoules are distinct from joules and convert
    only through the ``NANOJOULE`` constant.
    """

    rule_id = "REP101"
    title = "dimensional mismatch between unit-suffixed quantities"
    autofix_hint = ("convert explicitly (* NANOJOULE, / interval_s, "
                    "...), fix the unit suffix, or suppress with "
                    "# repro: noqa[REP101]")

    #: Findings are only *reported* for these subtrees; inference runs
    #: project-wide so return/param tables cover cross-module calls.
    SCOPE = ("power/", "thermal/", "pipeline/")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        index = project.index
        summaries: Dict[str, FunctionDims] = {}
        for qual, info in index.functions.items():
            if info.is_lambda:
                continue
            inf = DimInferencer()
            summaries[qual] = inf.infer(info.node)

        returns, params = self._tables(index, summaries)
        for qual, info in index.functions.items():
            if info.is_lambda or not _in_scope(info.path, self.SCOPE):
                continue
            inf = DimInferencer(known_returns=returns,
                                param_table=params)
            inf.infer(info.node)
            for event in inf.events:
                yield self.finding_at(info.path, event.node,
                                      event.message)

    @staticmethod
    def _tables(index: ProjectIndex,
                summaries: Dict[str, FunctionDims]):
        returns: Dict[str, tuple] = {}
        params: Dict[str, List[Tuple[str, Optional[tuple]]]] = {}
        for name, infos in index.by_name.items():
            funcs = [i for i in infos if not i.is_lambda]
            dims = {summaries[i.qualname].return_dim for i in funcs
                    if i.qualname in summaries
                    and summaries[i.qualname].return_dim is not None}
            if len(dims) == 1:
                returns[name] = next(iter(dims))
            # Parameter dims are only trusted when the name is
            # unambiguous project-wide (one definition).
            if len(funcs) == 1 and funcs[0].qualname in summaries:
                plist = summaries[funcs[0].qualname].param_dims
                if any(dim is not None for _, dim in plist):
                    params[name] = plist
        return returns, params


# ---------------------------------------------------------------------------
# REP102 — macro-step contract
# ---------------------------------------------------------------------------

class MacroStepContractRule(DeepRule):
    """REP102: gating state is written only at on_sample boundaries.

    The kernel hoists gating/throttle state (unit ``busy`` flags,
    queue ``mode``, ``stalled_until``/``throttled_until``, the regfile
    ``_off`` set) once per macro-step chunk; any write between samples
    would be invisible to it.  A write to one of those attributes is
    legal only inside code reachable (on the call graph, callbacks
    included) from an ``on_sample``/``_on_sample`` root, or inside the
    construction/checkpoint boundary functions.
    """

    rule_id = "REP102"
    title = "gating state written outside the on_sample boundary"
    autofix_hint = ("route the write through a DTM mechanism invoked "
                    "from on_sample, or suppress with "
                    "# repro: noqa[REP102] if it is a new sanctioned "
                    "boundary")

    SCOPE = ("pipeline/", "core/")
    #: Attributes that make up hoistable gating/throttle state.
    GATING_ATTRS = frozenset({"busy", "mode", "stalled_until",
                              "throttled_until", "_off"})
    #: Set-mutator methods counted as writes (for the ``_off`` set).
    SET_MUTATORS = frozenset({"add", "discard", "remove", "clear",
                              "update"})
    #: Functions allowed to write gating state regardless of
    #: reachability: construction and checkpoint restore.
    BOUNDARY_FUNCS = frozenset({"__init__", "__post_init__",
                                "restore_state", "reset",
                                "snapshot_state", "force_all_on"})
    ROOT_NAMES = ("on_sample", "_on_sample")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        roots = [info.qualname
                 for name in self.ROOT_NAMES
                 for info in project.index.by_name.get(name, [])]
        reachable = graph.reachable(roots)
        for ctx in project.index.contexts:
            path = ctx.posix_path
            if not _in_scope(path, self.SCOPE):
                continue
            for node, attr in self._gating_writes(ctx.tree):
                func = graph.enclosing_function(path, node)
                if func is not None:
                    if func.qualname in reachable:
                        continue
                    if func.name in self.BOUNDARY_FUNCS:
                        continue
                    where = f"in {func.method_key}()"
                else:
                    where = "at module level"
                yield self.finding_at(
                    ctx.path, node,
                    f"gating state '.{attr}' written {where}, which "
                    f"is not reachable from an on_sample boundary")

    def _gating_writes(
            self, tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr in self.GATING_ATTRS:
                        yield node, target.attr
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.SET_MUTATORS
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr in self.GATING_ATTRS):
                    yield node, func.value.attr


# ---------------------------------------------------------------------------
# shared counter-write extraction (REP103 / REP104)
# ---------------------------------------------------------------------------

#: Attribute names of SoA counter backing arrays.
_COUNTER_ATTRS = frozenset({"ops", "busy_cycles", "turnoff_events",
                            "_c", "_reads", "_writes"})


def _alias_maps(index: ProjectIndex) -> Dict[Tuple[str, str], str]:
    """``(path, attr_name) -> counter attr`` for instance attributes
    bound to a backing array (``self._ops_arr = bank.ops`` makes
    ``_ops_arr`` an alias of ``ops`` within that file)."""
    aliases: Dict[Tuple[str, str], str] = {}
    for ctx in index.contexts:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Attribute):
                continue
            if node.value.attr not in _COUNTER_ATTRS:
                continue
            for target in node.targets:
                name = _terminal(target)
                if name is not None:
                    aliases[(ctx.posix_path, name)] = node.value.attr
    return aliases


def _index_key(node: ast.AST) -> str:
    """Stable label for a counter-array index expression: the IQC_*
    constant name when there is one."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
            and isinstance(node.left, ast.Name)
            and isinstance(node.right, ast.Constant)):
        return f"{node.left.id}+{node.right.value}"
    if isinstance(node, ast.Constant):
        return str(node.value)
    if isinstance(node, ast.Slice):
        lower = _index_key(node.lower) if node.lower else ""
        return f"{lower}:"
    return "*"


class _CounterWrites:
    """Extract (counter key, write node) pairs from one function.

    A *write* is an augmented assignment or a subscript store — plain
    attribute rebinding (``self.ops = np.zeros(...)``) is array
    (re)construction, not counter mutation.  Local names assigned from
    a backing array (``c = self._c``) are followed, as are per-file
    instance-attribute aliases (``self._ops_arr = bank.ops``).
    """

    def __init__(self, path: str,
                 attr_aliases: Dict[Tuple[str, str], str]) -> None:
        self.path = path
        self.attr_aliases = attr_aliases

    def _counter_of(self, node: ast.AST,
                    local_aliases: Dict[str, str]) -> Optional[str]:
        """Counter attr an expression denotes, or None."""
        if isinstance(node, ast.Attribute):
            if node.attr in _COUNTER_ATTRS:
                return node.attr
            return self.attr_aliases.get((self.path, node.attr))
        if isinstance(node, ast.Name):
            if node.id in local_aliases:
                return local_aliases[node.id]
            return self.attr_aliases.get((self.path, node.id))
        return None

    def writes(self, func: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        local_aliases: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, (ast.Attribute,
                                                ast.Name)):
                counter = self._counter_of(node.value, local_aliases)
                if counter is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_aliases[target.id] = counter
        for node in ast.walk(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = [t for t in node.targets
                           if isinstance(t, ast.Subscript)]
            for target in targets:
                key = self._key_of(target, local_aliases)
                if key is not None:
                    yield key, node

    def _key_of(self, target: ast.AST,
                local_aliases: Dict[str, str]) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            counter = self._counter_of(target.value, local_aliases)
            if counter is None:
                return None
            if counter == "_c":
                return f"_c[{_index_key(target.slice)}]"
            return counter
        counter = self._counter_of(target, local_aliases)
        return counter


# ---------------------------------------------------------------------------
# REP103 — SoA view discipline
# ---------------------------------------------------------------------------

class SoaViewDisciplineRule(DeepRule):
    """REP103: SoA backing arrays are mutated only in repro/pipeline/.

    ``UnitBank.ops``/``busy_cycles``/``turnoff_events``, the
    issue-queue ``_c`` counter block and the regfile
    ``_reads``/``_writes`` arrays are implementation storage; outside
    the pipeline package (where the write-through views and the kernel
    flush live) they are read-only.  Mutation from observability,
    power accounting or experiment code must go through the public
    counter views.
    """

    rule_id = "REP103"
    title = "direct write to SoA backing array outside repro/pipeline"
    autofix_hint = ("mutate through the write-through counter views "
                    "(ALUCounters / IssueQueueCounterView / "
                    "RegFileCounters) or move the code into "
                    "repro/pipeline")

    ALLOWED = ("pipeline/",)

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        attr_aliases = _alias_maps(project.index)
        seen: Set[int] = set()
        for info in project.index.functions.values():
            if _in_scope(info.path, self.ALLOWED):
                continue
            extractor = _CounterWrites(info.path, attr_aliases)
            for key, node in extractor.writes(info.node):
                if id(node) in seen:
                    continue  # nested defs share walk()ed nodes
                seen.add(id(node))
                yield self.finding_at(
                    info.path, node,
                    f"SoA counter storage '{key}' written outside "
                    f"repro/pipeline (in {info.method_key}())")


# ---------------------------------------------------------------------------
# REP104 — kernel/reference counter parity
# ---------------------------------------------------------------------------

class KernelParityRule(DeepRule):
    """REP104: counters bumped by the reference loop are landed by the
    kernel — on the per-run path *and* on the batched path.

    The reference per-cycle loop is everything reachable from
    ``Processor.step`` (``pipeline/processor.py``); the kernel side is
    everything reachable from the functions in
    ``pipeline/kernel.py`` (its flush phase lands hoisted
    accumulators with vectorized adds).  Any SoA counter written on
    the reference side but never on the kernel side diverges the
    moment ``REPRO_KERNEL=1`` — flagged at the reference write site.

    When a ``run_batch`` entry point exists, the same parity is
    additionally required of everything reachable from it: a batched
    run's counters (attr and IQC_* index keys, held per run on the
    run-axis store) must be landed by code the batched kernel actually
    reaches — a counter only the per-run driver lands would silently
    diverge under ``REPRO_BATCH=1``.

    The merge/fork write-back arm gets its own check: a batched-path
    function in ``pipeline/kernel.py`` that calls ``restore_state``
    (leader-snapshot adoption during fork broadcast or re-convergence
    merge) must also store the run's own counter row back through the
    run-axis store's backing matrix (``store.data[...] = ...``).
    ``restore_state`` writes the *leader's* counter values through the
    adopting run's row views, so an adoption path without the row
    write-back silently replaces the follower's activity history.
    """

    rule_id = "REP104"
    title = "reference-loop counter never landed by the kernel"
    autofix_hint = ("accumulate the counter in the kernel's hot loop "
                    "and land it in the flush phase "
                    "(pipeline/kernel.py)")

    REFERENCE_FILE = "pipeline/processor.py"
    REFERENCE_ROOT = "step"
    KERNEL_FILE = "pipeline/kernel.py"
    BATCH_ROOT = "run_batch"
    COUNTER_SCOPE = ("pipeline/",)
    #: method whose call marks a leader-snapshot adoption site
    RESTORE_CALL = "restore_state"
    #: run-axis backing-matrix attribute the write-back must store to
    WRITEBACK_ATTR = "data"

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        index, graph = project.index, project.graph
        ref_roots = [i.qualname for i in index.functions_matching(
            self.REFERENCE_ROOT, path_suffix=self.REFERENCE_FILE)]
        kernel_roots = [i.qualname for i in index.functions.values()
                        if i.path.endswith(self.KERNEL_FILE)]
        if not ref_roots or not kernel_roots:
            return  # nothing to compare (e.g. partial lint scope)
        ref_funcs = graph.reachable(ref_roots)
        kernel_funcs = graph.reachable(kernel_roots)
        batch_roots = [i.qualname for i in index.functions_matching(
            self.BATCH_ROOT, path_suffix=self.KERNEL_FILE)]
        batch_funcs = (graph.reachable(batch_roots)
                       if batch_roots else None)

        attr_aliases = _alias_maps(index)
        ref_writes: Dict[str, Tuple[str, ast.AST]] = {}
        kernel_keys: Set[str] = set()
        batch_keys: Set[str] = set()
        for qual, info in index.functions.items():
            if not _in_scope(info.path, self.COUNTER_SCOPE):
                continue
            extractor = _CounterWrites(info.path, attr_aliases)
            in_ref = qual in ref_funcs
            in_kernel = qual in kernel_funcs
            in_batch = batch_funcs is not None and qual in batch_funcs
            if not (in_ref or in_kernel or in_batch):
                continue
            for key, node in extractor.writes(info.node):
                if in_kernel:
                    kernel_keys.add(key)
                if in_batch:
                    batch_keys.add(key)
                if in_ref:
                    ref_writes.setdefault(key, (info.path, node))
        for key in sorted(ref_writes):
            path, node = ref_writes[key]
            if key not in kernel_keys:
                yield self.finding_at(
                    path, node,
                    f"counter '{key}' is updated by the reference "
                    f"per-cycle loop but never landed by the kernel "
                    f"(pipeline/kernel.py)")
            elif batch_funcs is not None and key not in batch_keys:
                yield self.finding_at(
                    path, node,
                    f"counter '{key}' is updated by the reference "
                    f"per-cycle loop but never landed on the batched "
                    f"kernel path (run_batch in pipeline/kernel.py)")
        if batch_funcs is not None:
            yield from self._check_writeback_arm(index, batch_funcs)

    def _check_writeback_arm(self, index: "ProjectIndex",
                             batch_funcs: Set[str]) -> Iterator[Finding]:
        """Flag adoption sites (``restore_state`` on the batched path)
        inside functions that never write the run's own counter row
        back (``store.data[...] = ...``)."""
        for qual, info in index.functions.items():
            if (qual not in batch_funcs
                    or not info.path.endswith(self.KERNEL_FILE)):
                continue
            restore_site: Optional[ast.AST] = None
            writes_back = False
            for node in ast.walk(info.node):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == self.RESTORE_CALL
                        and restore_site is None):
                    restore_site = node
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (isinstance(target, ast.Subscript)
                                and isinstance(target.value,
                                               ast.Attribute)
                                and target.value.attr
                                == self.WRITEBACK_ATTR):
                            writes_back = True
            if restore_site is not None and not writes_back:
                yield self.finding_at(
                    info.path, restore_site,
                    f"batched adoption path {info.method_key}() "
                    f"restores a leader snapshot without writing the "
                    f"run's own counter row back to the run-axis "
                    f"store (store.data[...] = ...); the restore "
                    f"clobbers the follower's counters with the "
                    f"leader's")


DEEP_RULES: Tuple[DeepRule, ...] = (
    DimensionalConsistencyRule(),
    MacroStepContractRule(),
    SoaViewDisciplineRule(),
    KernelParityRule(),
)


def check_project(contexts: Sequence[FileContext],
                  rules: Sequence[DeepRule] = DEEP_RULES
                  ) -> List[Finding]:
    """Run the deep rules over already-parsed file contexts."""
    project = ProjectContext.build(contexts)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check_project(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
