"""repro-lint rule catalogue (REP001–REP007).

Every rule is a subclass of :class:`Rule` with a stable ``rule_id``,
a one-line ``title``, an ``autofix_hint`` explaining the sanctioned
fix, and a ``check`` method walking one file's AST.  Rules only ever
*read* the tree; fixes stay in the hands of the author (the hint names
them precisely enough to be mechanical).

Suppression: append ``# repro: noqa[REP003]`` (or a comma-separated
list, or bare ``# repro: noqa`` for all rules) to the offending line.
The driver in :mod:`repro.analysis.lint` applies suppressions; rules
report unconditionally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "FileContext", "Rule", "RULES", "collect_frozen_classes"]


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.rule_id} {self.message}"
        if show_hint and self.hint:
            text += f"  [fix: {self.hint}]"
        return text


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    source: str
    tree: ast.Module
    #: Names of ``@dataclass(frozen=True)`` classes across the whole
    #: lint run (two-pass: collected before any rule executes).
    frozen_classes: Set[str] = field(default_factory=set)

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


class Rule:
    """Base class: one static-analysis check with a stable identity."""

    rule_id: str = ""
    title: str = ""
    autofix_hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str, hint: Optional[str] = None) -> Finding:
        return Finding(path=ctx.path, line=node.lineno,
                       col=node.col_offset, rule_id=self.rule_id,
                       message=message,
                       hint=self.autofix_hint if hint is None else hint)


def _parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def collect_frozen_classes(trees: Sequence[ast.Module]) -> Set[str]:
    """Names of ``@dataclass(frozen=True)`` classes in the given trees."""
    frozen: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                frozen.add(node.name)
    return frozen


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                return True
    return False


# ---------------------------------------------------------------------------
# REP001 — unseeded randomness
# ---------------------------------------------------------------------------

#: Module-level ``random.*`` functions that draw from (or reseed) the
#: process-global RNG.  Any use makes a run depend on import order and
#: on every other caller of the global stream.
_GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

#: Files allowed to construct RNGs at all (the one sanctioned entropy
#: source of the simulator).
_RNG_ALLOWED_SUFFIXES = ("workloads/generator.py",)


class UnseededRandomRule(Rule):
    """REP001: all randomness must flow from an explicitly seeded
    ``random.Random(seed)`` owned by the workload generator.

    The simulator's acceptance bar is bit-identical reruns: the paper's
    0.5 K toggle deltas and sub-percent IPC gaps drown in run-to-run
    noise otherwise.  Module-level ``random.*`` calls use the shared
    process RNG (seeded from the OS), and a bare ``random.Random()``
    seeds itself from entropy; both make results unreproducible.
    """

    rule_id = "REP001"
    title = "unseeded or global RNG"
    autofix_hint = ("construct random.Random(seed) from an explicit "
                    "seed and thread it through, or generate the "
                    "stream in workloads/generator.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.posix_path.endswith(_RNG_ALLOWED_SUFFIXES):
            return
        random_aliases = {"random"}
        imported_rng: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        imported_rng.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_aliases):
                if func.attr in _GLOBAL_RNG_FUNCS:
                    yield self.finding(
                        ctx, node,
                        f"module-level random.{func.attr}() draws from "
                        f"the process-global RNG (unreproducible)")
                elif func.attr == "Random" and not node.args:
                    yield self.finding(
                        ctx, node,
                        "random.Random() without a seed is entropy-"
                        "seeded (unreproducible)")
            elif isinstance(func, ast.Name) and func.id in imported_rng:
                if func.id == "Random" and not node.args:
                    yield self.finding(
                        ctx, node,
                        "Random() without a seed is entropy-seeded "
                        "(unreproducible)")
                elif func.id in _GLOBAL_RNG_FUNCS:
                    yield self.finding(
                        ctx, node,
                        f"module-level {func.id}() (from random import) "
                        f"draws from the process-global RNG")


# ---------------------------------------------------------------------------
# REP002 — iteration order over sets
# ---------------------------------------------------------------------------

_SET_ANNOTATIONS = {"set", "Set", "MutableSet", "AbstractSet", "frozenset",
                    "FrozenSet"}


def _is_set_producing(node: ast.AST) -> bool:
    """Whether an expression evaluates to a set (syntactically)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra: s | t, s & t, s - t, s ^ t
        return (_is_set_producing(node.left)
                or _is_set_producing(node.right))
    return False


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


class SetIterationRule(Rule):
    """REP002: never iterate a set (or ``dict.keys()``) where order can
    reach simulator state.

    Scheduling and select paths turn iteration order into architectural
    behaviour: issuing uops, unblocking ALUs, or applying DTM actions
    in hash order makes two identical runs diverge the moment a hash
    seed or insertion history differs.  ``dict.keys()`` is flagged too:
    it advertises "unordered collection" intent even though CPython
    preserves insertion order, and the idiomatic deterministic spelling
    (iterate the dict, or ``sorted(d)``) is free.
    """

    rule_id = "REP002"
    title = "iteration over unordered set"
    autofix_hint = ("iterate sorted(<set>) (or keep an explicitly "
                    "ordered list/dict alongside the set)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_attrs = self._set_attributes_by_class(ctx.tree)
        parents = _parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = self._nondeterministic_reason(
                    it, node, parents, set_attrs)
                if reason:
                    yield self.finding(ctx, it, reason)

    # -- helpers --------------------------------------------------------
    def _set_attributes_by_class(
            self, tree: ast.Module) -> Dict[ast.ClassDef, Set[str]]:
        """Per class, ``self.X`` attributes bound to set expressions or
        set annotations anywhere in the class body."""
        by_class: Dict[ast.ClassDef, Set[str]] = {}
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            attrs: Set[str] = set()
            for node in ast.walk(cls):
                target = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if _annotation_is_set(node.annotation):
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            attrs.add(target.attr)
                        continue
                if (target is not None and value is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_set_producing(value)):
                    attrs.add(target.attr)
            by_class[cls] = attrs
        return by_class

    def _nondeterministic_reason(
            self, it: ast.AST, site: ast.AST,
            parents: Dict[ast.AST, ast.AST],
            set_attrs: Dict[ast.ClassDef, Set[str]]) -> Optional[str]:
        if _is_set_producing(it):
            return ("iteration over a set has hash-dependent order "
                    "(nondeterministic scheduling)")
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute)
                and it.func.attr == "keys" and not it.args):
            return ("iterate the mapping itself (or sorted(...)) "
                    "instead of .keys()")
        if isinstance(it, ast.Name):
            if self._name_bound_to_set(it, site, parents):
                return (f"'{it.id}' was bound to a set; iterating it "
                        f"has hash-dependent order")
        if (isinstance(it, ast.Attribute)
                and isinstance(it.value, ast.Name)
                and it.value.id == "self"):
            cls = self._enclosing(site, parents, ast.ClassDef)
            if cls is not None and it.attr in set_attrs.get(cls, set()):
                return (f"'self.{it.attr}' is a set; iterating it has "
                        f"hash-dependent order")
        return None

    def _name_bound_to_set(self, name: ast.Name, site: ast.AST,
                           parents: Dict[ast.AST, ast.AST]) -> bool:
        """Whether the closest preceding binding of ``name`` in the
        enclosing function is a set-producing expression (a linear,
        single-pass approximation of local data flow)."""
        func = self._enclosing(site, parents,
                               (ast.FunctionDef, ast.AsyncFunctionDef))
        scope: ast.AST = func if func is not None else self._module(
            site, parents)
        best_line = -1
        best_is_set = False
        for node in ast.walk(scope):
            value: Optional[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if node.lineno > name.lineno or node.lineno <= best_line:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name.id:
                    best_line = node.lineno
                    best_is_set = _is_set_producing(value)
        return best_is_set

    @staticmethod
    def _enclosing(node: ast.AST, parents: Dict[ast.AST, ast.AST],
                   kinds) -> Optional[ast.AST]:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, kinds):
                return cur
            cur = parents.get(cur)
        return None

    @staticmethod
    def _module(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> ast.AST:
        cur = node
        while parents.get(cur) is not None:
            cur = parents[cur]
        return cur


# ---------------------------------------------------------------------------
# REP003 — physical-unit suffix discipline
# ---------------------------------------------------------------------------

#: Trailing name tokens recognised as unit markers.  A name "carries a
#: unit" when its final underscore-token is one of these (``per`` may
#: appear inside a compound like ``_k_per_w`` but cannot terminate it).
_UNIT_TOKENS = frozenset({
    "k", "w", "j", "s", "m", "m2", "m3", "hz", "v", "nj", "cycles", "per",
})
_TERMINAL_UNIT_TOKENS = _UNIT_TOKENS - {"per"}

#: Name fragments that mark a scalar as a physical quantity.
_QUANTITY_KEYWORDS = (
    "temp", "power", "watt", "energy", "joule", "kelvin", "second",
    "interval", "time", "resist", "capacit", "conduct", "thickness",
    "distance", "area", "voltage", "frequency",
)

#: Directories (relative to the package root) where the missing-suffix
#: check applies — the modules whose numbers feed the paper's tables.
_UNIT_SCOPED_DIRS = ("thermal/", "power/", "sim/")


def unit_of(name: str) -> Optional[str]:
    """The trailing unit chain of ``name`` (``'k'``, ``'k_per_w'``,
    ...), or None when the name carries no unit suffix."""
    tokens = name.lower().split("_")
    chain: List[str] = []
    while tokens and tokens[-1] in _UNIT_TOKENS:
        chain.insert(0, tokens.pop())
    if not chain or chain[-1] not in _TERMINAL_UNIT_TOKENS:
        return None
    return "_".join(chain)


def _looks_physical(name: str) -> bool:
    lowered = name.lower()
    return any(key in lowered for key in _QUANTITY_KEYWORDS)


def _is_scalar_annotation(annotation: Optional[ast.AST]) -> bool:
    return (isinstance(annotation, ast.Name)
            and annotation.id in ("float", "int"))


class UnitSuffixRule(Rule):
    """REP003: scalars carrying physical quantities must say their unit
    in their name, and unit-suffixed names must not mix in +/-.

    The thermal and power models pass bare floats around (kelvin,
    watts, joules, seconds, metres); nothing but naming stops a caller
    handing seconds where the model expects kelvin.  Two checks:

    * in ``thermal/``, ``power/`` and ``sim/``, a ``float``/``int``
      parameter or dataclass field whose name contains a physical-
      quantity keyword must end in a unit token (``_k``, ``_w``,
      ``_j``, ``_s``, ``_m``, ``_m2``, ``_hz``, ``_cycles``, or a
      compound like ``_k_per_w``);
    * anywhere, adding or subtracting two unit-suffixed operands with
      *different* units is reported — convert through an explicit
      helper (or a named intermediate) first.
    """

    rule_id = "REP003"
    title = "unit-suffix discipline"
    autofix_hint = ("rename the quantity with its unit suffix "
                    "(_k/_w/_j/_s/_m/_m2/_hz/_cycles, compounds like "
                    "_k_per_w), converting explicitly where units meet")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(d in ctx.posix_path for d in _UNIT_SCOPED_DIRS):
            yield from self._check_declarations(ctx)
        yield from self._check_mixing(ctx)

    def _check_declarations(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = [*node.args.posonlyargs, *node.args.args,
                        *node.args.kwonlyargs]
                for arg in args:
                    if arg.arg in ("self", "cls"):
                        continue
                    if not _is_scalar_annotation(arg.annotation):
                        continue
                    if _looks_physical(arg.arg) and unit_of(arg.arg) is None:
                        yield self.finding(
                            ctx, arg,
                            f"parameter '{arg.arg}' looks like a "
                            f"physical quantity but has no unit suffix")
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Name)
                            and _is_scalar_annotation(stmt.annotation)):
                        name = stmt.target.id
                        if _looks_physical(name) and unit_of(name) is None:
                            yield self.finding(
                                ctx, stmt,
                                f"field '{name}' looks like a physical "
                                f"quantity but has no unit suffix")

    def _check_mixing(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = self._operand_unit(node.left)
            right = self._operand_unit(node.right)
            if left and right and left[1] != right[1]:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                yield self.finding(
                    ctx, node,
                    f"'{left[0]} {op} {right[0]}' mixes units "
                    f"[{left[1]}] and [{right[1]}] without an explicit "
                    f"conversion")

    @staticmethod
    def _operand_unit(node: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
        unit = unit_of(name)
        return (name, unit) if unit else None


# ---------------------------------------------------------------------------
# REP004 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


class MutableDefaultRule(Rule):
    """REP004: no mutable default argument values.

    A mutable default is evaluated once at import and shared by every
    call — in a simulator that means state (queue contents, activity
    counters, per-run caches) silently leaking between runs of what
    should be independent configurations.
    """

    rule_id = "REP004"
    title = "mutable default argument"
    autofix_hint = ("default to None and create the container inside "
                    "the function (or use dataclasses.field("
                    "default_factory=...))")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {node.name}() is "
                        f"shared across calls")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            return name in _MUTABLE_FACTORIES
        return False


# ---------------------------------------------------------------------------
# REP005 — frozen-config mutation
# ---------------------------------------------------------------------------


class FrozenMutationRule(Rule):
    """REP005: frozen-dataclass configs are immutable run descriptors —
    derive variants with ``dataclasses.replace()``, never mutate.

    A config object is shared by reference between the simulator, the
    DTM controller and the result record; writing through it (or
    bypassing ``frozen=True`` with ``object.__setattr__``) changes a
    run's description after parts of the system already read it.
    """

    rule_id = "REP005"
    title = "frozen-dataclass mutation"
    autofix_hint = ("build a new instance with dataclasses.replace("
                    "cfg, field=value) instead of assigning")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parents(ctx.tree)
        frozen_vars = self._frozen_bindings(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    name = self._frozen_base(target, frozen_vars)
                    if name:
                        yield self.finding(
                            ctx, node,
                            f"assignment to field of frozen config "
                            f"'{name}'")
            elif isinstance(node, ast.Call):
                if self._is_object_setattr(node) and not \
                        self._inside_post_init(node, parents):
                    yield self.finding(
                        ctx, node,
                        "object.__setattr__ outside __post_init__ "
                        "bypasses dataclass immutability")

    # -- helpers --------------------------------------------------------
    def _frozen_bindings(self, ctx: FileContext) -> Dict[str, str]:
        """Map of variable / ``self.attr`` names to the frozen class
        they are bound to (annotation- and constructor-derived)."""
        bindings: Dict[str, str] = {}

        def class_of(value: Optional[ast.AST]) -> Optional[str]:
            if value is None:
                return None
            if isinstance(value, ast.Call):
                func = value.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else "")
                if name in ctx.frozen_classes:
                    return name
            if isinstance(value, ast.BoolOp):
                for operand in value.values:
                    found = class_of(operand)
                    if found:
                        return found
            return None

        def annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
            if isinstance(annotation, ast.Name) and \
                    annotation.id in ctx.frozen_classes:
                return annotation.id
            if isinstance(annotation, ast.Constant) and \
                    isinstance(annotation.value, str) and \
                    annotation.value in ctx.frozen_classes:
                return annotation.value
            return None

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in [*node.args.posonlyargs, *node.args.args,
                            *node.args.kwonlyargs]:
                    cls = annotation_class(arg.annotation)
                    if cls:
                        bindings[arg.arg] = cls
            elif isinstance(node, ast.AnnAssign):
                cls = (annotation_class(node.annotation)
                       or class_of(node.value))
                if cls:
                    bindings[self._target_key(node.target)] = cls
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                cls = class_of(node.value)
                if cls:
                    bindings[self._target_key(node.targets[0])] = cls
        bindings.pop("", None)
        return bindings

    @staticmethod
    def _target_key(target: ast.AST) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return f"self.{target.attr}"
        return ""

    def _frozen_base(self, target: ast.AST,
                     frozen_vars: Dict[str, str]) -> Optional[str]:
        """If ``target`` is ``<frozen-bound expr>.field``, the bound
        name; else None."""
        if not isinstance(target, ast.Attribute):
            return None
        base = target.value
        key = self._target_key(base)
        if key and key in frozen_vars:
            return key
        return None

    @staticmethod
    def _is_object_setattr(node: ast.Call) -> bool:
        func = node.func
        return (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object")

    @staticmethod
    def _inside_post_init(node: ast.AST,
                          parents: Dict[ast.AST, ast.AST]) -> bool:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur.name == "__post_init__"
            cur = parents.get(cur)
        return False


# ---------------------------------------------------------------------------
# REP006 — print() in library code
# ---------------------------------------------------------------------------

#: Library paths where ``print`` is sanctioned: the CLI front-ends and
#: the lint driver (whose findings ARE its console output).
_PRINT_ALLOWED_SUFFIXES = (
    "repro/cli.py",
    "repro/__main__.py",
    "repro/analysis/lint.py",
)


class LibraryPrintRule(Rule):
    """REP006: library code must not ``print()`` — that output belongs
    to the observability layer.

    A ``print`` buried in the simulator corrupts every consumer that
    composes it: it interleaves with worker-pool output nondeterminist-
    ically, breaks ``repro report --output -`` (whose stdout *is* the
    artifact), and is invisible to the metrics/trace layers that
    reports aggregate.  Emit a trace event, bump a metric, or return
    the value instead; only the CLI modules own the console.
    """

    rule_id = "REP006"
    title = "print() in library code"
    autofix_hint = ("emit a repro.obs trace event / metric (or return "
                    "the data) and let the CLI layer print")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        path = ctx.posix_path
        if "repro/" not in path or "tests/" in path:
            return
        if path.endswith(_PRINT_ALLOWED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.finding(
                    ctx, node,
                    "print() in library code bypasses the "
                    "observability layer")


# ---------------------------------------------------------------------------
# REP007 — hot-loop discipline
# ---------------------------------------------------------------------------

#: Marker comment declaring that a function runs on the per-cycle
#: measurement path.  Placed on the ``def`` line or the line above it.
_HOT_LOOP_MARKER = "repro: hot-loop"

#: Builtin constructors whose call allocates a fresh container.
_CONTAINER_BUILTINS = {"list", "dict", "set", "tuple", "bytearray", "deque"}

#: How many loads of one ``self.x.y`` chain a hot function may make
#: before REP007 asks for a hoisted local.
_CHAIN_THRESHOLD = 3


def _dotted_chain(node: ast.Attribute) -> Optional[str]:
    """``self.a.b`` -> ``"self.a.b"``; None if not rooted at a Name."""
    parts: List[str] = []
    cur: ast.AST = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class HotLoopDisciplineRule(Rule):
    """REP007: functions marked ``# repro: hot-loop`` run once per
    simulated cycle — they must not allocate throwaway containers or
    re-walk the same ``self.x.y`` attribute chain.

    The macro-step kernel (:mod:`repro.pipeline.kernel`) exists because
    per-cycle interpreter overhead dominates a run; this rule keeps
    that overhead from creeping back into the per-cycle path.  Two
    checks, scoped to marked functions only:

    * **allocation** — a container display, comprehension, or
      ``list()/dict()/set()/tuple()`` call anywhere in the function
      body is one allocation per simulated cycle (and worse inside a
      nested loop).  Preallocate it outside the hot path, reuse a
      scratch buffer, or suppress with a justifying comment when the
      allocation is the modelled work itself.
    * **attribute chains** — loading the same two-level-or-deeper
      ``self.x.y`` chain three or more times re-runs the descriptor
      machinery the kernel hoists; bind it to a local once.

    The marker goes on the ``def`` line or the line directly above it.
    """

    rule_id = "REP007"
    title = "allocation / attribute churn in hot-loop function"
    autofix_hint = ("hoist the chain into a local (or preallocate the "
                    "container outside the per-cycle path); "
                    "# repro: noqa[REP007] for deliberate model work")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _HOT_LOOP_MARKER not in ctx.source:
            return
        lines = ctx.source.splitlines()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not self._is_marked(node, lines):
                continue
            yield from self._check_allocations(ctx, node)
            yield from self._check_chains(ctx, node)

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _is_marked(func: ast.AST, lines: List[str]) -> bool:
        for lineno in (func.lineno, func.lineno - 1):
            if 1 <= lineno <= len(lines) \
                    and _HOT_LOOP_MARKER in lines[lineno - 1]:
                return True
        return False

    def _check_allocations(self, ctx: FileContext,
                           func: ast.AST) -> Iterator[Finding]:
        for sub in ast.walk(func):
            if sub is func:
                continue
            if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                kind = "comprehension"
            elif isinstance(sub, (ast.List, ast.Set, ast.Dict)):
                # An empty or constant display still allocates.
                kind = "container display"
            elif (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in _CONTAINER_BUILTINS):
                kind = f"{sub.func.id}() call"
            else:
                continue
            yield self.finding(
                ctx, sub,
                f"{kind} allocates once per simulated cycle in "
                f"hot-loop function; preallocate or reuse a buffer")

    def _check_chains(self, ctx: FileContext,
                      func: ast.AST) -> Iterator[Finding]:
        counts: Dict[str, int] = {}
        first: Dict[str, ast.Attribute] = {}
        stack: List[ast.AST] = [func]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Attribute):
                path = _dotted_chain(node)
                if path is not None:
                    # Count only the maximal chain: do not descend, so
                    # the ``self.a`` inside ``self.a.b`` is not double
                    # counted.
                    if path.count(".") >= 2 and path.startswith("self."):
                        counts[path] = counts.get(path, 0) + 1
                        if (path not in first
                                or node.lineno < first[path].lineno):
                            first[path] = node
                    continue
            stack.extend(ast.iter_child_nodes(node))
        for path in sorted(counts):
            n = counts[path]
            if n >= _CHAIN_THRESHOLD:
                yield self.finding(
                    ctx, first[path],
                    f"'{path}' walked {n} times in hot-loop function; "
                    f"bind it to a local once")


#: The rule registry, in ID order.  ``repro lint --list-rules`` renders
#: this table.
RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    SetIterationRule(),
    UnitSuffixRule(),
    MutableDefaultRule(),
    FrozenMutationRule(),
    LibraryPrintRule(),
    HotLoopDisciplineRule(),
)
