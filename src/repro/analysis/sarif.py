"""SARIF 2.1.0 export for repro-lint findings.

SARIF (Static Analysis Results Interchange Format, OASIS) is what
GitHub code scanning ingests; the CI ``lint-deep`` job uploads the
file this module writes.  Only the small, stable core of the format
is emitted: one run, one tool driver with the full rule catalogue,
one result per finding with a physical location.

:func:`validate_sarif` is a structural checker for the subset we emit
(the test suite runs it against every export) — it enforces the
2.1.0 schema's required properties and types without needing a JSON
Schema engine in the container.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .rules import RULES, Finding, Rule
from .semantic import DEEP_RULES

__all__ = ["to_sarif", "write_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
_TOOL_NAME = "repro-lint"


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    doc = (rule.__class__.__doc__ or "").strip().splitlines()
    full = " ".join(line.strip() for line in doc if line.strip())
    return {
        "id": rule.rule_id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": full or rule.title},
        "help": {"text": f"fix: {rule.autofix_hint}"},
        "defaultConfiguration": {"level": "warning"},
    }


def _uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """Build a SARIF 2.1.0 log dict for ``findings``."""
    all_rules: List[Rule] = [*RULES, *DEEP_RULES]
    rule_index = {rule.rule_id: i for i, rule in enumerate(all_rules)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(finding.path)},
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; Finding.col is
                        # the 0-based AST col_offset.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "informationUri":
                    "https://example.invalid/repro-lint",
                "rules": [_rule_descriptor(r) for r in all_rules],
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(findings: Sequence[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(findings), handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_sarif(doc: object) -> List[str]:
    """Structural 2.1.0 validation of the subset repro-lint emits.

    Returns a list of problems (empty when the document is valid).
    """
    problems: List[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(doc, dict), "document is not an object"):
        return problems
    assert isinstance(doc, dict)
    check(doc.get("version") == SARIF_VERSION,
          f"version must be '{SARIF_VERSION}'")
    runs = doc.get("runs")
    if not check(isinstance(runs, list) and len(runs) >= 1,
                 "runs must be a non-empty array"):
        return problems
    for ri, run in enumerate(runs):  # type: ignore[union-attr]
        if not check(isinstance(run, dict), f"runs[{ri}] not an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if check(isinstance(driver, dict),
                 f"runs[{ri}].tool.driver missing"):
            check(isinstance(driver.get("name"), str)
                  and bool(driver.get("name")),
                  f"runs[{ri}].tool.driver.name must be a string")
            rules = driver.get("rules", [])
            check(isinstance(rules, list),
                  f"runs[{ri}].tool.driver.rules must be an array")
            rule_count = len(rules) if isinstance(rules, list) else 0
            for qi, rule in enumerate(rules or []):
                check(isinstance(rule, dict)
                      and isinstance(rule.get("id"), str),
                      f"runs[{ri}].rules[{qi}].id must be a string")
        else:
            rule_count = 0
        results = run.get("results", [])
        if not check(isinstance(results, list),
                     f"runs[{ri}].results must be an array"):
            continue
        for si, result in enumerate(results):
            where = f"runs[{ri}].results[{si}]"
            if not check(isinstance(result, dict),
                         f"{where} not an object"):
                continue
            message = result.get("message")
            check(isinstance(message, dict)
                  and isinstance(message.get("text"), str),
                  f"{where}.message.text must be a string")
            check(isinstance(result.get("ruleId"), str),
                  f"{where}.ruleId must be a string")
            if "ruleIndex" in result:
                idx = result["ruleIndex"]
                check(isinstance(idx, int)
                      and 0 <= idx < rule_count,
                      f"{where}.ruleIndex out of range")
            for li, loc in enumerate(result.get("locations", [])):
                lwhere = f"{where}.locations[{li}]"
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not check(isinstance(phys, dict),
                             f"{lwhere}.physicalLocation missing"):
                    continue
                art = phys.get("artifactLocation")
                check(isinstance(art, dict)
                      and isinstance(art.get("uri"), str),
                      f"{lwhere}.artifactLocation.uri must be a "
                      f"string")
                region = phys.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    check(isinstance(start, int) and start >= 1,
                          f"{lwhere}.region.startLine must be >= 1")
                    col = region.get("startColumn")
                    if col is not None:
                        check(isinstance(col, int) and col >= 1,
                              f"{lwhere}.region.startColumn must be "
                              f">= 1")
    return problems
