"""Synthetic SPEC2000-like workload models (trace substitution)."""

from .generator import MIX_CLASSES, SyntheticWorkload, WorkloadProfile
from .spec2000 import BENCHMARK_NAMES, PROFILES, all_profiles, profile, workload

__all__ = ["BENCHMARK_NAMES", "MIX_CLASSES", "PROFILES",
           "SyntheticWorkload", "WorkloadProfile", "all_profiles",
           "profile", "workload"]
