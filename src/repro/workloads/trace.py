"""Materialized micro-op streams shared across runs (and replayable).

Every grid point of a paper-figure experiment re-runs the same
``(benchmark, seed)`` synthetic stream before diverging on technique
configuration, and a checkpoint-resumed run needs to continue the
stream from an arbitrary position.  Both problems are solved by
materializing the generator's output once:

* :class:`MaterializedTrace` owns one :class:`SyntheticWorkload` and a
  growing buffer of every micro-op it has produced.  Ops are generated
  exactly once, on demand, in order — so the buffer contents are
  bit-identical to the raw generator stream regardless of which
  consumer forced their creation.
* :class:`ReplayTrace` is one consumer's cursor over a materialized
  trace.  Many cursors share one buffer; :meth:`ReplayTrace.seek`
  positions a cursor mid-stream (how a checkpoint-resumed run rejoins
  the trace after skipping warm-up).

Sharing :class:`~repro.pipeline.isa.MicroOp` objects between runs is
safe because the pipeline's only mutation of an op is the front end
re-stamping ``op.mispredicted`` with the very value the generator
already stamped (see :class:`~repro.pipeline.branch.TracePredictor`).

The process-local registry (:func:`replay_trace`) keeps the most
recently used traces alive so consecutive runs of the same benchmark
share one buffer; it is bounded (LRU) because a full-length run can
buffer hundreds of thousands of ops.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

from ..pipeline.isa import MicroOp
from .generator import SyntheticWorkload
from .spec2000 import workload

#: Traces kept alive by the process-local registry (LRU).  Experiment
#: grids are benchmark-major, so a small window covers the reuse.
REGISTRY_CAPACITY = 4


#: Ops generated per buffer miss.  Generating a block ahead is
#: harmless — the stream is deterministic and produced strictly in
#: order — and it keeps consumers on the buffered fast path.
GENERATE_CHUNK = 256


class MaterializedTrace:
    """One ``(benchmark, seed)`` stream, generated once, buffered."""

    def __init__(self, source: SyntheticWorkload) -> None:
        self.source = source
        self.ops: List[MicroOp] = []

    def __len__(self) -> int:
        return len(self.ops)

    def get(self, index: int) -> MicroOp:
        """The ``index``-th op of the stream, generating up to it."""
        ops = self.ops
        if index >= len(ops):
            generate = self.source.generate
            append = ops.append
            for _ in range(index - len(ops) + GENERATE_CHUNK):
                append(generate())
        return ops[index]

    def warm_footprint(self) -> Tuple[range, range]:
        return self.source.warm_footprint()


class ReplayTrace:
    """An iterator over a :class:`MaterializedTrace` with a cursor.

    Endless, like the synthetic generator it fronts: ``__next__`` never
    raises ``StopIteration``.
    """

    def __init__(self, buffer: MaterializedTrace, position: int = 0) -> None:
        if position < 0:
            raise ValueError("position must be non-negative")
        self.buffer = buffer
        self.position = position
        # ``MaterializedTrace`` appends to one list for its whole
        # lifetime, so this alias stays valid as the buffer grows and
        # lets ``__next__`` skip a method call on the hot path.
        self._ops = buffer.ops

    def __iter__(self) -> Iterator[MicroOp]:
        return self

    def __next__(self) -> MicroOp:
        position = self.position
        self.position = position + 1
        try:
            return self._ops[position]
        except IndexError:
            return self.buffer.get(position)

    def seek(self, position: int) -> None:
        """Reposition the cursor (checkpoint restore rejoins here)."""
        if position < 0:
            raise ValueError("position must be non-negative")
        self.position = position

    def warm_footprint(self) -> Tuple[range, range]:
        return self.buffer.warm_footprint()


_REGISTRY: "OrderedDict[Tuple[str, int], MaterializedTrace]" = OrderedDict()


def replay_trace(benchmark: str, seed: int = 1) -> ReplayTrace:
    """A fresh cursor over the shared ``(benchmark, seed)`` buffer.

    The underlying buffer is created on first use and kept in a small
    process-local LRU registry, so every run of the same benchmark and
    seed in this process replays the same materialized stream instead
    of re-generating it.
    """
    key = (benchmark, seed)
    buffer = _REGISTRY.get(key)
    if buffer is None:
        buffer = MaterializedTrace(workload(benchmark, seed=seed))
        _REGISTRY[key] = buffer
        while len(_REGISTRY) > REGISTRY_CAPACITY:
            _REGISTRY.popitem(last=False)
    else:
        _REGISTRY.move_to_end(key)
    return ReplayTrace(buffer)


def clear_registry() -> None:
    """Drop every buffered trace (tests / memory pressure)."""
    _REGISTRY.clear()
