"""SPEC CPU2000 workload profiles (the 22 benchmarks the paper runs).

Each profile is tuned to put its benchmark in the *regime* the paper's
results imply (DESIGN.md §2): which back-end resource it pressures,
whether its activity is steady or bursty, and how memory-bound it is.
Every profile alternates between a calm and a burst phase (real SPEC
programs are strongly phased), which is what lets temperatures wander
across the thermal ceiling rather than sitting at a fixed point.

Notable anchors from the paper's §4:

* ``art`` never overheats the issue queue (memory-bound, low issue
  rate), so activity toggling cannot help it;
* ``facerec`` has high-IPC bursts that overheat the queue regardless of
  balancing;
* ``mesa`` and ``eon`` are steady and hot in the issue queue /
  register file, the biggest winners from toggling and priority
  mapping;
* ``parser`` is never ALU-constrained (low IPC) while ``perlbmk``
  saturates the high-priority ALUs;
* ``wupwise``, ``apsi`` and ``gcc`` are mildly constrained.

Absolute IPCs differ from the paper's Alpha binaries; the regimes (who
overheats what, who is insensitive) are what matter for the study.
"""

from __future__ import annotations

from typing import Dict, List

from ..pipeline.isa import OpClass
from .generator import SyntheticWorkload, WorkloadProfile


def _mix(int_alu: float = 0.0, int_mul: float = 0.0, load: float = 0.0,
         store: float = 0.0, branch: float = 0.0, fp_add: float = 0.0,
         fp_mul: float = 0.0) -> Dict[OpClass, float]:
    values = {
        OpClass.INT_ALU: int_alu, OpClass.INT_MUL: int_mul,
        OpClass.LOAD: load, OpClass.STORE: store, OpClass.BRANCH: branch,
        OpClass.FP_ADD: fp_add, OpClass.FP_MUL: fp_mul,
    }
    return {k: v for k, v in values.items() if v > 0}


_INT_MIX = dict(int_alu=0.50, int_mul=0.02, load=0.26, store=0.10,
                branch=0.12)
_FP_MIX = dict(int_alu=0.24, load=0.25, store=0.09, branch=0.03,
               fp_add=0.26, fp_mul=0.13)


def _phased(name: str, dep: float, burst_dep: float, *, l1: float,
            l2f: float, mp: float, mix: Dict[str, float],
            burst_len: int = 15_000, calm_len: int = 15_000,
            indep: float = 0.2) -> WorkloadProfile:
    """A calm/burst phased profile (the common case)."""
    return WorkloadProfile(
        name, _mix(**mix), dep_mean=dep, burst_dep_mean=burst_dep,
        burst_len=burst_len, calm_len=calm_len,
        l1_miss=l1, l2_frac=l2f, mispredict_rate=mp,
        independent_frac=indep)


#: The 22 SPEC2000 benchmarks simulated by the paper (it omits four of
#: the 26 for run time), in the order of the figures' x-axes.
BENCHMARK_NAMES = [
    "applu", "apsi", "art", "bzip", "crafty", "eon", "facerec", "fma3d",
    "gcc", "gzip", "lucas", "mcf", "mesa", "mgrid", "parser", "perlbmk",
    "sixtrack", "swim", "twolf", "vortex", "vpr", "wupwise",
]

PROFILES: Dict[str, WorkloadProfile] = {
    # --- floating point ------------------------------------------------
    "applu": _phased("applu", 5.0, 8.0, l1=0.06, l2f=0.25, mp=0.01,
                     indep=0.30, mix=_FP_MIX),
    "apsi": _phased("apsi", 6.5, 8.5, l1=0.03, l2f=0.15, mp=0.02,
                    indep=0.45, mix=dict(int_alu=0.27, load=0.24, store=0.10,
                             branch=0.04, fp_add=0.23, fp_mul=0.12)),
    "art": _phased("art", 1.8, 3.0, l1=0.28, l2f=0.55, mp=0.06,
                   indep=0.15, mix=dict(int_alu=0.22, load=0.34, store=0.06,
                            branch=0.08, fp_add=0.20, fp_mul=0.10)),
    "facerec": _phased("facerec", 3.0, 16.0, l1=0.03, l2f=0.20, mp=0.02,
                       burst_len=22_000, calm_len=18_000,
                       indep=0.45, mix=dict(int_alu=0.25, load=0.24, store=0.08,
                                branch=0.03, fp_add=0.27, fp_mul=0.13)),
    "fma3d": _phased("fma3d", 8.5, 11.0, l1=0.04, l2f=0.20, mp=0.03,
                     indep=0.40, mix=_FP_MIX),
    "lucas": _phased("lucas", 3.5, 6.0, l1=0.12, l2f=0.45, mp=0.01,
                     indep=0.15, mix=dict(int_alu=0.16, load=0.30, store=0.12,
                              branch=0.02, fp_add=0.26, fp_mul=0.14)),
    "mesa": _phased("mesa", 4.5, 6.5, l1=0.02, l2f=0.10, mp=0.02,
                    indep=0.30, mix=dict(int_alu=0.36, load=0.24, store=0.09,
                             branch=0.05, fp_add=0.18, fp_mul=0.08)),
    "mgrid": _phased("mgrid", 5.0, 8.0, l1=0.07, l2f=0.30, mp=0.01,
                     indep=0.25, mix=dict(int_alu=0.18, load=0.30, store=0.08,
                              branch=0.02, fp_add=0.28, fp_mul=0.14)),
    "sixtrack": _phased("sixtrack", 4.5, 6.0, l1=0.02, l2f=0.10,
                        mp=0.01,
                        indep=0.25, mix=dict(int_alu=0.26, load=0.24, store=0.10,
                                 branch=0.03, fp_add=0.24, fp_mul=0.13)),
    "swim": _phased("swim", 4.0, 6.0, l1=0.16, l2f=0.50, mp=0.01,
                    indep=0.15, mix=dict(int_alu=0.16, load=0.32, store=0.12,
                             branch=0.02, fp_add=0.25, fp_mul=0.13)),
    "wupwise": _phased("wupwise", 5.5, 7.5, l1=0.02, l2f=0.15,
                       mp=0.01,
                       indep=0.35, mix=dict(int_alu=0.29, load=0.24, store=0.09,
                                branch=0.03, fp_add=0.23, fp_mul=0.12)),
    # --- integer --------------------------------------------------------
    "bzip": _phased("bzip", 4.0, 11.0, l1=0.04, l2f=0.25, mp=0.05,
                    burst_len=12_000, calm_len=12_000,
                    indep=0.40, mix=dict(int_alu=0.48, int_mul=0.02, load=0.26,
                             store=0.10, branch=0.14)),
    "crafty": _phased("crafty", 9.0, 12.0, l1=0.02, l2f=0.10, mp=0.05,
                      indep=0.45, mix=dict(int_alu=0.50, int_mul=0.01, load=0.26,
                               store=0.08, branch=0.15)),
    "eon": _phased("eon", 7.5, 10.0, l1=0.03, l2f=0.08, mp=0.03,
                   indep=0.50, mix=dict(int_alu=0.52, int_mul=0.02, load=0.26,
                            store=0.10, branch=0.10)),
    "gcc": _phased("gcc", 10.0, 12.0, l1=0.03, l2f=0.20, mp=0.05,
                   indep=0.50, mix=dict(int_alu=0.46, int_mul=0.01, load=0.26,
                            store=0.11, branch=0.16)),
    "gzip": _phased("gzip", 7.5, 10.0, l1=0.03, l2f=0.15, mp=0.05,
                    indep=0.50, mix=dict(int_alu=0.48, load=0.26, store=0.10,
                             branch=0.16)),
    "mcf": _phased("mcf", 1.6, 2.6, l1=0.30, l2f=0.60, mp=0.09,
                   indep=0.15, mix=dict(int_alu=0.36, load=0.36, store=0.08,
                            branch=0.20)),
    "parser": _phased("parser", 1.9, 3.0, l1=0.06, l2f=0.25, mp=0.08,
                      indep=0.15, mix=dict(int_alu=0.44, int_mul=0.01, load=0.28,
                               store=0.09, branch=0.18)),
    "perlbmk": _phased("perlbmk", 11.0, 13.0, l1=0.01, l2f=0.10,
                       mp=0.04,
                       indep=0.30, mix=dict(int_alu=0.54, int_mul=0.02, load=0.24,
                                store=0.09, branch=0.11)),
    "twolf": _phased("twolf", 2.6, 4.0, l1=0.07, l2f=0.25, mp=0.09,
                     indep=0.15, mix=dict(int_alu=0.44, load=0.28, store=0.08,
                              branch=0.20)),
    "vortex": _phased("vortex", 9.0, 11.5, l1=0.02, l2f=0.15, mp=0.03,
                      indep=0.50, mix=dict(int_alu=0.48, int_mul=0.01, load=0.27,
                               store=0.12, branch=0.12)),
    "vpr": _phased("vpr", 3.0, 4.5, l1=0.05, l2f=0.25, mp=0.08,
                   indep=0.15, mix=dict(int_alu=0.44, load=0.28, store=0.09,
                            branch=0.19)),
}


def profile(name: str) -> WorkloadProfile:
    """Look up one benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; choose from "
                       f"{BENCHMARK_NAMES}") from None


def workload(name: str, seed: int = 1) -> SyntheticWorkload:
    """Instantiate the micro-op stream for one benchmark."""
    return SyntheticWorkload(profile(name), seed=seed)


def all_profiles() -> List[WorkloadProfile]:
    return [PROFILES[name] for name in BENCHMARK_NAMES]
