"""Synthetic workload generation.

A :class:`WorkloadProfile` describes a program's *regime* — instruction
mix, instruction-level parallelism (as a mean register-dependency
distance), burstiness (alternating calm/burst phases with different
ILP), memory locality (probabilities of leaving the L1/L2 working
sets), and branch predictability.  :class:`SyntheticWorkload` expands a
profile into an endless, reproducible stream of
:class:`~repro.pipeline.isa.MicroOp` records.

This substitutes for the paper's SPEC2000 binaries (DESIGN.md §2): the
power-density phenomena under study depend on *activity rates and
their asymmetry* in the back end, which these streams reproduce, not
on program semantics.
"""

from __future__ import annotations

import math
import random
import zlib
from bisect import bisect
from collections import deque
from itertools import accumulate
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional, Tuple

from ..pipeline.isa import MicroOp, OpClass

#: Op classes a profile mix may mention, in canonical order.
MIX_CLASSES = (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.LOAD,
               OpClass.STORE, OpClass.BRANCH, OpClass.FP_ADD,
               OpClass.FP_MUL)

_HOT_POOL_BYTES = 16 * 1024        # comfortably inside the 64 KB L1
_WARM_POOL_BYTES = 1024 * 1024     # inside the 2 MB L2, far beyond L1
_LINE = 64


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's behaviour."""

    name: str
    #: Fractions per op class (same order as MIX_CLASSES); must sum to 1.
    mix: Dict[OpClass, float]
    #: Mean register-dependency distance outside bursts (higher = more ILP).
    dep_mean: float = 4.0
    #: Mean dependency distance inside bursts (0 disables bursts).
    burst_dep_mean: float = 0.0
    #: Burst / calm phase lengths, in instructions.
    burst_len: int = 0
    calm_len: int = 0
    #: Probability a load leaves the L1 working set.
    l1_miss: float = 0.03
    #: Of those, probability it also leaves the L2 working set.
    l2_frac: float = 0.1
    #: Branch mispredict probability.
    mispredict_rate: float = 0.05
    #: Probability an op carries no register dependences at all (its
    #: inputs are immediates or long-retired values).  Independent ops
    #: become ready the moment they dispatch, which scatters issue
    #: positions through the queue instead of concentrating them at
    #: the head.
    independent_frac: float = 0.2

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: mix sums to {total}, not 1")
        for opclass in self.mix:
            if opclass not in MIX_CLASSES:
                raise ValueError(f"{self.name}: {opclass} not permitted")
        if self.dep_mean < 1.0:
            raise ValueError("dep_mean must be >= 1")
        if not 0.0 <= self.l1_miss <= 1.0 or not 0.0 <= self.l2_frac <= 1.0:
            raise ValueError("miss fractions must be probabilities")
        if not 0.0 <= self.mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be a probability")
        if not 0.0 <= self.independent_frac <= 1.0:
            raise ValueError("independent_frac must be a probability")
        if (self.burst_len > 0) != (self.calm_len > 0):
            raise ValueError("burst_len and calm_len must both be set "
                             "or both be zero")
        if self.burst_len > 0 and self.burst_dep_mean < 1.0:
            raise ValueError("bursty profiles need burst_dep_mean >= 1")

    @property
    def bursty(self) -> bool:
        return self.burst_len > 0

    @property
    def fp_fraction(self) -> float:
        return (self.mix.get(OpClass.FP_ADD, 0.0)
                + self.mix.get(OpClass.FP_MUL, 0.0))


class SyntheticWorkload:
    """Reproducible micro-op stream for one profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1) -> None:
        self.profile = profile
        self.seed = seed
        # zlib.crc32 is stable across processes (unlike hash(), which
        # is salted), so identical (profile, seed) pairs always yield
        # identical streams.
        self._rng = random.Random(
            (zlib.crc32(profile.name.encode()) ^ seed) & 0xFFFFFFFF)
        self._classes = list(profile.mix.keys())
        self._weights = [profile.mix[c] for c in self._classes]
        # Precomputed inverse-CDF tables for the per-op class draw.
        # Sampling via bisect over the cumulative weights consumes the
        # same single rng.random() call as random.choices() and picks
        # the same class, so streams are bit-identical to the choices()
        # implementation while skipping its per-call accumulation.
        self._cum_weights = list(accumulate(self._weights))
        self._cum_total = self._cum_weights[-1] + 0.0
        self._hi = len(self._classes) - 1
        # Hot-loop caches of immutable profile fields, plus the
        # geometric-sampling log denominator per dependency mean
        # (log(1 - 1/mean) is deterministic, so hoisting it out of
        # _pick_source leaves the sampled distances bit-identical).
        self._independent_frac = profile.independent_frac
        self._l1_miss = profile.l1_miss
        self._l2_frac = profile.l2_frac
        self._mispredict_rate = profile.mispredict_rate
        self._calm_log_denom = (
            math.log(1.0 - 1.0 / profile.dep_mean)
            if profile.dep_mean > 1.0 else 0.0)
        self._burst_log_denom = (
            math.log(1.0 - 1.0 / profile.burst_dep_mean)
            if profile.burst_dep_mean > 1.0 else 0.0)
        self._recent_int: Deque[int] = deque(maxlen=64)
        self._recent_fp: Deque[int] = deque(maxlen=64)
        self._next_int_dst = 1
        self._next_fp_dst = 1
        self._seq = 0
        self._phase_left = profile.calm_len if profile.bursty else 0
        self._in_burst = False
        self._stream_addr = 256 * 1024 * 1024  # cold streaming region

    def __iter__(self) -> Iterator[MicroOp]:
        return self

    def __next__(self) -> MicroOp:
        return self.generate()

    # ------------------------------------------------------------------
    def generate(self) -> MicroOp:
        """Produce the next micro-op."""
        self._advance_phase()
        opclass = self._classes[bisect(
            self._cum_weights, self._rng.random() * self._cum_total,
            0, self._hi)]
        op = self._build(opclass)
        self._seq += 1
        return op

    def take(self, count: int) -> Iterator[MicroOp]:
        """Yield exactly ``count`` micro-ops."""
        for _ in range(count):
            yield self.generate()

    # ------------------------------------------------------------------
    def warm_footprint(self):
        """(L1 addresses, L2 addresses) for cache warm-up before a
        timed run — the hot pool belongs in the L1, the warm pool in
        the L2 (the cold streaming region is compulsory-miss by
        design and cannot be warmed)."""
        l1 = range(0, _HOT_POOL_BYTES, _LINE)
        l2 = range(_HOT_POOL_BYTES, _HOT_POOL_BYTES + _WARM_POOL_BYTES,
                   _LINE)
        return l1, l2

    def _advance_phase(self) -> None:
        if not self.profile.bursty:
            return
        if self._phase_left <= 0:
            self._in_burst = not self._in_burst
            self._phase_left = (self.profile.burst_len if self._in_burst
                                else self.profile.calm_len)
        self._phase_left -= 1

    @property
    def in_burst(self) -> bool:
        return self._in_burst

    def _dep_mean(self) -> float:
        if self._in_burst:
            return self.profile.burst_dep_mean
        return self.profile.dep_mean

    def _pick_source(self, recent: Deque[int]) -> Optional[int]:
        rng = self._rng
        if rng.random() < self._independent_frac:
            return None
        if not recent:
            return 1
        if self._in_burst:
            mean = self.profile.burst_dep_mean
            log_denom = self._burst_log_denom
        else:
            mean = self.profile.dep_mean
            log_denom = self._calm_log_denom
        # Geometric distance: P(d) ~ (1-p)^(d-1) p with mean 1/p,
        # sampled in closed form via inversion.
        if mean <= 1.0:
            return recent[-1]
        u = rng.random()
        distance = 1 + int(math.log(u) / log_denom)
        if distance > len(recent):
            distance = len(recent)
        return recent[-distance]

    def _alloc_dst(self, fp: bool) -> int:
        if fp:
            dst = self._next_fp_dst
            self._next_fp_dst = dst % 30 + 1
            self._recent_fp.append(dst)
        else:
            dst = self._next_int_dst
            self._next_int_dst = dst % 30 + 1
            self._recent_int.append(dst)
        return dst

    def _address(self) -> int:
        rng = self._rng
        roll = rng.random()
        if roll >= self._l1_miss:
            offset = rng.randrange(_HOT_POOL_BYTES // _LINE) * _LINE
            return offset
        if rng.random() >= self._l2_frac:
            offset = rng.randrange(_WARM_POOL_BYTES // _LINE) * _LINE
            return _HOT_POOL_BYTES + offset
        self._stream_addr += _LINE  # never revisited: guaranteed miss
        return self._stream_addr

    def _build(self, opclass: OpClass) -> MicroOp:
        rng = self._rng
        seq = self._seq
        pc = seq & 0xFFFF
        if opclass is OpClass.INT_ALU or opclass is OpClass.INT_MUL:
            src1 = self._pick_source(self._recent_int)
            src2 = self._pick_source(self._recent_int)
            dst = self._alloc_dst(fp=False)
            return MicroOp(seq, opclass, dst=dst, src1=src1, src2=src2,
                           pc=pc)
        if opclass is OpClass.LOAD:
            src1 = self._pick_source(self._recent_int)
            dst = self._alloc_dst(fp=False)
            return MicroOp(seq, opclass, dst=dst, src1=src1,
                           mem_addr=self._address(), pc=pc)
        if opclass is OpClass.STORE:
            src1 = self._pick_source(self._recent_int)
            src2 = self._pick_source(self._recent_int)
            return MicroOp(seq, opclass, src1=src1, src2=src2,
                           mem_addr=self._address(), pc=pc)
        if opclass is OpClass.BRANCH:
            src1 = self._pick_source(self._recent_int)
            taken = rng.random() < 0.6
            wrong = rng.random() < self._mispredict_rate
            return MicroOp(seq, opclass, src1=src1, taken=taken,
                           mispredicted=wrong, pc=pc)
        if opclass is OpClass.FP_ADD or opclass is OpClass.FP_MUL:
            src1 = self._pick_source(self._recent_fp)
            src2 = self._pick_source(self._recent_fp)
            dst = self._alloc_dst(fp=True)
            return MicroOp(seq, opclass, dst=dst, src1=src1, src2=src2,
                           pc=pc)
        raise ValueError(f"cannot build op class {opclass}")
