"""Reproduction of "Balancing Resource Utilization to Mitigate Power
Density in Processor Pipelines" (Powell, Schuchman, Vijaykumar,
MICRO 2005).

Public API tour:

* :mod:`repro.pipeline` — out-of-order superscalar substrate (compacting
  issue queues, select trees, ALUs, register-file copies, caches).
* :mod:`repro.core` — the paper's techniques: activity toggling,
  fine-grain turnoff, and register-file port mappings, orchestrated by
  :class:`repro.core.ThermalManager`.
* :mod:`repro.power` / :mod:`repro.thermal` — Wattch-like energy
  accounting and a HotSpot-like RC thermal network.
* :mod:`repro.workloads` — synthetic SPEC2000 workload models.
* :mod:`repro.sim` — one-call full-system runs
  (:func:`repro.sim.run_simulation`) and the paper's experiments
  (:mod:`repro.sim.experiments`).
"""

from .core import (ALL_TECHNIQUES, BASELINE, ALUPolicy, IssueQueuePolicy,
                   MappingKind, RegFilePolicy, TechniqueConfig)
from .pipeline import (MicroOp, OpClass, Processor, ProcessorConfig,
                       Program, ThermalConfig)
from .sim import SimulationConfig, SimulationResult, run_simulation
from .thermal import FloorplanVariant
from .workloads import BENCHMARK_NAMES, WorkloadProfile, workload

__version__ = "1.0.0"

__all__ = [
    "ALL_TECHNIQUES", "ALUPolicy", "BASELINE", "BENCHMARK_NAMES",
    "FloorplanVariant", "IssueQueuePolicy", "MappingKind", "MicroOp",
    "OpClass", "Processor", "ProcessorConfig", "Program",
    "RegFilePolicy", "SimulationConfig", "SimulationResult",
    "TechniqueConfig", "ThermalConfig", "WorkloadProfile",
    "__version__", "run_simulation", "workload",
]
