"""On-chip temperature sensors.

The paper senses temperature at resource-copy granularity every
100,000 cycles (POWER5 ships 24 such sensors).  :class:`SensorBank`
reads block temperatures from the thermal model, optionally adding
quantization and offset error so controller robustness can be studied,
and keeps running statistics (time-average and maximum per block) that
the result tables report.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from .rc_model import ThermalModel


class SensorStats:
    """Per-block temperature history.

    Readings land in a preallocated numpy array that doubles when
    full, so recording stays amortized O(1) with no per-sample object
    churn, and the reported statistics are array reductions over the
    exact recorded values.
    """

    __slots__ = ("_values", "_count")

    def __init__(self, initial_size: int = 64) -> None:
        if initial_size < 1:
            raise ValueError("initial_size must be positive")
        self._values = np.empty(initial_size, dtype=np.float64)
        self._count = 0

    def record(self, value: float) -> None:
        values = self._values
        if self._count == values.shape[0]:
            grown = np.empty(values.shape[0] * 2, dtype=np.float64)
            grown[:self._count] = values
            self._values = values = grown
        values[self._count] = value
        self._count += 1

    @property
    def samples(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return float(self._values[:self._count].sum())

    @property
    def maximum(self) -> float:
        if not self._count:
            return float("-inf")
        return float(self._values[:self._count].max())

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return float(self._values[:self._count].mean())

    def history(self) -> np.ndarray:
        """The recorded readings, oldest first (a copy)."""
        return self._values[:self._count].copy()

    def snapshot_state(self) -> np.ndarray:
        """The recorded readings (a copy; identical to
        :meth:`history`, named for the handoff protocol)."""
        return self.history()

    def restore_state(self, values: np.ndarray) -> None:
        count = int(values.shape[0])
        if count > self._values.shape[0]:
            self._values = np.empty(max(count, 64), dtype=np.float64)
        self._values[:count] = values
        self._count = count


class SensorBank:
    """Reads (optionally imperfect) temperatures for the DTM logic."""

    def __init__(self, model: ThermalModel,
                 quantization_k: float = 0.0,
                 offsets: Optional[Mapping[str, float]] = None) -> None:
        if quantization_k < 0:
            raise ValueError("quantization must be non-negative")
        self.model = model
        self.quantization_k = quantization_k
        self.offsets = dict(offsets or {})
        self.stats: Dict[str, SensorStats] = {
            name: SensorStats() for name in model.floorplan.names}

    def read(self, name: str) -> float:
        """One sensor reading (with configured error), also recorded
        into the running statistics."""
        value = self.model.temperature(name) + self.offsets.get(name, 0.0)
        if self.quantization_k:
            steps = round(value / self.quantization_k)
            value = steps * self.quantization_k
        self.stats[name].record(value)
        return value

    def read_all(self, names: Optional[Sequence[str]] = None
                 ) -> Dict[str, float]:
        return {name: self.read(name)
                for name in (names or self.model.floorplan.names)}

    def mean(self, name: str) -> float:
        return self.stats[name].mean

    def maximum(self, name: str) -> float:
        return self.stats[name].maximum

    def history(self, name: str) -> np.ndarray:
        """Every recorded reading for ``name``, oldest first (a copy).

        One entry per sensing interval; the caller owns the array, so
        downsampling or mutating it cannot disturb the running stats.
        """
        return self.stats[name].history()

    def snapshot_state(self) -> Dict[str, np.ndarray]:
        """Per-block reading histories, for mid-run handoff of a run
        to another process (histories are result-visible: timelines,
        means, maxima)."""
        return {name: stats.snapshot_state()
                for name, stats in self.stats.items()}

    def restore_state(self, state: Dict[str, np.ndarray]) -> None:
        for name, values in state.items():
            self.stats[name].restore_state(values)
