"""On-chip temperature sensors.

The paper senses temperature at resource-copy granularity every
100,000 cycles (POWER5 ships 24 such sensors).  :class:`SensorBank`
reads block temperatures from the thermal model, optionally adding
quantization and offset error so controller robustness can be studied,
and keeps running statistics (time-average and maximum per block) that
the result tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .rc_model import ThermalModel


@dataclass
class SensorStats:
    """Running per-block temperature statistics."""

    samples: int = 0
    total: float = 0.0
    maximum: float = float("-inf")

    def record(self, value: float) -> None:
        self.samples += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


class SensorBank:
    """Reads (optionally imperfect) temperatures for the DTM logic."""

    def __init__(self, model: ThermalModel,
                 quantization_k: float = 0.0,
                 offsets: Optional[Mapping[str, float]] = None) -> None:
        if quantization_k < 0:
            raise ValueError("quantization must be non-negative")
        self.model = model
        self.quantization_k = quantization_k
        self.offsets = dict(offsets or {})
        self.stats: Dict[str, SensorStats] = {
            name: SensorStats() for name in model.floorplan.names}

    def read(self, name: str) -> float:
        """One sensor reading (with configured error), also recorded
        into the running statistics."""
        value = self.model.temperature(name) + self.offsets.get(name, 0.0)
        if self.quantization_k:
            steps = round(value / self.quantization_k)
            value = steps * self.quantization_k
        self.stats[name].record(value)
        return value

    def read_all(self, names: Optional[Sequence[str]] = None
                 ) -> Dict[str, float]:
        return {name: self.read(name)
                for name in (names or self.model.floorplan.names)}

    def mean(self, name: str) -> float:
        return self.stats[name].mean

    def maximum(self, name: str) -> float:
        return self.stats[name].maximum
