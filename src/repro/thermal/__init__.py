"""HotSpot-like RC thermal model over an EV6-style floorplan."""

from .floorplan import (Block, Floorplan, FloorplanVariant, ev6_floorplan,
                        FP_ADD_BLOCKS, FP_QUEUE_BLOCKS, INT_ALU_BLOCKS,
                        INT_QUEUE_BLOCKS, INT_REG_BLOCKS)
from .package import PackageConfig
from .rc_model import SINK_NODE, ThermalModel
from .sensors import SensorBank, SensorStats

__all__ = [
    "Block", "FP_ADD_BLOCKS", "FP_QUEUE_BLOCKS", "Floorplan",
    "FloorplanVariant", "INT_ALU_BLOCKS", "INT_QUEUE_BLOCKS",
    "INT_REG_BLOCKS", "PackageConfig", "SINK_NODE", "SensorBank",
    "SensorStats", "ThermalModel", "ev6_floorplan",
]
