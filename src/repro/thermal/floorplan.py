"""Floorplans (paper §3.2, Figure 5).

An EV6-like core floorplan scaled to 90 nm, with the granularity the
paper requires: the integer and FP issue queues split into two halves
each, the integer register file split into its two copies, IntExec
split into 6 individual ALUs and FPAdd into 4 individual adders — so
every resource *copy* is its own thermal block (previous work modelled
aggregates and could not see intra-resource asymmetry).

Three *constrained* variants scale the area of one resource down
(total chip power unchanged) until that resource is the thermal
bottleneck for peak-utilization applications, mirroring the paper's
methodology of simulating different thermal bottlenecks without
modelling every possible industrial floorplan.  The freed area is
absorbed by a nearby resource, keeping the die size constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Block:
    """One rectangular thermal block, dimensions in metres."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"block {self.name} must have positive size")

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    def shared_edge(self, other: "Block") -> float:
        """Length of the edge shared with ``other`` (0 if not adjacent)."""
        tol = 1e-9
        if abs(self.x2 - other.x) < tol or abs(other.x2 - self.x) < tol:
            lo, hi = max(self.y, other.y), min(self.y2, other.y2)
            return max(0.0, hi - lo)
        if abs(self.y2 - other.y) < tol or abs(other.y2 - self.y) < tol:
            lo, hi = max(self.x, other.x), min(self.x2, other.x2)
            return max(0.0, hi - lo)
        return 0.0

    def center_distance(self, other: "Block") -> float:
        cx1, cy1 = self.x + self.width / 2, self.y + self.height / 2
        cx2, cy2 = other.x + other.width / 2, other.y + other.height / 2
        return ((cx1 - cx2) ** 2 + (cy1 - cy2) ** 2) ** 0.5


class FloorplanVariant(enum.Enum):
    """Which back-end resource the floorplan makes the bottleneck."""

    BASE = "base"
    ISSUE_QUEUE = "issue_queue"
    ALU = "alu"
    REGFILE = "regfile"


class Floorplan:
    """A set of non-overlapping blocks tiling the die."""

    def __init__(self, blocks: Sequence[Block],
                 variant: FloorplanVariant = FloorplanVariant.BASE) -> None:
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate block names")
        self.blocks: Dict[str, Block] = {b.name: b for b in blocks}
        self.variant = variant

    @property
    def names(self) -> List[str]:
        return list(self.blocks)

    def __getitem__(self, name: str) -> Block:
        return self.blocks[name]

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def area(self, name: str) -> float:
        return self.blocks[name].area

    def total_area(self) -> float:
        return sum(b.area for b in self.blocks.values())

    def adjacency(self) -> List[Tuple[str, str, float]]:
        """All adjacent block pairs with their shared edge length."""
        pairs: List[Tuple[str, str, float]] = []
        items = list(self.blocks.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                edge = a.shared_edge(b)
                if edge > 0:
                    pairs.append((a.name, b.name, edge))
        return pairs


MM = 1e-3

#: Integer ALU blocks in select-priority order (index 0 hottest under
#: the conventional static-priority policy).
INT_ALU_BLOCKS = tuple(f"IntExec{i}" for i in range(6))
FP_ADD_BLOCKS = tuple(f"FPAdd{i}" for i in range(4))

#: Physical left-to-right placement of the ALU copies.  Select priority
#: is a wiring property, not a layout property, so the floorplan
#: interleaves high- and low-priority units; this keeps the lateral
#: heat load on the two issue-queue halves (the row below) balanced,
#: so inter-half temperature differences reflect the queue's own
#: compaction asymmetry rather than which ALUs happen to sit above.
INT_ALU_PLACEMENT = ("IntExec0", "IntExec5", "IntExec2",
                     "IntExec3", "IntExec4", "IntExec1")
FP_ADD_PLACEMENT = ("FPAdd0", "FPAdd3", "FPAdd1", "FPAdd2")
INT_REG_BLOCKS = ("IntReg0", "IntReg1")
INT_QUEUE_BLOCKS = ("IntQ0", "IntQ1")
FP_QUEUE_BLOCKS = ("FPQ0", "FPQ1")


def _row(names: Sequence[str], x0: float, x1: float, y0: float,
         y1: float) -> List[Block]:
    """Tile ``names`` left-to-right across [x0, x1) at rows [y0, y1)."""
    width = (x1 - x0) / len(names)
    return [Block(name, x0 + i * width, y0, width, y1 - y0)
            for i, name in enumerate(names)]


def ev6_floorplan(variant: FloorplanVariant = FloorplanVariant.BASE,
                  *, iq_scale: float = 1.0, alu_scale: float = 1.0,
                  reg_scale: float = 1.0) -> Floorplan:
    """Build the EV6-like floorplan, optionally area-constrained.

    The ``*_scale`` factors shrink the height of the named resource's
    row; the constrained variants pass their default scales but callers
    may override for ablation studies.  Freed height is absorbed by the
    row's neighbour (the map/rename logic), keeping the die square.
    """
    if variant is FloorplanVariant.ISSUE_QUEUE:
        iq_scale = min(iq_scale, 0.2)
    elif variant is FloorplanVariant.ALU:
        alu_scale = min(alu_scale, 0.2)
    elif variant is FloorplanVariant.REGFILE:
        reg_scale = min(reg_scale, 0.22)
    for scale in (iq_scale, alu_scale, reg_scale):
        if not 0.05 <= scale <= 1.0:
            raise ValueError("area scale factors must be in [0.05, 1]")

    blocks: List[Block] = []
    die = 8.0 * MM

    # Bottom: caches.
    blocks.append(Block("Icache", 0.0, 0.0, 4 * MM, 2 * MM))
    blocks.append(Block("Dcache", 4 * MM, 0.0, 4 * MM, 2 * MM))
    # Support row.
    blocks += _row(("Bpred", "ITB", "DTB", "LdStQ"), 0.0, die,
                   2 * MM, 3 * MM)

    # Left column: FP cluster (x in [0, 3mm)).
    fp_x1 = 3 * MM
    fq_h = 1.0 * MM * iq_scale
    blocks.append(Block("FPMap", 0.0, 3 * MM, fp_x1, 1 * MM + (1.0 * MM - fq_h)))
    fq_y0 = 4 * MM + (1.0 * MM - fq_h)
    blocks += _row(("FPQ0", "FPQ1"), 0.0, fp_x1, fq_y0, fq_y0 + fq_h)
    fa_h = 1.5 * MM * alu_scale
    blocks += _row(FP_ADD_PLACEMENT, 0.0, fp_x1, 5 * MM, 5 * MM + fa_h)
    blocks.append(Block("FPMul", 0.0, 5 * MM + fa_h, 1.5 * MM,
                        3 * MM - fa_h))
    blocks.append(Block("FPReg", 1.5 * MM, 5 * MM + fa_h, 1.5 * MM,
                        3 * MM - fa_h))

    # Right region: integer cluster (x in [3mm, 8mm)).
    ix0 = 3 * MM
    iq_h = 1.0 * MM * iq_scale
    blocks.append(Block("IntMap", ix0, 3 * MM, die - ix0,
                        1 * MM + (1.0 * MM - iq_h)))
    iq_y0 = 4 * MM + (1.0 * MM - iq_h)
    blocks += _row(("IntQ0", "IntQ1"), ix0, die, iq_y0, iq_y0 + iq_h)
    ie_h = 1.5 * MM * alu_scale
    blocks += _row(INT_ALU_PLACEMENT, ix0, die, 5 * MM, 5 * MM + ie_h)
    ir_h = 1.5 * MM * reg_scale
    blocks += _row(INT_REG_BLOCKS, ix0, die, 5 * MM + ie_h,
                   5 * MM + ie_h + ir_h)
    filler_y = 5 * MM + ie_h + ir_h
    if die - filler_y > 1e-9:
        blocks.append(Block("IntFill", ix0, filler_y, die - ix0,
                            die - filler_y))

    return Floorplan(blocks, variant)
