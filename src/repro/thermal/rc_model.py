"""RC thermal network (HotSpot-style) over a floorplan.

Every floorplan block is one thermal node with

* a vertical conductance to a single lumped heatsink node (dominant
  path — this is why adjacent resource copies can sit several kelvin
  apart),
* lateral conductances to each adjacent block (weak path), and
* a thermal capacitance proportional to its silicon volume.

The heatsink node convects to a fixed ambient.  The network is the
linear ODE  ``C dT/dt = -G T + P + g_amb * T_amb`` which we integrate
*exactly* over each fixed sensing interval using the matrix exponential
(precomputed once), so long simulations cost two small mat-vecs per
sample regardless of stiffness.

Thermal *acceleration* (DESIGN.md §5) divides all capacitances by a
constant so millisecond dynamics complete within short simulated runs;
steady-state temperatures are unaffected (G is untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from .floorplan import Floorplan
from .package import PackageConfig

SINK_NODE = "__sink__"


class ThermalModel:
    """Discrete-time exact integrator of the floorplan RC network."""

    def __init__(self, floorplan: Floorplan,
                 package: Optional[PackageConfig] = None,
                 ambient_k: float = 318.0,
                 acceleration: float = 1.0) -> None:
        if acceleration < 1.0:
            raise ValueError("acceleration must be >= 1")
        self.floorplan = floorplan
        self.package = package or PackageConfig()
        self.ambient_k = ambient_k
        self.acceleration = acceleration

        self.names: List[str] = list(floorplan.names) + [SINK_NODE]
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)
        sink = self.index[SINK_NODE]

        conductance = np.zeros((n, n))
        self._g_ambient = np.zeros(n)
        capacitance = np.zeros(n)

        for name in floorplan.names:
            i = self.index[name]
            block = floorplan[name]
            g_vert = 1.0 / self.package.vertical_resistance(block.area)
            conductance[i, sink] -= g_vert
            conductance[sink, i] -= g_vert
            conductance[i, i] += g_vert
            conductance[sink, sink] += g_vert
            capacitance[i] = self.package.block_capacitance(block.area)

        for name_a, name_b, edge in floorplan.adjacency():
            i, j = self.index[name_a], self.index[name_b]
            distance = floorplan[name_a].center_distance(floorplan[name_b])
            g_lat = 1.0 / self.package.lateral_resistance(distance, edge)
            conductance[i, j] -= g_lat
            conductance[j, i] -= g_lat
            conductance[i, i] += g_lat
            conductance[j, j] += g_lat

        g_conv = 1.0 / self.package.convection_resistance_k_per_w
        conductance[sink, sink] += g_conv
        self._g_ambient[sink] = g_conv
        capacitance[sink] = self.package.sink_capacitance()

        self._G = conductance
        self._C = capacitance / acceleration
        self.temps = np.full(n, ambient_k, dtype=float)

        #: (Ad, Bd) update matrices keyed by dt.  Runs that alternate
        #: between two sensing intervals (e.g. warm-up vs measurement)
        #: pay the matrix exponential once per distinct dt, not per
        #: switch.
        self._ops: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
        self._p_buf = np.zeros(n)

    # ------------------------------------------------------------------
    # state handoff
    # ------------------------------------------------------------------
    def snapshot_state(self) -> np.ndarray:
        """The model's only mutable state: the node temperature vector
        (a copy).  Everything else is derived from the constructor."""
        return self.temps.copy()

    def restore_state(self, temps: np.ndarray) -> None:
        if temps.shape != self.temps.shape:
            raise ValueError("temperature vector shape mismatch")
        self.temps = np.asarray(temps, dtype=float).copy()

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def _prepare(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Precompute (and cache) the exact discrete-time update for
        step ``dt``."""
        a_mat = -self._G / self._C[:, None]
        ad = expm(a_mat * dt)
        # Bd = A^-1 (Ad - I) C^-1 : maps power vectors to temperature.
        n = a_mat.shape[0]
        bd = np.linalg.solve(a_mat, ad - np.eye(n)) / self._C[None, :]
        self._ops[dt] = (ad, bd)
        return ad, bd

    def step(self, powers: Mapping[str, float], dt: float) -> None:
        """Advance the network by ``dt`` seconds with constant
        ``powers`` (watts per block name) over the interval."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        ops = self._ops.get(dt)
        ad, bd = ops if ops is not None else self._prepare(dt)
        p = np.zeros(len(self.names))
        for name, watts in powers.items():
            p[self.index[name]] = watts
        p += self._g_ambient * self.ambient_k
        self.temps = ad @ self.temps + bd @ p

    def step_vector(self, die_powers: np.ndarray, dt: float) -> None:
        """Advance by ``dt`` seconds with ``die_powers`` given as a
        vector aligned with ``floorplan.names`` (the hot path: no dict
        is built and the sink/ambient term reuses a scratch buffer).

        Numerically identical to :meth:`step` with the equivalent
        mapping — same power vector, same cached update matrices.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if die_powers.shape != (len(self.names) - 1,):
            raise ValueError(
                f"expected {len(self.names) - 1} die powers, "
                f"got shape {die_powers.shape}")
        ops = self._ops.get(dt)
        ad, bd = ops if ops is not None else self._prepare(dt)
        p = self._p_buf
        p[:-1] = die_powers
        p[-1] = self._g_ambient[-1] * self.ambient_k
        self.temps = ad @ self.temps + bd @ p

    def step_vector_batch(self, others: Sequence["ThermalModel"],
                          die_powers: np.ndarray, dt: float) -> None:
        """Advance a batch of models by ``dt`` with row ``i`` of
        ``die_powers`` (``[n_runs, n_die]``) driving run ``i``'s model
        (row 0 drives this model).

        Each run keeps its own ``ad @ temps + bd @ p`` matrix-vector
        update: collapsing the batch into one matrix-matrix product
        would route through a different BLAS kernel (dgemm vs dgemv)
        whose reassociated accumulation differs in the last ulp —
        and the house rule requires batched runs to stay bit-identical
        to per-run execution.  The batch dimension amortizes the call
        and validation overhead across the run axis.
        """
        models = [self, *others]
        if die_powers.ndim != 2 or die_powers.shape[0] != len(models):
            raise ValueError("one power row per model")
        for model, row in zip(models, die_powers):
            model.step_vector(row, dt)

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def temperature(self, name: str) -> float:
        return float(self.temps[self.index[name]])

    def temperatures(self) -> Dict[str, float]:
        return {name: float(self.temps[i])
                for name, i in self.index.items() if name != SINK_NODE}

    def sink_temperature(self) -> float:
        return float(self.temps[self.index[SINK_NODE]])

    def set_temperatures(self, values: Mapping[str, float]) -> None:
        for name, temp in values.items():
            self.temps[self.index[name]] = temp

    def steady_state(self, powers: Mapping[str, float]) -> Dict[str, float]:
        """Solve ``G T = P + g_amb T_amb`` (temperatures at equilibrium
        under constant power), without changing the current state."""
        p = np.zeros(len(self.names))
        for name, watts in powers.items():
            p[self.index[name]] = watts
        p += self._g_ambient * self.ambient_k
        temps = np.linalg.solve(self._G, p)
        return {name: float(temps[i]) for name, i in self.index.items()}

    def initialize_steady_state(self, powers: Mapping[str, float]) -> None:
        """Set the state to the equilibrium for ``powers`` (warm-up)."""
        steady = self.steady_state(powers)
        for name, temp in steady.items():
            self.temps[self.index[name]] = temp

    def hottest(self) -> str:
        """Name of the hottest die block (first one on ties, matching
        a first-wins linear scan).  The sink occupies the last node, so
        the argmax runs over ``temps[:-1]``."""
        return self.names[int(np.argmax(self.temps[:-1]))]
