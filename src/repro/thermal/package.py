"""Thermal package parameters (silicon, spreader, sink).

Material constants and package geometry used to build the RC network.
Values follow HotSpot's defaults for a desktop package; the paper's
Table 2 supplies the heatsink thickness (6.9 mm) and convection
resistance (0.8 K/W).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PackageConfig:
    """Material and package constants for the RC thermal model."""

    #: Silicon thermal conductivity, W/(m K) (at operating temperature).
    k_silicon: float = 100.0
    #: Silicon volumetric heat capacity, J/(m^3 K).
    c_silicon: float = 1.75e6
    #: Die (silicon) thickness, m (HotSpot default).  A thin die is
    #: what makes vertical conduction dominate lateral conduction, the
    #: physical premise behind intra-resource hotspots (paper 1).
    die_thickness_m: float = 0.15e-3
    #: Copper spreader+sink base conductivity, W/(m K).
    k_sink: float = 400.0
    #: Copper volumetric heat capacity, J/(m^3 K).
    c_sink: float = 3.55e6
    #: Heatsink thickness, m (paper Table 2: 6.9 mm).
    sink_thickness_m: float = 6.9e-3
    #: Heatsink base side length, m (square), typically ~6x die side.
    sink_side_m: float = 60e-3
    #: Convection resistance sink->ambient, K/W (paper Table 2).
    convection_resistance_k_per_w: float = 0.8
    #: Extra vertical spreading resistance per unit area, K m^2/W
    #: (lumped TIM + spreading correction).
    interface_resistivity_k_m2_per_w: float = 8e-6

    def __post_init__(self) -> None:
        if min(self.k_silicon, self.c_silicon, self.die_thickness_m,
               self.k_sink, self.c_sink, self.sink_thickness_m,
               self.sink_side_m,
               self.convection_resistance_k_per_w) <= 0:
            raise ValueError("package constants must be positive")

    def vertical_resistance(self, area_m2: float) -> float:
        """Block -> sink vertical resistance (conduction through die
        plus interface/spreading), K/W."""
        if area_m2 <= 0:
            raise ValueError("area must be positive")
        r_die = self.die_thickness_m / (self.k_silicon * area_m2)
        r_interface = self.interface_resistivity_k_m2_per_w / area_m2
        return r_die + r_interface

    def lateral_resistance(self, distance_m: float, edge_m: float) -> float:
        """Block <-> block lateral resistance through the die, K/W.

        ``distance_m`` is the centre-to-centre distance, ``edge_m`` the
        shared edge length.
        """
        if distance_m <= 0 or edge_m <= 0:
            raise ValueError("distance and edge must be positive")
        return distance_m / (self.k_silicon * self.die_thickness_m * edge_m)

    def block_capacitance(self, area_m2: float) -> float:
        """Thermal capacitance of one die block, J/K."""
        return self.c_silicon * area_m2 * self.die_thickness_m

    def sink_capacitance(self) -> float:
        """Lumped heatsink capacitance, J/K."""
        return (self.c_sink * self.sink_side_m ** 2 * self.sink_thickness_m)
