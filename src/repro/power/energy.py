"""Event energies (paper Table 3) and the rest of the power model.

The issue-queue component energies reproduce the paper's Table 3
verbatim (nanojoules).  Energies for the remaining structures follow
Wattch-style per-access accounting at 90 nm / 1.2 V; their absolute
values are calibration constants (DESIGN.md §5) chosen so that the
constrained floorplans place each study's target resource at the
thermal threshold under peak utilization, as the paper's area-scaling
methodology prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

NANOJOULE = 1e-9


@dataclass(frozen=True)
class IssueQueueEnergies:
    """Paper Table 3: issue energy by component, in nanojoules."""

    compact_entry: float = 0.0123     # Compact (entry-to-entry), per entry
    compact_mux: float = 0.0023      # Compact (mux select), per entry
    long_compaction: float = 0.0687  # Long compaction, per entry
    counter_stage1: float = 0.0011   # per entry
    counter_stage2: float = 0.0021   # per entry
    clock_gating: float = 0.0015     # entire queue, per cycle
    tag_broadcast: float = 0.0450    # per broadcast
    payload_ram: float = 0.0675      # per instruction
    select_access: float = 0.0051    # per instruction

    def as_table(self) -> Dict[str, float]:
        """The Table 3 rows, for tests and documentation."""
        return {
            "Compact (entry-to-entry) (per entry)": self.compact_entry,
            "Compact (Mux select) (per entry)": self.compact_mux,
            "Long Compaction (per entry)": self.long_compaction,
            "Counter Stage 1 (per entry)": self.counter_stage1,
            "Counter Stage 2 (per entry)": self.counter_stage2,
            "Clock Gating Logic (entire queue)": self.clock_gating,
            "Tag Broadcast/Match (per broadcast)": self.tag_broadcast,
            "Payload RAM Access (per inst.)": self.payload_ram,
            "Select Access (per inst.)": self.select_access,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (nJ) and static power densities (W/m^2)."""

    issue_queue: IssueQueueEnergies = field(
        default_factory=IssueQueueEnergies)

    # Execution units, per operation.
    int_alu_op: float = 0.13
    int_mul_op: float = 0.30
    fp_add_op: float = 0.22
    fp_mul_op: float = 0.45

    # Register files, per access per copy.
    rf_read: float = 0.09
    rf_write: float = 0.11
    fp_reg_access: float = 0.12

    # Front end and memory, per event.
    icache_fetch: float = 0.08
    dcache_access: float = 0.20
    bpred_lookup: float = 0.025
    rename_op: float = 0.04
    lsq_op: float = 0.07
    tlb_lookup: float = 0.015

    #: Static (leakage + clock-tree) power density for every block.
    #: At 90 nm leakage is a large, activity-independent fraction of
    #: total power, which compresses benchmark-to-benchmark temperature
    #: spread (cold benchmarks still run warm).
    leakage_density_w_per_m2: float = 4.0e5
    #: Per-block overrides of the static density.  The issue queues are
    #: dense dynamic-logic structures with a high static floor.
    leakage_overrides: Mapping[str, float] = field(
        default_factory=lambda: {
            "IntQ0": 4.5e5, "IntQ1": 4.5e5,
            "FPQ0": 4.5e5, "FPQ1": 4.5e5,
        })

    def leakage_watts(self, block_name: str, area_m2: float) -> float:
        """Static power of one block."""
        density = self.leakage_overrides.get(
            block_name, self.leakage_density_w_per_m2)
        return density * area_m2


DEFAULT_ENERGY_MODEL = EnergyModel()
