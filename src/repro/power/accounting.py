"""Power accounting: activity counters -> per-block watts.

The accountant diffs consecutive :class:`ActivitySnapshot` objects from
the processor (cumulative event counts), multiplies deltas by the event
energies of :class:`~repro.power.energy.EnergyModel`, adds static
leakage per block, and divides by the wall-clock length of the interval
— producing the per-block power vector the thermal model integrates.

Aggressive clock gating is implicit: structures that did nothing in an
interval contribute only their leakage, matching the paper's use of
Wattch's aggressive gating mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..pipeline.processor import ActivitySnapshot
from ..thermal.floorplan import (FP_ADD_BLOCKS, INT_ALU_BLOCKS,
                                 INT_REG_BLOCKS, Floorplan)
from .energy import NANOJOULE, EnergyModel


def _iq_half_energies(prev, cur, energies) -> List[float]:
    """Energy (nJ) dissipated by each physical half of one issue queue
    over the interval between two counter snapshots."""
    halves = [0.0, 0.0]
    long_total = 0
    for h in (0, 1):
        # counter_evals counts entry-cycles whose clock gating was
        # defeated by an invalid entry below (paper 2.1): the entry's
        # data output lines, cross-queue mux selects, and both counter
        # stages evaluate on every such cycle - this is what makes the
        # tail region hot while the head idles.
        enabled = cur.counter_evals[h] - prev.counter_evals[h]
        long_total += cur.long_moves[h] - prev.long_moves[h]
        halves[h] += enabled * (energies.compact_entry
                                + energies.compact_mux
                                + energies.counter_stage1
                                + energies.counter_stage2)
    # Global queue activity is physically distributed across both
    # halves (paper 3.1): broadcast, payload RAM, select, gating logic.
    # Long-compaction wires span the full queue length, so their charge
    # heats both halves (the driver's local share is already counted in
    # the entry's ordinary compaction move).
    shared = long_total * energies.long_compaction
    shared += (cur.broadcasts - prev.broadcasts) * energies.tag_broadcast
    shared += (cur.payload_ops - prev.payload_ops) * energies.payload_ram
    shared += (cur.select_grants - prev.select_grants) * energies.select_access
    shared += (cur.cycles - prev.cycles) * energies.clock_gating
    halves[0] += shared / 2
    halves[1] += shared / 2
    return halves


class PowerAccountant:
    """Turns activity deltas into per-block power for the thermal model."""

    def __init__(self, floorplan: Floorplan,
                 energy_model: Optional[EnergyModel] = None) -> None:
        self.floorplan = floorplan
        self.energy = energy_model or EnergyModel()
        self._last: Optional[ActivitySnapshot] = None
        # Two independently-accumulated energy totals: the scalar path
        # sums every event energy plus leakage as it is computed; the
        # per-block path integrates the final power vector.  They must
        # agree (the sanitizer's energy-conservation invariant) — a
        # power key dropped on the floor or double-counted shows up as
        # a divergence between the two.
        self.total_energy_j = 0.0
        self.block_energy_j: Dict[str, float] = {}
        # Hot-path caches: leakage is constant (frozen energy model,
        # fixed floorplan), so compute the per-block vector and its
        # total once; event energies scatter into a preallocated
        # vector through indices resolved here instead of building a
        # dict per sample.
        names = list(floorplan.names)
        self._names = names
        pos = {name: i for i, name in enumerate(names)}
        leak = [self.energy.leakage_watts(n, floorplan.area(n))
                for n in names]
        self._leak_vec_w = np.array(leak)
        self._leak_total_w = sum(leak)
        self._nj = np.zeros(len(names))
        # -1 marks an accounting target absent from this floorplan:
        # its energy still lands in the run total (mirroring the old
        # dict path, which summed all of nj but only folded known
        # blocks into the power vector).
        self._alu_idx = [pos.get(n, -1) for n in INT_ALU_BLOCKS]
        self._fp_add_idx = [pos.get(n, -1) for n in FP_ADD_BLOCKS]
        self._rf_idx = [pos.get(n, -1) for n in INT_REG_BLOCKS]
        self._misc_idx = {n: pos.get(n, -1) for n in (
            "IntQ0", "IntQ1", "FPQ0", "FPQ1", "FPMul", "FPReg",
            "Icache", "Dcache", "Bpred", "IntMap", "FPMap", "LdStQ",
            "ITB", "DTB")}

    # ------------------------------------------------------------------
    def leakage_powers(self) -> Dict[str, float]:
        """Static power of every block (the floor under all activity)."""
        return {name: self.energy.leakage_watts(
                    name, self.floorplan.area(name))
                for name in self.floorplan.names}

    def reset(self, snapshot: ActivitySnapshot) -> None:
        """Set the baseline snapshot (start of the first interval).

        The energy totals restart with the baseline so they cover only
        the measured region (warm-up energy is not mixed in).
        """
        self._last = snapshot
        self.total_energy_j = 0.0
        self.block_energy_j = {}

    def snapshot_state(self) -> Dict[str, object]:
        """The accountant's mutable interval state (everything not
        derived from the constructor arguments), for mid-run handoff
        of a run to another process."""
        return {"last": self._last,
                "total_energy_j": self.total_energy_j,
                "block_energy_j": dict(self.block_energy_j)}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._last = state["last"]  # type: ignore[assignment]
        self.total_energy_j = state["total_energy_j"]  # type: ignore
        self.block_energy_j = dict(state["block_energy_j"])  # type: ignore

    def sample(self, snapshot: ActivitySnapshot,
               interval_s: float) -> Dict[str, float]:
        """Per-block average power (W) over the elapsed interval.

        Dict view over :meth:`sample_powers` (the hot path); keys are
        ``floorplan.names``.
        """
        powers = self.sample_powers(snapshot, interval_s)
        return dict(zip(self._names, powers.tolist()))

    def sample_powers(self, snapshot: ActivitySnapshot,
                      interval_s: float) -> np.ndarray:
        """Per-block average power (W) as a vector aligned with
        ``floorplan.names`` — ready for
        :meth:`~repro.thermal.rc_model.ThermalModel.step_vector`.

        Numerically identical to the original dict accounting: each
        block's power is leakage plus ``event_nj * 1e-9 / interval_s``
        with the same operation order, and the energy totals accumulate
        in the same block order.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if self._last is None:
            raise RuntimeError("call reset() with a baseline snapshot first")
        prev, cur = self._last, snapshot
        self._last = snapshot
        e = self.energy
        nj = self._nj
        nj[:] = 0.0
        misc = self._misc_idx
        sum_nj = 0.0

        int_halves = _iq_half_energies(prev.int_iq, cur.int_iq, e.issue_queue)
        fp_halves = _iq_half_energies(prev.fp_iq, cur.fp_iq, e.issue_queue)
        for name, value in (("IntQ0", int_halves[0]),
                            ("IntQ1", int_halves[1]),
                            ("FPQ0", fp_halves[0]),
                            ("FPQ1", fp_halves[1])):
            sum_nj += value
            i = misc[name]
            if i >= 0:
                nj[i] = value

        for j, i in enumerate(self._alu_idx):
            value = (cur.alu_ops[j] - prev.alu_ops[j]) * e.int_alu_op
            sum_nj += value
            if i >= 0:
                nj[i] = value
        for j, i in enumerate(self._fp_add_idx):
            value = (cur.fp_add_ops[j] - prev.fp_add_ops[j]) * e.fp_add_op
            sum_nj += value
            if i >= 0:
                nj[i] = value
        value = (cur.fp_mul_ops - prev.fp_mul_ops) * e.fp_mul_op
        sum_nj += value
        if misc["FPMul"] >= 0:
            nj[misc["FPMul"]] = value

        for j, i in enumerate(self._rf_idx):
            reads = cur.rf_reads[j] - prev.rf_reads[j]
            writes = cur.rf_writes[j] - prev.rf_writes[j]
            value = reads * e.rf_read + writes * e.rf_write
            sum_nj += value
            if i >= 0:
                nj[i] = value

        fetched = cur.fetched - prev.fetched
        l1d = cur.l1d_accesses - prev.l1d_accesses
        for name, value in (
                ("FPReg", (cur.fp_reg_accesses - prev.fp_reg_accesses)
                 * e.fp_reg_access),
                ("Icache", fetched * e.icache_fetch),
                ("Dcache", l1d * e.dcache_access),
                ("Bpred", fetched * e.bpred_lookup),
                ("IntMap", (cur.int_iq.inserts - prev.int_iq.inserts)
                 * e.rename_op),
                ("FPMap", (cur.fp_iq.inserts - prev.fp_iq.inserts)
                 * e.rename_op),
                ("LdStQ", l1d * e.lsq_op),
                ("ITB", fetched * e.tlb_lookup),
                ("DTB", l1d * e.tlb_lookup)):
            sum_nj += value
            i = misc[name]
            if i >= 0:
                nj[i] = value

        powers = self._leak_vec_w + nj * NANOJOULE / interval_s
        self.total_energy_j += (self._leak_total_w * interval_s
                                + sum_nj * NANOJOULE)
        block_energy = self.block_energy_j
        for name, energy_j in zip(self._names,
                                  (powers * interval_s).tolist()):
            block_energy[name] = block_energy.get(name, 0.0) + energy_j
        return powers

    def sample_powers_batch(self, others: List["PowerAccountant"],
                            snapshots: List[ActivitySnapshot],
                            interval_s: float) -> np.ndarray:
        """Per-block power for a whole batch of runs at one sampling
        boundary: row ``i`` of the ``[n_runs, n_blocks]`` result is
        run ``i``'s power vector (row 0 is this accountant's).

        Each run's accounting is evaluated with exactly the scalar
        operation order of :meth:`sample_powers` — the house rule
        demands batched results stay ``asdict``-identical to per-run
        results, and reassociating the per-block sums into one matrix
        expression would perturb the last ulp (and the per-run energy
        dictionaries must accumulate per run regardless).  The batch
        dimension buys one array allocation and one call per boundary
        instead of per run; the heavy lifting stays elementwise.
        """
        accountants = [self, *others]
        if len(accountants) != len(snapshots):
            raise ValueError("one snapshot per accountant")
        return np.stack([
            accountant.sample_powers(snapshot, interval_s)
            for accountant, snapshot in zip(accountants, snapshots)])

    def typical_powers(self, utilization: float = 0.5) -> Dict[str, float]:
        """A representative power vector for steady-state warm-up.

        ``utilization`` scales a nominal all-blocks-active dynamic
        power on top of leakage; used to initialize the thermal model
        near realistic operating temperatures before a run.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        powers = self.leakage_powers()
        # Nominal dynamic density comparable to the leakage floor.
        for name in powers:
            powers[name] += (utilization * self.energy.leakage_density_w_per_m2
                             * self.floorplan.area(name))
        return powers
