"""Wattch-like event-energy power model."""

from .accounting import PowerAccountant
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel, IssueQueueEnergies

__all__ = ["DEFAULT_ENERGY_MODEL", "EnergyModel", "IssueQueueEnergies",
           "PowerAccountant"]
