"""Batched grid execution: one kernel invocation per warm-state group.

A figure grid is many technique variants of the same benchmark.  After
PR 3's warm-state checkpoints those variants already share one warm-up;
this module makes them share *measurement* too.  Pending runs are
grouped by a batch key — the warm-checkpoint key (benchmark, seed,
warm-relevant processor/energy/technique fields) plus everything that
must agree for lock-step execution (cycle budget, thermal
configuration) — and each group executes as a single
:func:`repro.pipeline.kernel.run_batch` invocation: every run's SoA
counters live in one :class:`~repro.pipeline.soa.RunAxisStore` matrix,
runs that execute identically share one macro-stepped execution, and
power/thermal sampling crosses the run axis in one batched call per
boundary.

The batch path *declines* work it cannot prove equivalent:

* sanitized runs (the sanitizer wraps per-cycle hooks whose bookkeeping
  is inherently per-run-in-flight),
* traced runs (``TraceCollector`` events must interleave exactly as a
  solo run would emit them),
* groups of one (nothing to share), and
* runs whose trace cannot be replayed from a repositionable cursor.

Declined runs flow through the existing per-run kernel unchanged, and
``REPRO_BATCH=0`` declines everything — the three execution paths
(batched, per-run kernel, ``REPRO_KERNEL=0`` reference loop) produce
``dataclasses.asdict``-identical per-run results, which
``tests/pipeline/test_batch.py`` asserts across the figure matrix.
"""

from __future__ import annotations

import json
from functools import partial
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..analysis.sanitize import sanitize_enabled
from ..core.policies import IssueQueuePolicy
from ..obs.collector import trace_enabled
from ..pipeline.kernel import BatchRun, run_batch
from ..pipeline.soa import RunAxisStore
from .checkpoint import _stable, checkpoint_key
from .parallel import WorkerOutcome, _prepared_simulator
from .runner import SimulationConfig, Simulator, _gc_paused


class BatchDeclined(Exception):
    """The group cannot run batched; fall back to per-run execution."""


def _reads_pipeline(config: SimulationConfig) -> bool:
    """Whether this run's DTM inspects live pipeline state at sampling
    boundaries (the activity-toggling policy reads queue occupancy and
    counters) — such runs execute for real inside a batch."""
    return config.techniques.issue_queue is IssueQueuePolicy.ACTIVITY_TOGGLING


def batch_key(config: SimulationConfig) -> str:
    """Grouping key: runs with equal keys can share one batched kernel
    invocation.

    The warm-checkpoint key guarantees identical post-warm-up state
    (same benchmark, seed, processor, energy, warm-relevant technique
    fields); the cycle budget and the full thermal configuration are
    appended because lock-step execution needs one boundary schedule
    and comparable thermal trajectories.  Raises ``TypeError`` for
    configs :func:`checkpoint_key` cannot key.
    """
    payload = {
        "warm": checkpoint_key(config),
        "max_cycles": config.max_cycles,
        "thermal": _stable(config.thermal),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _eligible(config: SimulationConfig) -> bool:
    return not (config.sanitize or sanitize_enabled()
                or config.trace_events or trace_enabled())


def plan_groups(configs: Sequence[SimulationConfig],
                pending: Sequence[int]) -> List[List[int]]:
    """Partition pending run indices into batchable groups (size >= 2).

    Indices not covered by a returned group — ineligible runs and
    groups of one — stay with the caller's per-run path.  Submission
    order is preserved within each group.
    """
    buckets: Dict[str, List[int]] = {}
    for i in pending:
        config = configs[i]
        if not _eligible(config):
            continue
        try:
            key = batch_key(config)
        except TypeError:
            continue
        buckets.setdefault(key, []).append(i)
    return [group for group in buckets.values() if len(group) >= 2]


def run_group(configs: Sequence[SimulationConfig],
              checkpoint_root: Optional[str] = None
              ) -> List[WorkerOutcome]:
    """Execute one batch-compatible group in-process, batched.

    The first run warms up (or restores the cell's on-disk warm
    checkpoint); every other run restores the same warm state from an
    in-memory blob, which is the bit-identity-preserving follower
    construction the checkpoint subsystem already guarantees.  Raises
    :class:`BatchDeclined` when the group turns out not to be
    batchable (non-replayable trace).
    """
    if len(configs) < 2:
        raise BatchDeclined("nothing to batch")
    leader, restored, captured = _prepared_simulator(
        configs[0], checkpoint_root)
    if not leader.supports_checkpoint:
        raise BatchDeclined("trace is not replayable")
    leader.prepare()
    blob = leader.capture_warm_state()
    sims: List[Simulator] = [leader]
    for config in configs[1:]:
        sims.append(Simulator.from_checkpoint(config, blob))

    proc0 = leader.processor
    store = RunAxisStore(
        len(sims), len(proc0.int_alus), len(proc0.fp_adders),
        proc0.regfile.n_copies)
    runs: List[BatchRun] = []
    for i, sim in enumerate(sims):
        sim.processor.adopt_run_axis(store, i)
        runs.append(BatchRun(sim.processor, i,
                             reads_pipeline=_reads_pipeline(sim.config)))
        sim._measure_started = True
        sim._sample_s = 0.0

    start = perf_counter()
    with _gc_paused():
        run_batch(runs, store, configs[0].max_cycles,
                  configs[0].thermal.sensor_interval_cycles,
                  partial(_sample_boundary, sims))
    wall_s = perf_counter() - start

    # Per-run stage attribution: the measure wall clock is shared by
    # the whole group, so each run is charged an even share — the sum
    # across the group equals the real elapsed time (the per-run
    # split is bookkeeping, never part of the result payload).
    sample_total_s = sum(sim._sample_s for sim in sims)
    measure_share_s = (wall_s - sample_total_s) / len(sims)
    outcomes: List[WorkerOutcome] = []
    for i, sim in enumerate(sims):
        sim.stage_times["sample_s"] = sim._sample_s
        sim.stage_times["measure_s"] = measure_share_s
        outcomes.append(WorkerOutcome(
            sim._collect(),
            sanitized=sim.sanitizer is not None,
            sanitizer_checks=(0 if sim.sanitizer is None
                              else sim.sanitizer.stats.total_checks),
            checkpoint_restored=restored if i == 0 else True,
            checkpoint_captured=captured if i == 0 else False,
            stage_times=dict(sim.stage_times)))
    return outcomes


def _sample_boundary(sims: Sequence[Simulator],
                     class_runs: Sequence[BatchRun]) -> None:
    """Per-boundary sampling for one execution class, batched across
    the run axis.

    Mirrors ``Simulator._on_sample`` per run — power accounting, then
    a thermal step, then the run's own DTM — but crosses the class
    with one :meth:`~repro.power.accounting.PowerAccountant.
    sample_powers_batch` / :meth:`~repro.thermal.rc_model.ThermalModel.
    step_vector_batch` call pair.  Every run keeps its own accountant,
    thermal model, and DTM, so per-run state (and therefore results)
    is untouched by the batching.
    """
    start = perf_counter()
    members = [sims[run.index] for run in class_runs]
    first = members[0]
    snapshots = [run.proc.activity_snapshot() for run in class_runs]
    powers = first.accountant.sample_powers_batch(
        [member.accountant for member in members[1:]],
        snapshots, first._interval_s)
    first.thermal.step_vector_batch(
        [member.thermal for member in members[1:]],
        powers, first._interval_s)
    for member, run in zip(members, class_runs):
        member.dtm.on_sample(run.proc)
    share_s = (perf_counter() - start) / len(members)
    for member in members:
        member._sample_s += share_s
