"""Batched grid execution: one kernel invocation per warm-state group.

A figure grid is many technique variants of the same benchmark.  After
PR 3's warm-state checkpoints those variants already share one warm-up;
this module makes them share *measurement* too.  Pending runs are
grouped by a batch key — the warm-checkpoint key (benchmark, seed,
warm-relevant processor/energy/technique fields) plus everything that
must agree for lock-step execution (cycle budget, thermal
configuration) — and each group executes as a single
:func:`repro.pipeline.kernel.run_batch` invocation: every run's SoA
counters live in one :class:`~repro.pipeline.soa.RunAxisStore` matrix,
runs that execute identically share one macro-stepped execution, and
power/thermal sampling crosses the run axis in one batched call per
boundary.

The batch path *declines* work it cannot prove equivalent:

* sanitized runs (the sanitizer wraps per-cycle hooks whose bookkeeping
  is inherently per-run-in-flight),
* traced runs (``TraceCollector`` events must interleave exactly as a
  solo run would emit them),
* groups of one (nothing to share), and
* runs whose trace cannot be replayed from a repositionable cursor.

Declined runs flow through the existing per-run kernel unchanged, and
``REPRO_BATCH=0`` declines everything — the three execution paths
(batched, per-run kernel, ``REPRO_KERNEL=0`` reference loop) produce
``dataclasses.asdict``-identical per-run results, which
``tests/pipeline/test_batch.py`` asserts across the figure matrix.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from functools import partial
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.sanitize import sanitize_enabled
from ..core.policies import IssueQueuePolicy
from ..obs.collector import trace_enabled
from ..pipeline.kernel import BatchRun, BatchStats, run_batch
from ..pipeline.soa import RunAxisStore
from .checkpoint import _stable, checkpoint_key
from .parallel import WorkerOutcome, _prepared_simulator
from .runner import SimulationConfig, Simulator, _gc_paused


def batch_shm_enabled() -> bool:
    """Whether batched groups may shard execution classes across the
    process pool through a shared-memory counter store
    (``REPRO_BATCH_SHM=0`` keeps every class in-process)."""
    return os.environ.get("REPRO_BATCH_SHM", "1") != "0"


class BatchDeclined(Exception):
    """The group cannot run batched; fall back to per-run execution."""


def _reads_pipeline(config: SimulationConfig) -> bool:
    """Whether this run's DTM inspects live pipeline state at sampling
    boundaries (the activity-toggling policy reads queue occupancy and
    counters) — such runs execute for real inside a batch."""
    return config.techniques.issue_queue is IssueQueuePolicy.ACTIVITY_TOGGLING


def batch_key(config: SimulationConfig) -> str:
    """Grouping key: runs with equal keys can share one batched kernel
    invocation.

    The warm-checkpoint key guarantees identical post-warm-up state
    (same benchmark, seed, processor, energy, warm-relevant technique
    fields); the cycle budget and the full thermal configuration are
    appended because lock-step execution needs one boundary schedule
    and comparable thermal trajectories.  Raises ``TypeError`` for
    configs :func:`checkpoint_key` cannot key.
    """
    payload = {
        "warm": checkpoint_key(config),
        "max_cycles": config.max_cycles,
        "thermal": _stable(config.thermal),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _eligible(config: SimulationConfig) -> bool:
    return not (config.sanitize or sanitize_enabled()
                or config.trace_events or trace_enabled())


def plan_groups(configs: Sequence[SimulationConfig],
                pending: Sequence[int]) -> List[List[int]]:
    """Partition pending run indices into batchable groups (size >= 2).

    Indices not covered by a returned group — ineligible runs and
    groups of one — stay with the caller's per-run path.  Submission
    order is preserved within each group.
    """
    buckets: Dict[str, List[int]] = {}
    for i in pending:
        config = configs[i]
        if not _eligible(config):
            continue
        try:
            key = batch_key(config)
        except TypeError:
            continue
        buckets.setdefault(key, []).append(i)
    return [group for group in buckets.values() if len(group) >= 2]


def _detach_run_axis(sim: Simulator) -> None:
    """Rebind one simulator's counters from a (possibly shared) store
    into a fresh private single-run store, carrying values over, so
    the shared segment holds no exported buffer views."""
    proc = sim.processor
    private = RunAxisStore(1, len(proc.int_alus), len(proc.fp_adders),
                           proc.regfile.n_copies)
    proc.adopt_run_axis(private, 0)


def _execute_batched_warm(config: SimulationConfig, blob: bytes,
                          spec, row: int) -> WorkerOutcome:
    """Pool-worker entry: restore a warm group member and run it to
    completion, counters bound to its row of the group's shared store
    (``spec=None`` keeps a private store)."""
    sim = Simulator.from_checkpoint(config, blob)
    store = None if spec is None else RunAxisStore.attach(spec)
    if store is not None:
        sim.processor.adopt_run_axis(store, row)
    try:
        result = sim.run()
    finally:
        if store is not None:
            _detach_run_axis(sim)
            store.close()
    return WorkerOutcome(result, sanitized=False, sanitizer_checks=0,
                         checkpoint_restored=True,
                         stage_times=dict(sim.stage_times))


def _execute_batched_live(config: SimulationConfig, blob: bytes,
                          remaining: int, spec, row: int
                          ) -> WorkerOutcome:
    """Pool-worker entry: resume a mid-measurement run handed off at a
    sampling boundary and finish its remaining cycles."""
    sim = Simulator.resume_live(config, blob)
    store = None if spec is None else RunAxisStore.attach(spec)
    if store is not None:
        sim.processor.adopt_run_axis(store, row)
    try:
        result = sim.run_remaining(remaining)
    finally:
        if store is not None:
            _detach_run_axis(sim)
            store.close()
    return WorkerOutcome(result, sanitized=False, sanitizer_checks=0,
                         checkpoint_restored=True,
                         stage_times=dict(sim.stage_times))


class BatchDispatcher:
    """Lazily-started process pool that batched groups shard execution
    classes onto.

    The pool starts on the first submission, so grids whose classes
    all share or merge never pay worker start-up.  One dispatcher is
    shared across every group of a grid (the engine owns it), which
    amortizes worker start-up the way the engine's own pool does.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("dispatcher needs at least one worker")
        self.jobs = jobs
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    @property
    def started(self) -> bool:
        return self._executor is not None

    def submit_warm(self, config: SimulationConfig, blob: bytes,
                    spec, row: int) -> "Future[WorkerOutcome]":
        return self._pool().submit(
            _execute_batched_warm, config, blob, spec, row)

    def submit_live(self, config: SimulationConfig, blob: bytes,
                    remaining: int, spec, row: int
                    ) -> "Future[WorkerOutcome]":
        return self._pool().submit(
            _execute_batched_live, config, blob, remaining, spec, row)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def run_group(configs: Sequence[SimulationConfig],
              checkpoint_root: Optional[str] = None,
              stats: Optional[BatchStats] = None,
              dispatcher: Optional[BatchDispatcher] = None
              ) -> List[WorkerOutcome]:
    """Execute one batch-compatible group, batched.

    The first run warms up (or restores the cell's on-disk warm
    checkpoint); every other run restores the same warm state from an
    in-memory blob, which is the bit-identity-preserving follower
    construction the checkpoint subsystem already guarantees.  Raises
    :class:`BatchDeclined` when the group turns out not to be
    batchable (non-replayable trace).

    With a ``dispatcher``, execution classes that can never share are
    sharded across the pool as parallel waves: follower runs whose DTM
    reads pipeline state start as pool work immediately (they execute
    for real from cycle zero), and forked runs that stay diverged past
    the kernel's merge window are handed off mid-measurement from
    their live state.  When :func:`batch_shm_enabled`, the group's
    counter matrix lives in shared memory and workers rebind their row
    views instead of receiving pickled counters.  A broken pool
    degrades to finishing the affected runs in-process.
    """
    if len(configs) < 2:
        raise BatchDeclined("nothing to batch")
    leader, restored, captured = _prepared_simulator(
        configs[0], checkpoint_root)
    if not leader.supports_checkpoint:
        raise BatchDeclined("trace is not replayable")
    leader.prepare()
    blob = leader.capture_warm_state()

    proc0 = leader.processor
    shared = dispatcher is not None and batch_shm_enabled()
    store = RunAxisStore(
        len(configs), len(proc0.int_alus), len(proc0.fp_adders),
        proc0.regfile.n_copies, shared=shared)
    spec = store.share_spec() if shared else None

    # Upfront wave sharding: follower runs that read pipeline state
    # are singleton execution classes from wave 0 (they can never
    # share or merge into another class), so ship them to the pool
    # whole instead of interleaving them through the wave loop.  The
    # leader always stays local — it owns the warm-up state.
    sims: Dict[int, Simulator] = {0: leader}
    futures: Dict[int, "Future[WorkerOutcome]"] = {}
    live_jobs: Dict[int, Tuple[bytes, int]] = {}
    try:
        for i, config in enumerate(configs[1:], start=1):
            if dispatcher is not None and _reads_pipeline(config):
                futures[i] = dispatcher.submit_warm(config, blob, spec, i)
                if stats is not None:
                    stats.offloaded_runs += 1
            else:
                sims[i] = Simulator.from_checkpoint(config, blob)

        runs: List[BatchRun] = []
        for i, sim in sims.items():
            sim.processor.adopt_run_axis(store, i)
            runs.append(BatchRun(sim.processor, i,
                                 reads_pipeline=_reads_pipeline(sim.config)))
            sim._measure_started = True
            sim._sample_s = 0.0

        def offload(run: BatchRun, remaining: int) -> bool:
            """Kernel hook: hand a stubbornly-diverged singleton to the
            pool from its live state (always at a sampling boundary)."""
            if dispatcher is None:
                return False
            sim = sims[run.index]
            live_blob = sim.capture_live_state()
            futures[run.index] = dispatcher.submit_live(
                sim.config, live_blob, remaining, spec, run.index)
            live_jobs[run.index] = (live_blob, remaining)
            return True

        start = perf_counter()
        with _gc_paused():
            run_batch(runs, store, configs[0].max_cycles,
                      configs[0].thermal.sensor_interval_cycles,
                      partial(_sample_boundary, sims),
                      stats=stats, offload=offload)
        wall_s = perf_counter() - start

        # Per-run stage attribution: the local measure wall clock is
        # shared by the locally-finished runs, so each is charged an
        # even share — the sum across them equals the real elapsed
        # time (the per-run split is bookkeeping, never part of the
        # result payload).  Pool-finished runs report their worker's
        # own stage times.
        outcomes: List[Optional[WorkerOutcome]] = [None] * len(configs)
        local = [i for i in sims if i not in futures]
        sample_total_s = sum(sims[i]._sample_s for i in local)
        measure_share_s = (wall_s - sample_total_s) / max(1, len(local))
        for i in local:
            sim = sims[i]
            sim.stage_times["sample_s"] = sim._sample_s
            sim.stage_times["measure_s"] = measure_share_s
            outcomes[i] = WorkerOutcome(
                sim._collect(),
                sanitized=sim.sanitizer is not None,
                sanitizer_checks=(0 if sim.sanitizer is None
                                  else sim.sanitizer.stats.total_checks),
                checkpoint_restored=restored if i == 0 else True,
                checkpoint_captured=captured if i == 0 else False,
                stage_times=dict(sim.stage_times))

        for i, future in futures.items():
            try:
                outcomes[i] = future.result()
            except BrokenExecutor:
                outcomes[i] = _finish_inline(configs[i], blob,
                                             live_jobs.get(i))
        return [outcome for outcome in outcomes if outcome is not None]
    finally:
        if store.shared:
            for sim in sims.values():
                _detach_run_axis(sim)
        store.close()


def _finish_inline(config: SimulationConfig, warm_blob: bytes,
                   live_job: Optional[Tuple[bytes, int]]
                   ) -> WorkerOutcome:
    """Degraded path when the dispatcher's pool broke: finish a
    dispatched run in-process from whichever state it was shipped
    with (warm checkpoint, or live mid-measurement handoff)."""
    if live_job is not None:
        live_blob, remaining = live_job
        sim = Simulator.resume_live(config, live_blob)
        result = sim.run_remaining(remaining)
    else:
        sim = Simulator.from_checkpoint(config, warm_blob)
        result = sim.run()
    return WorkerOutcome(result, sanitized=False, sanitizer_checks=0,
                         checkpoint_restored=True,
                         stage_times=dict(sim.stage_times))


def _sample_boundary(sims: Sequence[Simulator],
                     class_runs: Sequence[BatchRun]) -> None:
    """Per-boundary sampling for one execution class, batched across
    the run axis.

    Mirrors ``Simulator._on_sample`` per run — power accounting, then
    a thermal step, then the run's own DTM — but crosses the class
    with one :meth:`~repro.power.accounting.PowerAccountant.
    sample_powers_batch` / :meth:`~repro.thermal.rc_model.ThermalModel.
    step_vector_batch` call pair.  Every run keeps its own accountant,
    thermal model, and DTM, so per-run state (and therefore results)
    is untouched by the batching.
    """
    start = perf_counter()
    members = [sims[run.index] for run in class_runs]
    first = members[0]
    snapshots = [run.proc.activity_snapshot() for run in class_runs]
    powers = first.accountant.sample_powers_batch(
        [member.accountant for member in members[1:]],
        snapshots, first._interval_s)
    first.thermal.step_vector_batch(
        [member.thermal for member in members[1:]],
        powers, first._interval_s)
    for member, run in zip(members, class_runs):
        member.dtm.on_sample(run.proc)
    share_s = (perf_counter() - start) / len(members)
    for member in members:
        member._sample_s += share_s
