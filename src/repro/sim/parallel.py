"""Parallel experiment execution engine with on-disk result caching.

Paper-figure grids are dozens of independent ``SimulationConfig`` runs
(one benchmark x technique x floorplan each).  This module fans them
over a :class:`~concurrent.futures.ProcessPoolExecutor` and memoizes
completed runs in a content-addressed cache, so re-running a bench
grid after an unrelated edit costs near nothing:

* **worker count** comes from ``REPRO_JOBS`` (default
  ``os.cpu_count()``); ``REPRO_JOBS=1`` is a deterministic inline
  fallback that never forks,
* **submission order is preserved** — results come back in the order
  configs were given, regardless of completion order,
* a **crashed worker pool is retried once** with the unfinished runs;
  if it breaks again those runs degrade to inline execution in the
  parent (an application exception, by contrast, propagates
  immediately),
* completed runs are **cached on disk** (``.repro-cache/`` or
  ``REPRO_CACHE_DIR``) keyed by a stable hash of the frozen config
  plus a fingerprint of the ``repro`` source tree, so any code or
  config change invalidates exactly the affected entries.  Disable
  with ``REPRO_CACHE=0``; manage with ``repro cache info|clear``.

Beyond whole-result memoization, the engine eliminates *within-grid*
redundancy with warm-state checkpoints (:mod:`repro.sim.checkpoint`):
technique variants that share a (benchmark, seed, processor, energy,
warmup) cell fork from one post-warm-up snapshot instead of each
re-running warm-up.  When fanning out to a pool, pending runs are
split into a *leader* wave (one run per checkpoint key, which captures
the checkpoint) and a *follower* wave (everything else, which restores
it), so followers never race their leader.  Disable with
``REPRO_CHECKPOINTS=0``.

Sanitized runs compose: with ``REPRO_SANITIZE=1`` each worker process
installs the runtime sanitizer inside its own simulator and reports
the number of checks performed back to the parent's
:class:`EngineStats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from time import perf_counter
from typing import (Callable, Dict, List, Optional, Sequence, Tuple, Union)

from ..analysis.sanitize import sanitize_enabled
from ..obs.metrics import MetricsRegistry
from ..pipeline import accel
from ..pipeline.kernel import batch_enabled
from .checkpoint import (CacheInfo, CheckpointError, CheckpointStore,
                         _stable, checkpoint_key, checkpoints_enabled,
                         code_fingerprint)
from .results import SimulationResult
from .runner import SimulationConfig, Simulator


# ---------------------------------------------------------------------------
# job-count / cache toggles (environment driven)
# ---------------------------------------------------------------------------

def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}") from exc
    return os.cpu_count() or 1


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` permits on-disk result caching."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in (
        "0", "false", "no", "off")


# ---------------------------------------------------------------------------
# content-addressed run keys
# ---------------------------------------------------------------------------
# ``code_fingerprint``, ``_stable``, and ``CacheInfo`` live in
# .checkpoint (shared by both stores) and are re-exported here for
# callers of the original API.


def config_key(config: SimulationConfig,
               fingerprint: Optional[str] = None) -> str:
    """Content hash identifying one run: config + code version.

    The effective sanitize state is part of the key so a sanitized run
    is never answered from an unsanitized run's cache entry.
    """
    payload = {
        "config": _stable(config),
        "code": code_fingerprint() if fingerprint is None else fingerprint,
        "sanitize": bool(config.sanitize or sanitize_enabled()),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Pickle store of finished :class:`SimulationResult` objects.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``; writes go through
    a temp file + :func:`os.replace` so concurrent engines never see a
    torn entry.  All operations are best-effort: an unreadable entry
    is a miss, a failed write is skipped.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        try:
            with open(self._path(key), "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError):
            return None
        return result if isinstance(result, SimulationResult) else None

    def put(self, key: str, result: SimulationResult) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for bucket in self.root.glob("??"):
            try:
                bucket.rmdir()
            except OSError:
                pass
        return removed

    def info(self) -> CacheInfo:
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.glob("??/*.pkl"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return CacheInfo(root=str(self.root), entries=entries,
                         size_bytes=size)


# ---------------------------------------------------------------------------
# worker entry point
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerOutcome:
    """What one worker sends back besides the result itself."""

    result: SimulationResult
    sanitized: bool
    sanitizer_checks: int
    #: Whether this run restored from / captured a warm checkpoint.
    checkpoint_restored: bool = False
    checkpoint_captured: bool = False
    #: Wall-clock seconds per stage (see ``Simulator.stage_times``).
    stage_times: Optional[Dict[str, float]] = None


def _prepared_simulator(config: SimulationConfig,
                        checkpoint_root: Optional[str]
                        ) -> Tuple[Simulator, bool, bool]:
    """Build a simulator, restoring or capturing a warm checkpoint.

    Returns ``(simulator, restored, captured)``.  Any checkpoint
    problem — unkeyable config, corrupt blob, non-replayable trace —
    silently falls back to a fresh warm-up: checkpointing is an
    optimization, never a correctness dependency.
    """
    if checkpoint_root is None:
        return Simulator(config), False, False
    store = CheckpointStore(checkpoint_root)
    try:
        key = checkpoint_key(config)
    except TypeError:
        return Simulator(config), False, False
    blob = store.get(key)
    if blob is not None:
        try:
            return Simulator.from_checkpoint(config, blob), True, False
        except CheckpointError:
            pass  # unreadable or stale entry: fresh warm-up below
    simulator = Simulator(config)
    captured = False
    if simulator.supports_checkpoint:
        simulator.prepare()
        store.put(key, simulator.capture_warm_state())
        captured = True
    return simulator, False, captured


def _execute_config(config: SimulationConfig,
                    checkpoint_root: Optional[str] = None) -> WorkerOutcome:
    """Process-pool entry point: run one simulation to completion.

    Built around :class:`Simulator` (not ``run_simulation``) so the
    sanitizer's per-run activity — installed inside the worker when
    ``REPRO_SANITIZE=1`` — can be reported to the parent.  With a
    ``checkpoint_root`` the run restores the cell's warm checkpoint if
    present, or captures it after a fresh warm-up.
    """
    simulator, restored, captured = _prepared_simulator(
        config, checkpoint_root)
    result = simulator.run()
    sanitizer = simulator.sanitizer
    return WorkerOutcome(
        result,
        sanitized=sanitizer is not None,
        sanitizer_checks=(0 if sanitizer is None
                          else sanitizer.stats.total_checks),
        checkpoint_restored=restored,
        checkpoint_captured=captured,
        stage_times=dict(simulator.stage_times))


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

@dataclass
class EngineStats:
    """Cumulative accounting across :meth:`ExperimentEngine.run_many`."""

    total: int = 0
    cache_hits: int = 0
    parallel_runs: int = 0
    inline_runs: int = 0
    retried: int = 0
    degraded: int = 0
    sanitized_runs: int = 0
    sanitizer_checks: int = 0
    #: Batched-grid execution: runs absorbed into lock-stepped kernel
    #: invocations, and how many invocations there were.
    batched_runs: int = 0
    batch_groups: int = 0
    #: Divergence tolerance inside batched groups: gating forks, runs
    #: folded back in by re-convergence merging, runs shipped to the
    #: dispatcher pool (upfront pipeline-reading waves plus live
    #: mid-measurement handoffs), and the per-boundary execution-class
    #: occupancy histogram (classes alive at a boundary -> boundaries).
    fork_count: int = 0
    merge_count: int = 0
    offloaded_runs: int = 0
    batch_class_occupancy: Dict[int, int] = field(default_factory=dict)
    #: Pool waves skipped because pool dispatch was measured slower
    #: than the engine's own batched-serial throughput.
    pool_fallbacks: int = 0
    #: Warm-checkpoint traffic: runs that restored an existing
    #: checkpoint vs. runs that captured a fresh one.
    checkpoint_restores: int = 0
    checkpoint_captures: int = 0
    #: Accelerator provenance: which execution backend ``REPRO_ACCEL``
    #: resolved to for this engine's runs (``kernel`` = the Python
    #: macro-step kernel) and the one-time JIT compile seconds — paid
    #: outside any run timing — when the numba backend was built.
    accel_backend: str = "kernel"
    accel_compile_s: float = 0.0
    #: Aggregate per-stage wall-clock seconds across executed runs
    #: (CPU time across workers, not elapsed time, when parallel).
    warmup_s: float = 0.0
    restore_s: float = 0.0
    measure_s: float = 0.0
    sample_s: float = 0.0
    #: Fleet-level aggregation of every returned result's serialized
    #: metrics (fresh, parallel, *and* cache-hit runs), merged with
    #: per-kind semantics — see :class:`repro.obs.metrics.
    #: MetricsRegistry`.  Independent of worker count or cache state.
    fleet_metrics: MetricsRegistry = field(
        default_factory=MetricsRegistry)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def stage_seconds(self) -> Dict[str, float]:
        """The per-stage breakdown as a plain dict (report-friendly)."""
        return {"warmup_s": self.warmup_s, "restore_s": self.restore_s,
                "measure_s": self.measure_s, "sample_s": self.sample_s}


Runner = Callable[[SimulationConfig], WorkerOutcome]


class ExperimentEngine:
    """Runs batches of simulation configs, in parallel when it pays.

    ``jobs`` defaults to :func:`default_jobs`; ``runner`` (a picklable
    callable returning :class:`WorkerOutcome`) exists for tests that
    need crashing or instrumented workers.  Pass ``use_cache=False``
    for always-fresh runs regardless of the environment.

    Warm-state checkpointing activates when the default runner is in
    use and ``REPRO_CHECKPOINTS`` permits it: pass a
    :class:`~repro.sim.checkpoint.CheckpointStore` (or a root path) as
    ``checkpoints`` to place the store explicitly, otherwise it lives
    beside the result cache (``<cache-root>/checkpoints``) and is
    disabled when the result cache is.  ``use_checkpoints=False``
    forces every run through a fresh warm-up.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 use_cache: bool = True,
                 runner: Optional[Runner] = None,
                 checkpoints: Union[CheckpointStore, str, Path,
                                    None] = None,
                 use_checkpoints: bool = True) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache: Optional[ResultCache] = None
        if use_cache and cache_enabled():
            self.cache = cache if cache is not None else ResultCache()
        self.checkpoints: Optional[CheckpointStore] = None
        if runner is None and use_checkpoints and checkpoints_enabled():
            if isinstance(checkpoints, CheckpointStore):
                self.checkpoints = checkpoints
            elif checkpoints is not None:
                self.checkpoints = CheckpointStore(checkpoints)
            elif self.cache is not None:
                self.checkpoints = CheckpointStore(
                    self.cache.root / "checkpoints")
        if runner is not None:
            self.runner: Runner = runner
        elif self.checkpoints is not None:
            self.runner = partial(
                _execute_config,
                checkpoint_root=str(self.checkpoints.root))
        else:
            self.runner = _execute_config
        #: Batched grid execution needs the default execution path (a
        #: custom runner's behavior cannot be replicated in a batch).
        self._default_runner = runner is None
        self.stats = EngineStats()
        #: Adaptive serial fallback: cycles/second the batch path
        #: achieved (measured, not modelled), and whether pool dispatch
        #: has been observed running slower than that — once it has,
        #: later waves of this engine stay inline (sticky).
        self._serial_cps = 0.0
        self._pool_slow = False

    # ------------------------------------------------------------------
    def run_one(self, config: SimulationConfig) -> SimulationResult:
        return self.run_many([config])[0]

    def run_many(self, configs: Sequence[SimulationConfig]
                 ) -> List[SimulationResult]:
        """Execute every config; results are in submission order."""
        results: List[Optional[SimulationResult]] = [None] * len(configs)
        keys: List[Optional[str]] = [None] * len(configs)
        pending: List[int] = []
        self.stats.total += len(configs)
        for i, config in enumerate(configs):
            if self.cache is not None:
                key = config_key(config)
                keys[i] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append(i)

        # Batched grid execution: compatible groups (same warm state,
        # cycle budget, and thermal configuration) collapse into one
        # lock-stepped kernel invocation each, executed inline — the
        # whole point is to amortize interpreter overhead in-process,
        # so a grid fully covered by batches never pays for a pool.
        todo = pending
        if todo and self._default_runner and batch_enabled():
            todo = self._run_batches(configs, todo, results)

        if self.jobs <= 1 or len(todo) <= 1:
            # Inline runs execute in submission order, so a leader has
            # always captured its cell's checkpoint before a follower
            # asks the store for it — no wave split needed.
            for i in todo:
                results[i] = self._run_inline(configs[i])
        else:
            for wave in self._checkpoint_waves(configs, todo):
                if self._pool_slow:
                    # Pool dispatch already lost to batched-serial
                    # execution on this engine; don't lose again.
                    self.stats.pool_fallbacks += 1
                    for i in wave:
                        results[i] = self._run_inline(configs[i])
                    continue
                wave_cycles = sum(configs[i].max_cycles for i in wave)
                start = perf_counter()
                self._run_pool(configs, wave, results)
                wall_s = perf_counter() - start
                if (self._serial_cps > 0.0 and wall_s > 0.0
                        and wave_cycles / wall_s < self._serial_cps):
                    self._pool_slow = True

        if self.cache is not None:
            for i in pending:
                key, result = keys[i], results[i]
                if key is not None and result is not None:
                    self.cache.put(key, result)

        out: List[SimulationResult] = []
        for result in results:
            if result is None:  # pragma: no cover - engine invariant
                raise RuntimeError("engine produced no result for a run")
            self.stats.fleet_metrics.merge_dict(result.metrics)
            out.append(result)
        # Provenance for bench/report: resolved once per run_many so
        # the stats reflect the backend that actually served this
        # submission (tests flip REPRO_ACCEL between engine calls).
        self.stats.accel_backend = accel.active_backend()
        self.stats.accel_compile_s = accel.accel_compile_s()
        return out

    # ------------------------------------------------------------------
    def _run_batches(self, configs: Sequence[SimulationConfig],
                     pending: List[int],
                     results: List[Optional[SimulationResult]]
                     ) -> List[int]:
        """Execute batch-compatible groups of ``pending`` in-process.

        Returns the indices still unexecuted (ineligible runs, groups
        of one, and groups the batch path declined at runtime) for the
        ordinary inline/pool machinery.
        """
        from ..pipeline.kernel import BatchStats
        from .batch import (BatchDeclined, BatchDispatcher,
                            batch_shm_enabled, plan_groups, run_group)
        checkpoint_root = (str(self.checkpoints.root)
                           if self.checkpoints is not None else None)
        groups = plan_groups(configs, pending)
        # Shared-memory parallel waves: one dispatcher serves every
        # group of this submission, so worker start-up amortizes; it
        # never starts at all when no group sheds an execution class.
        dispatcher = None
        if groups and self.jobs > 1 and batch_shm_enabled():
            dispatcher = BatchDispatcher(self.jobs)
        batch_stats = BatchStats()
        batched_cycles = 0
        start = perf_counter()
        try:
            for group in groups:
                try:
                    outcomes = run_group([configs[i] for i in group],
                                         checkpoint_root,
                                         stats=batch_stats,
                                         dispatcher=dispatcher)
                except BatchDeclined:
                    continue
                for i, outcome in zip(group, outcomes):
                    results[i] = outcome.result
                    self._note(outcome)
                batched_cycles += sum(configs[i].max_cycles
                                      for i in group)
                self.stats.batched_runs += len(group)
                self.stats.batch_groups += 1
        finally:
            if dispatcher is not None:
                dispatcher.shutdown()
        wall_s = perf_counter() - start
        if batched_cycles and wall_s > 0.0:
            self._serial_cps = batched_cycles / wall_s
        stats = self.stats
        stats.fork_count += batch_stats.fork_count
        stats.merge_count += batch_stats.merge_count
        stats.offloaded_runs += batch_stats.offloaded_runs
        for occupancy, boundaries in batch_stats.class_occupancy.items():
            stats.batch_class_occupancy[occupancy] = (
                stats.batch_class_occupancy.get(occupancy, 0)
                + boundaries)
        return [i for i in pending if results[i] is None]

    # ------------------------------------------------------------------
    def _checkpoint_waves(self, configs: Sequence[SimulationConfig],
                          pending: Sequence[int]) -> List[List[int]]:
        """Split pool work into leader and follower waves.

        The first pending run of each checkpoint key whose checkpoint
        is not already on disk is a *leader*; it runs (and captures) in
        the first wave so every *follower* in the second wave restores
        instead of redundantly warming up in parallel with its leader.
        """
        if self.checkpoints is None:
            return [list(pending)]
        leaders: List[int] = []
        followers: List[int] = []
        claimed: set = set()
        for i in pending:
            try:
                key = checkpoint_key(configs[i])
            except TypeError:
                leaders.append(i)
                continue
            if key in claimed or self.checkpoints.has(key):
                followers.append(i)
            else:
                claimed.add(key)
                leaders.append(i)
        return [wave for wave in (leaders, followers) if wave]

    def _note(self, outcome: WorkerOutcome) -> None:
        if outcome.sanitized:
            self.stats.sanitized_runs += 1
            self.stats.sanitizer_checks += outcome.sanitizer_checks
        if outcome.checkpoint_restored:
            self.stats.checkpoint_restores += 1
        if outcome.checkpoint_captured:
            self.stats.checkpoint_captures += 1
        if outcome.stage_times:
            times = outcome.stage_times
            self.stats.warmup_s += times.get("warmup_s", 0.0)
            self.stats.restore_s += times.get("restore_s", 0.0)
            self.stats.measure_s += times.get("measure_s", 0.0)
            self.stats.sample_s += times.get("sample_s", 0.0)

    def _run_inline(self, config: SimulationConfig) -> SimulationResult:
        outcome = self.runner(config)
        self._note(outcome)
        self.stats.inline_runs += 1
        return outcome.result

    def _run_pool(self, configs: Sequence[SimulationConfig],
                  pending: Sequence[int],
                  results: List[Optional[SimulationResult]]) -> None:
        """Fan ``pending`` over worker pools.

        A broken pool (a worker died without reporting — segfault,
        ``os._exit``, OOM kill) leaves its unfinished runs to one
        fresh-pool retry, then to inline execution.  Application
        exceptions raised by a run propagate immediately.
        """
        remaining = list(pending)
        for attempt in range(2):
            if not remaining:
                return
            if attempt == 1:
                self.stats.retried += len(remaining)
            broken = False
            error: Optional[BaseException] = None
            try:
                with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(remaining))) as pool:
                    futures = {pool.submit(self.runner, configs[i]): i
                               for i in remaining}
                    for future in wait(futures).done:
                        exc = future.exception()
                        if isinstance(exc, BrokenExecutor):
                            broken = True
                        elif exc is not None:
                            error = exc
                        else:
                            outcome = future.result()
                            results[futures[future]] = outcome.result
                            self._note(outcome)
                            self.stats.parallel_runs += 1
                            remaining.remove(futures[future])
            except BrokenExecutor:  # pragma: no cover - racy submit path
                broken = True
            if error is not None:
                raise error
            if not broken:
                return
        self.stats.degraded += len(remaining)
        for i in remaining:
            results[i] = self._run_inline(configs[i])


def run_experiments(configs: Sequence[SimulationConfig],
                    engine: Optional[ExperimentEngine] = None
                    ) -> List[SimulationResult]:
    """Run a grid through ``engine`` (or a fresh default engine)."""
    if engine is None:
        engine = ExperimentEngine()
    return engine.run_many(configs)
