"""Parallel experiment execution engine with on-disk result caching.

Paper-figure grids are dozens of independent ``SimulationConfig`` runs
(one benchmark x technique x floorplan each).  This module fans them
over a :class:`~concurrent.futures.ProcessPoolExecutor` and memoizes
completed runs in a content-addressed cache, so re-running a bench
grid after an unrelated edit costs near nothing:

* **worker count** comes from ``REPRO_JOBS`` (default
  ``os.cpu_count()``); ``REPRO_JOBS=1`` is a deterministic inline
  fallback that never forks,
* **submission order is preserved** — results come back in the order
  configs were given, regardless of completion order,
* a **crashed worker pool is retried once** with the unfinished runs;
  if it breaks again those runs degrade to inline execution in the
  parent (an application exception, by contrast, propagates
  immediately),
* completed runs are **cached on disk** (``.repro-cache/`` or
  ``REPRO_CACHE_DIR``) keyed by a stable hash of the frozen config
  plus a fingerprint of the ``repro`` source tree, so any code or
  config change invalidates exactly the affected entries.  Disable
  with ``REPRO_CACHE=0``; manage with ``repro cache info|clear``.

Sanitized runs compose: with ``REPRO_SANITIZE=1`` each worker process
installs the runtime sanitizer inside its own simulator and reports
the number of checks performed back to the parent's
:class:`EngineStats`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, List, Mapping, Optional, Sequence, Union

from ..analysis.sanitize import sanitize_enabled
from .results import SimulationResult
from .runner import SimulationConfig, Simulator


# ---------------------------------------------------------------------------
# job-count / cache toggles (environment driven)
# ---------------------------------------------------------------------------

def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}") from exc
    return os.cpu_count() or 1


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` permits on-disk result caching."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in (
        "0", "false", "no", "off")


# ---------------------------------------------------------------------------
# content-addressed run keys
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Part of every cache key: editing any module invalidates all cached
    results, which is coarse but can never serve a stale simulation.
    """
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parents[1]
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _stable(obj: Any) -> Any:
    """Recursively convert ``obj`` to a JSON-serializable form whose
    text rendering is stable across processes and sessions."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__,
                {f.name: _stable(getattr(obj, f.name))
                 for f in dataclasses.fields(obj)}]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, Mapping):
        return {str(key): _stable(value)
                for key, value in sorted(obj.items(),
                                         key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_stable(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot build a stable key from {type(obj).__name__}")


def config_key(config: SimulationConfig,
               fingerprint: Optional[str] = None) -> str:
    """Content hash identifying one run: config + code version.

    The effective sanitize state is part of the key so a sanitized run
    is never answered from an unsanitized run's cache entry.
    """
    payload = {
        "config": _stable(config),
        "code": code_fingerprint() if fingerprint is None else fingerprint,
        "sanitize": bool(config.sanitize or sanitize_enabled()),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheInfo:
    """Summary of one cache directory."""

    root: str
    entries: int
    size_bytes: int


class ResultCache:
    """Pickle store of finished :class:`SimulationResult` objects.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``; writes go through
    a temp file + :func:`os.replace` so concurrent engines never see a
    torn entry.  All operations are best-effort: an unreadable entry
    is a miss, a failed write is skipped.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        try:
            with open(self._path(key), "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError):
            return None
        return result if isinstance(result, SimulationResult) else None

    def put(self, key: str, result: SimulationResult) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for bucket in self.root.glob("??"):
            try:
                bucket.rmdir()
            except OSError:
                pass
        return removed

    def info(self) -> CacheInfo:
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.glob("??/*.pkl"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return CacheInfo(root=str(self.root), entries=entries,
                         size_bytes=size)


# ---------------------------------------------------------------------------
# worker entry point
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerOutcome:
    """What one worker sends back besides the result itself."""

    result: SimulationResult
    sanitized: bool
    sanitizer_checks: int


def _execute_config(config: SimulationConfig) -> WorkerOutcome:
    """Process-pool entry point: run one simulation to completion.

    Built around :class:`Simulator` (not ``run_simulation``) so the
    sanitizer's per-run activity — installed inside the worker when
    ``REPRO_SANITIZE=1`` — can be reported to the parent.
    """
    simulator = Simulator(config)
    result = simulator.run()
    sanitizer = simulator.sanitizer
    if sanitizer is None:
        return WorkerOutcome(result, sanitized=False, sanitizer_checks=0)
    return WorkerOutcome(result, sanitized=True,
                         sanitizer_checks=sanitizer.stats.total_checks)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

@dataclass
class EngineStats:
    """Cumulative accounting across :meth:`ExperimentEngine.run_many`."""

    total: int = 0
    cache_hits: int = 0
    parallel_runs: int = 0
    inline_runs: int = 0
    retried: int = 0
    degraded: int = 0
    sanitized_runs: int = 0
    sanitizer_checks: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


Runner = Callable[[SimulationConfig], WorkerOutcome]


class ExperimentEngine:
    """Runs batches of simulation configs, in parallel when it pays.

    ``jobs`` defaults to :func:`default_jobs`; ``runner`` (a picklable
    callable returning :class:`WorkerOutcome`) exists for tests that
    need crashing or instrumented workers.  Pass ``use_cache=False``
    for always-fresh runs regardless of the environment.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 use_cache: bool = True,
                 runner: Optional[Runner] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache: Optional[ResultCache] = None
        if use_cache and cache_enabled():
            self.cache = cache if cache is not None else ResultCache()
        self.runner: Runner = runner if runner is not None else _execute_config
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def run_one(self, config: SimulationConfig) -> SimulationResult:
        return self.run_many([config])[0]

    def run_many(self, configs: Sequence[SimulationConfig]
                 ) -> List[SimulationResult]:
        """Execute every config; results are in submission order."""
        results: List[Optional[SimulationResult]] = [None] * len(configs)
        keys: List[Optional[str]] = [None] * len(configs)
        pending: List[int] = []
        self.stats.total += len(configs)
        for i, config in enumerate(configs):
            if self.cache is not None:
                key = config_key(config)
                keys[i] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append(i)

        if self.jobs <= 1 or len(pending) <= 1:
            for i in pending:
                results[i] = self._run_inline(configs[i])
        else:
            self._run_pool(configs, pending, results)

        if self.cache is not None:
            for i in pending:
                key, result = keys[i], results[i]
                if key is not None and result is not None:
                    self.cache.put(key, result)

        out: List[SimulationResult] = []
        for result in results:
            if result is None:  # pragma: no cover - engine invariant
                raise RuntimeError("engine produced no result for a run")
            out.append(result)
        return out

    # ------------------------------------------------------------------
    def _note(self, outcome: WorkerOutcome) -> None:
        if outcome.sanitized:
            self.stats.sanitized_runs += 1
            self.stats.sanitizer_checks += outcome.sanitizer_checks

    def _run_inline(self, config: SimulationConfig) -> SimulationResult:
        outcome = self.runner(config)
        self._note(outcome)
        self.stats.inline_runs += 1
        return outcome.result

    def _run_pool(self, configs: Sequence[SimulationConfig],
                  pending: Sequence[int],
                  results: List[Optional[SimulationResult]]) -> None:
        """Fan ``pending`` over worker pools.

        A broken pool (a worker died without reporting — segfault,
        ``os._exit``, OOM kill) leaves its unfinished runs to one
        fresh-pool retry, then to inline execution.  Application
        exceptions raised by a run propagate immediately.
        """
        remaining = list(pending)
        for attempt in range(2):
            if not remaining:
                return
            if attempt == 1:
                self.stats.retried += len(remaining)
            broken = False
            error: Optional[BaseException] = None
            try:
                with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(remaining))) as pool:
                    futures = {pool.submit(self.runner, configs[i]): i
                               for i in remaining}
                    for future in wait(futures).done:
                        exc = future.exception()
                        if isinstance(exc, BrokenExecutor):
                            broken = True
                        elif exc is not None:
                            error = exc
                        else:
                            outcome = future.result()
                            results[futures[future]] = outcome.result
                            self._note(outcome)
                            self.stats.parallel_runs += 1
                            remaining.remove(futures[future])
            except BrokenExecutor:  # pragma: no cover - racy submit path
                broken = True
            if error is not None:
                raise error
            if not broken:
                return
        self.stats.degraded += len(remaining)
        for i in remaining:
            results[i] = self._run_inline(configs[i])


def run_experiments(configs: Sequence[SimulationConfig],
                    engine: Optional[ExperimentEngine] = None
                    ) -> List[SimulationResult]:
    """Run a grid through ``engine`` (or a fresh default engine)."""
    if engine is None:
        engine = ExperimentEngine()
    return engine.run_many(configs)
