"""Result records and table formatting for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _plain(value: Any) -> Any:
    """Coerce ``value`` to pure built-in types for JSON export.

    Sensor statistics are computed with numpy, whose scalar types
    (``np.float64``, ``np.int64``) are not JSON-serializable; ``item()``
    unwraps them.  Containers are rebuilt recursively so nested metric
    payloads come out clean too.
    """
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()
    return value


@dataclass
class SimulationResult:
    """Everything one simulation run reports."""

    benchmark: str
    technique_label: str
    cycles: int
    committed: int
    stall_cycles: int
    global_stalls: int
    stall_reasons: Dict[str, int]
    iq_toggles: int
    alu_turnoffs: int
    rf_turnoffs: int
    #: Time-averaged temperature per block (K), from the sensors.
    mean_temps: Dict[str, float]
    #: Maximum observed temperature per block (K).
    max_temps: Dict[str, float]
    #: Serialized :class:`~repro.obs.metrics.MetricsRegistry` payload
    #: (issue distribution, RF reads per copy, compaction moves, stall
    #: breakdown).  A plain dict so results pickle/cache/JSON cleanly;
    #: rebuild with ``MetricsRegistry.from_dict(result.metrics)``.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Downsampled per-block thermal trajectories (K) for report
    #: sparklines, keyed by block name.
    timelines: Dict[str, List[float]] = field(default_factory=dict)
    #: Cycles per timeline point (0 when no timelines were recorded).
    timeline_interval_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def mean_temp(self, block: str) -> float:
        return self.mean_temps[block]

    def max_temp(self, block: str) -> float:
        return self.max_temps[block]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every field (numpy scalars unwrapped).

        Round-trips through :meth:`from_dict`:
        ``SimulationResult.from_dict(r.to_dict()) == r``.
        """
        return {f.name: _plain(getattr(self, f.name))
                for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys are ignored so records written by newer code
        still load; fields added after the record was written fall
        back to their defaults.
        """
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def speedup(result: SimulationResult, baseline: SimulationResult) -> float:
    """Relative IPC improvement of ``result`` over ``baseline``."""
    if baseline.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return result.ipc / baseline.ipc - 1.0


#: (technique result, baseline result) measured on the same workload.
ResultPair = Tuple[SimulationResult, SimulationResult]


def geometric_mean_speedup(pairs: Sequence[ResultPair]) -> float:
    """Geometric-mean speedup over (result, baseline) pairs."""
    if not pairs:
        raise ValueError("no pairs")
    product = 1.0
    for result, baseline in pairs:
        product *= result.ipc / baseline.ipc
    return product ** (1.0 / len(pairs)) - 1.0


def mean_speedup(pairs: Sequence[ResultPair]) -> float:
    """Arithmetic-mean speedup over (result, baseline) pairs (the
    paper reports arithmetic averages)."""
    if not pairs:
        raise ValueError("no pairs")
    return sum(r.ipc / b.ipc - 1.0 for r, b in pairs) / len(pairs)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Plain-text table, right-aligned numerics, for bench output."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
