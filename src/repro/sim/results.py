"""Result records and table formatting for experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass
class SimulationResult:
    """Everything one simulation run reports."""

    benchmark: str
    technique_label: str
    cycles: int
    committed: int
    stall_cycles: int
    global_stalls: int
    stall_reasons: Dict[str, int]
    iq_toggles: int
    alu_turnoffs: int
    rf_turnoffs: int
    #: Time-averaged temperature per block (K), from the sensors.
    mean_temps: Dict[str, float]
    #: Maximum observed temperature per block (K).
    max_temps: Dict[str, float]

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def mean_temp(self, block: str) -> float:
        return self.mean_temps[block]

    def max_temp(self, block: str) -> float:
        return self.max_temps[block]


def speedup(result: SimulationResult, baseline: SimulationResult) -> float:
    """Relative IPC improvement of ``result`` over ``baseline``."""
    if baseline.ipc == 0:
        raise ValueError("baseline IPC is zero")
    return result.ipc / baseline.ipc - 1.0


#: (technique result, baseline result) measured on the same workload.
ResultPair = Tuple[SimulationResult, SimulationResult]


def geometric_mean_speedup(pairs: Sequence[ResultPair]) -> float:
    """Geometric-mean speedup over (result, baseline) pairs."""
    if not pairs:
        raise ValueError("no pairs")
    product = 1.0
    for result, baseline in pairs:
        product *= result.ipc / baseline.ipc
    return product ** (1.0 / len(pairs)) - 1.0


def mean_speedup(pairs: Sequence[ResultPair]) -> float:
    """Arithmetic-mean speedup over (result, baseline) pairs (the
    paper reports arithmetic averages)."""
    if not pairs:
        raise ValueError("no pairs")
    return sum(r.ipc / b.ipc - 1.0 for r, b in pairs) / len(pairs)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Plain-text table, right-aligned numerics, for bench output."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
