"""Warm-state checkpoints shared across technique variants.

Every run in a paper-figure grid pays the same fixed cost before the
measured region starts: generate the µop stream, warm the caches, run
``warmup_cycles`` unmeasured cycles, and solve for the thermal steady
state.  None of that depends on the DTM technique being evaluated —
techniques only act on sensor samples, and sensors are only read during
measurement — so a grid of N technique variants over one benchmark
repeats identical warm-up work N times.

This module factors that redundancy out.  After warm-up, the simulator
state (processor microarchitectural state, trace position, and the
activity snapshots that reproduce the power/thermal initialization) is
pickled into a content-addressed entry keyed by everything the warm-up
*does* depend on:

* benchmark and seed (the trace),
* :class:`~repro.pipeline.config.ProcessorConfig` and
  :class:`~repro.power.energy.EnergyModel`,
* ``warmup_cycles``,
* the *warm-relevant* technique fields — the round-robin ALU policy
  (it rotates select priority during warm-up) and the register-file
  mapping kind (it changes per-copy read attribution) — but **not**
  the rest of :class:`~repro.core.policies.TechniqueConfig`, the
  floorplan variant, thermal constants, ``max_cycles``, or the
  sanitize flag, none of which influence warm state,
* a fingerprint of the ``repro`` source tree.

Technique variants that share a key fork from one stored checkpoint
instead of each re-running warm-up; restored runs are bit-identical to
fresh ones (the equivalence test suite enforces this).  Disable with
``REPRO_CHECKPOINTS=0``; manage with ``repro cache info|clear``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner
    from .runner import SimulationConfig  # imports this module)

#: Format version embedded in every checkpoint payload; bumped whenever
#: the snapshot layout changes so stale entries are rejected, not
#: misinterpreted.
CHECKPOINT_VERSION = 2  # v2: SoA counters snapshot as plain values


class CheckpointError(RuntimeError):
    """A checkpoint cannot be captured or restored.

    Restore paths treat this as "fall back to a fresh warm-up", never
    as a fatal error: a corrupt or stale entry must not break a run.
    """


def checkpoints_enabled() -> bool:
    """Whether ``REPRO_CHECKPOINTS`` permits warm-state checkpointing."""
    return os.environ.get("REPRO_CHECKPOINTS", "").strip().lower() not in (
        "0", "false", "no", "off")


# ---------------------------------------------------------------------------
# stable content hashing (shared with the result cache in .parallel)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Part of every cache and checkpoint key: editing any module
    invalidates all entries, which is coarse but can never serve a
    stale simulation.
    """
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parents[1]
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _stable(obj: Any) -> Any:
    """Recursively convert ``obj`` to a JSON-serializable form whose
    text rendering is stable across processes and sessions."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__,
                {f.name: _stable(getattr(obj, f.name))
                 for f in dataclasses.fields(obj)}]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, Mapping):
        return {str(key): _stable(value)
                for key, value in sorted(obj.items(),
                                         key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_stable(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot build a stable key from {type(obj).__name__}")


def checkpoint_key(config: "SimulationConfig",
                   fingerprint: Optional[str] = None) -> str:
    """Content hash of everything the post-warm-up state depends on.

    Deliberately *excludes* the floorplan variant, thermal constants,
    ``max_cycles``, the technique label, the sanitize and
    ``trace_events`` flags, and every technique field that only acts
    on sensor samples — so all technique variants of one (benchmark,
    seed, processor, energy, warmup) cell share a single checkpoint
    (and traced runs reuse untraced warm state).  The two technique fields that *do*
    shape warm state are included: round-robin ALU selection (rotates
    grant priority from cycle 0) and the register-file mapping kind
    (changes per-copy read attribution in the activity snapshot).
    """
    payload = {
        "kind": "warm-checkpoint",
        "version": CHECKPOINT_VERSION,
        "benchmark": config.benchmark,
        "seed": config.seed,
        "warmup_cycles": config.warmup_cycles,
        "processor": _stable(config.processor),
        "energy": _stable(config.energy),
        "warm_techniques": {
            "round_robin_alus": config.techniques.round_robin_alus,
            "regfile_mapping": _stable(config.techniques.regfile.mapping),
        },
        "code": code_fingerprint() if fingerprint is None else fingerprint,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# on-disk blob store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheInfo:
    """Summary of one cache directory."""

    root: str
    entries: int
    size_bytes: int


def default_checkpoint_root() -> Path:
    """``<result-cache-root>/checkpoints`` so ``repro cache`` commands
    manage results and checkpoints under one directory."""
    base = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
    return Path(base) / "checkpoints"


class CheckpointStore:
    """Content-addressed store of warm-state blobs.

    Deliberately a *bytes* store: :class:`~repro.sim.runner.Simulator`
    owns the pickle format, and every restore deserializes the blob
    afresh so two runs forked from one checkpoint can never share (and
    mutate) the same live objects.  Entries live at
    ``<root>/<key[:2]>/<key>.pkl``; writes go through a temp file +
    :func:`os.replace` so concurrent engines never see a torn entry.
    All operations are best-effort: an unreadable entry is a miss, a
    failed write is skipped.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = default_checkpoint_root() if root is None else Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def has(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every checkpoint; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for bucket in self.root.glob("??"):
            try:
                bucket.rmdir()
            except OSError:
                pass
        return removed

    def info(self) -> CacheInfo:
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.glob("??/*.pkl"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return CacheInfo(root=str(self.root), entries=entries,
                         size_bytes=size)
