"""Simulation harness: full-system runs and pre-canned experiments."""

from .results import (SimulationResult, format_table,
                      geometric_mean_speedup, mean_speedup, speedup)
from .runner import DEFAULT_MAX_CYCLES, SimulationConfig, Simulator, run_simulation

__all__ = ["DEFAULT_MAX_CYCLES", "SimulationConfig", "SimulationResult",
           "Simulator", "format_table", "geometric_mean_speedup",
           "mean_speedup", "run_simulation", "speedup"]
