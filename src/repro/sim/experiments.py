"""Pre-canned experiments: one function per paper table / figure.

Each experiment function runs the relevant benchmark x technique grid
and returns a typed result object with the same rows/series the paper
reports, plus a ``format()`` method producing the text table the bench
harness prints.  See DESIGN.md §4 for the experiment index.

All experiments accept ``benchmarks`` and ``max_cycles`` so the test
suite can run miniature versions of the same code paths the full bench
harness exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mapping import MappingKind
from ..core.policies import (ALUPolicy, IssueQueuePolicy, RegFilePolicy,
                             TechniqueConfig)
from ..thermal.floorplan import (FP_QUEUE_BLOCKS, INT_ALU_BLOCKS,
                                 INT_QUEUE_BLOCKS, INT_REG_BLOCKS,
                                 FloorplanVariant)
from ..workloads.spec2000 import BENCHMARK_NAMES
from .parallel import ExperimentEngine, run_experiments
from .results import SimulationResult, format_table, mean_speedup
from .runner import SimulationConfig

#: Stall fraction above which a run counts as "constrained by" the
#: study's resource (used for the paper's per-category averages).
CONSTRAINED_STALL_FRACTION = 0.02


def _config(benchmark: str, variant: FloorplanVariant,
            techniques: TechniqueConfig, label: str,
            max_cycles: int, seed: int) -> SimulationConfig:
    return SimulationConfig(
        benchmark=benchmark, variant=variant, techniques=techniques,
        max_cycles=max_cycles, seed=seed, technique_label=label)


def _constrained(baseline: SimulationResult) -> bool:
    """Whether the baseline run lost meaningful time to cooling stalls
    (the paper's notion of 'constrained by' the resource)."""
    return (baseline.stall_cycles
            > CONSTRAINED_STALL_FRACTION * baseline.cycles)


# ---------------------------------------------------------------------------
# Figure 6 + Table 4: issue queue, activity toggling
# ---------------------------------------------------------------------------

@dataclass
class IssueQueueExperiment:
    """Results of the activity-toggling study (paper §4.1)."""

    toggling: Dict[str, SimulationResult]
    base: Dict[str, SimulationResult]

    @property
    def benchmarks(self) -> List[str]:
        return list(self.base)

    def speedup(self, benchmark: str) -> float:
        return (self.toggling[benchmark].ipc
                / self.base[benchmark].ipc - 1.0)

    def constrained_benchmarks(self) -> List[str]:
        return [b for b in self.benchmarks if _constrained(self.base[b])]

    def average_speedup(self, only_constrained: bool = False) -> float:
        names = (self.constrained_benchmarks() if only_constrained
                 else self.benchmarks)
        if not names:
            return 0.0
        pairs = [(self.toggling[b], self.base[b]) for b in names]
        return mean_speedup(pairs)

    def figure6_rows(self) -> List[Tuple[str, float, float, float]]:
        """(benchmark, toggling IPC, base IPC, speedup) per bar pair."""
        return [(b, self.toggling[b].ipc, self.base[b].ipc,
                 self.speedup(b)) for b in self.benchmarks]

    def table4_rows(self, benchmarks: Optional[Sequence[str]] = None
                    ) -> List[Tuple[str, str, float, float]]:
        """(benchmark, technique, tail K, head K) like paper Table 4.

        The 'tail' column reports the hotter (more active) physical
        half of the integer queue under the base policy.
        """
        rows = []
        for bench in benchmarks or self.benchmarks:
            for label, result in (("Activity-toggling",
                                   self.toggling[bench]),
                                  ("Base", self.base[bench])):
                q0 = result.mean_temp("IntQ0")
                q1 = result.mean_temp("IntQ1")
                rows.append((bench, label, max(q0, q1), min(q0, q1)))
        return rows

    def format(self) -> str:
        rows = [(b, f"{t:.3f}", f"{base:.3f}", f"{s:+.1%}")
                for b, t, base, s in self.figure6_rows()]
        table = format_table(
            ("benchmark", "toggling IPC", "base IPC", "speedup"), rows,
            title="Figure 6: issue-queue constrained IPC")
        summary = (
            f"\naverage speedup (all): "
            f"{self.average_speedup():+.1%}\n"
            f"average speedup (IQ-constrained): "
            f"{self.average_speedup(only_constrained=True):+.1%}\n"
            f"constrained: {', '.join(self.constrained_benchmarks())}")
        return table + summary


def issue_queue_experiment(
        benchmarks: Sequence[str] = tuple(BENCHMARK_NAMES),
        max_cycles: int = 120_000, seed: int = 1,
        engine: Optional[ExperimentEngine] = None) -> IssueQueueExperiment:
    """Run Figure 6 / Table 4: toggling vs base, IQ-constrained chip."""
    configs = []
    for bench in benchmarks:
        configs.append(_config(
            bench, FloorplanVariant.ISSUE_QUEUE,
            TechniqueConfig(issue_queue=IssueQueuePolicy.ACTIVITY_TOGGLING),
            "activity-toggling", max_cycles, seed))
        configs.append(_config(
            bench, FloorplanVariant.ISSUE_QUEUE,
            TechniqueConfig(issue_queue=IssueQueuePolicy.BASE),
            "base", max_cycles, seed))
    run_results = iter(run_experiments(configs, engine))
    toggling: Dict[str, SimulationResult] = {}
    base: Dict[str, SimulationResult] = {}
    for bench in benchmarks:
        toggling[bench] = next(run_results)
        base[bench] = next(run_results)
    return IssueQueueExperiment(toggling=toggling, base=base)


# ---------------------------------------------------------------------------
# Figure 7 + Table 5: ALUs, fine-grain turnoff vs round robin vs base
# ---------------------------------------------------------------------------

@dataclass
class ALUExperiment:
    """Results of the fine-grain-turnoff study (paper §4.2)."""

    round_robin: Dict[str, SimulationResult]
    fine_grain: Dict[str, SimulationResult]
    base: Dict[str, SimulationResult]

    @property
    def benchmarks(self) -> List[str]:
        return list(self.base)

    def speedup(self, benchmark: str) -> float:
        return (self.fine_grain[benchmark].ipc
                / self.base[benchmark].ipc - 1.0)

    def constrained_benchmarks(self) -> List[str]:
        return [b for b in self.benchmarks if _constrained(self.base[b])]

    def average_speedup(self, only_constrained: bool = False) -> float:
        names = (self.constrained_benchmarks() if only_constrained
                 else self.benchmarks)
        if not names:
            return 0.0
        return mean_speedup([(self.fine_grain[b], self.base[b])
                             for b in names])

    def fine_grain_vs_round_robin(self) -> float:
        """Average IPC shortfall of fine-grain turnoff relative to the
        idealized round-robin upper bound (paper: within ~1%)."""
        return mean_speedup([(self.fine_grain[b], self.round_robin[b])
                             for b in self.benchmarks])

    def table5_rows(self, benchmarks: Optional[Sequence[str]] = None
                    ) -> List[Tuple[str, str, float, List[float]]]:
        """(benchmark, technique, IPC, per-ALU mean temps K)."""
        rows = []
        for bench in benchmarks or self.benchmarks:
            for label, result in (
                    ("Round robin (ideal)", self.round_robin[bench]),
                    ("Fine-grain turnoff", self.fine_grain[bench]),
                    ("Base", self.base[bench])):
                temps = [result.mean_temp(b) for b in INT_ALU_BLOCKS]
                rows.append((bench, label, result.ipc, temps))
        return rows

    def figure7_rows(self) -> List[Tuple[str, float, float, float]]:
        """(benchmark, round-robin IPC, fine-grain IPC, base IPC)."""
        return [(b, self.round_robin[b].ipc, self.fine_grain[b].ipc,
                 self.base[b].ipc) for b in self.benchmarks]

    def format(self) -> str:
        rows = [(b, f"{rr:.3f}", f"{fg:.3f}", f"{base:.3f}",
                 f"{fg / base - 1:+.1%}")
                for b, rr, fg, base in self.figure7_rows()]
        table = format_table(
            ("benchmark", "round-robin", "fine-grain", "base",
             "fg speedup"), rows,
            title="Figure 7: ALU-constrained IPC")
        summary = (
            f"\naverage fine-grain speedup (all): "
            f"{self.average_speedup():+.1%}\n"
            f"average fine-grain speedup (ALU-constrained): "
            f"{self.average_speedup(only_constrained=True):+.1%}\n"
            f"fine-grain vs round-robin: "
            f"{self.fine_grain_vs_round_robin():+.1%}\n"
            f"constrained: {', '.join(self.constrained_benchmarks())}")
        return table + summary


def alu_experiment(benchmarks: Sequence[str] = tuple(BENCHMARK_NAMES),
                   max_cycles: int = 120_000, seed: int = 1,
                   engine: Optional[ExperimentEngine] = None
                   ) -> ALUExperiment:
    """Run Figure 7 / Table 5 on the ALU-constrained chip."""
    policies = (("round-robin", ALUPolicy.ROUND_ROBIN),
                ("fine-grain", ALUPolicy.FINE_GRAIN),
                ("base", ALUPolicy.BASE))
    configs = [
        _config(bench, FloorplanVariant.ALU, TechniqueConfig(alus=policy),
                label, max_cycles, seed)
        for bench in benchmarks for label, policy in policies]
    run_results = iter(run_experiments(configs, engine))
    round_robin: Dict[str, SimulationResult] = {}
    fine_grain: Dict[str, SimulationResult] = {}
    base: Dict[str, SimulationResult] = {}
    for bench in benchmarks:
        round_robin[bench] = next(run_results)
        fine_grain[bench] = next(run_results)
        base[bench] = next(run_results)
    return ALUExperiment(round_robin=round_robin,
                         fine_grain=fine_grain, base=base)


# ---------------------------------------------------------------------------
# Figure 8 + Table 6: register file, mappings x fine-grain turnoff
# ---------------------------------------------------------------------------

#: The four register-file configurations of Figure 8, in its legend
#: order.
RF_CONFIGS: Dict[str, RegFilePolicy] = {
    "fine-grain + balanced": RegFilePolicy(
        MappingKind.BALANCED, fine_grain_turnoff=True),
    "fine-grain + priority": RegFilePolicy(
        MappingKind.PRIORITY, fine_grain_turnoff=True),
    "balanced only": RegFilePolicy(
        MappingKind.BALANCED, fine_grain_turnoff=False),
    "priority only": RegFilePolicy(
        MappingKind.PRIORITY, fine_grain_turnoff=False),
}


@dataclass
class RegFileExperiment:
    """Results of the register-file study (paper §4.3)."""

    #: results[config_label][benchmark]
    results: Dict[str, Dict[str, SimulationResult]]

    @property
    def benchmarks(self) -> List[str]:
        return list(next(iter(self.results.values())))

    def ipc(self, config: str, benchmark: str) -> float:
        return self.results[config][benchmark].ipc

    def constrained_benchmarks(self) -> List[str]:
        base = self.results["priority only"]
        return [b for b in self.benchmarks if _constrained(base[b])]

    def average_speedup(self, config: str, over: str,
                        only_constrained: bool = False) -> float:
        names = (self.constrained_benchmarks() if only_constrained
                 else self.benchmarks)
        if not names:
            return 0.0
        return mean_speedup([(self.results[config][b],
                              self.results[over][b]) for b in names])

    def table6_rows(self, benchmark: str
                    ) -> List[Tuple[str, float, float, float]]:
        """(technique, IPC, copy-0 K, copy-1 K) like paper Table 6."""
        order = ["fine-grain + priority", "fine-grain + balanced",
                 "balanced only", "priority only"]
        rows = []
        for config in order:
            result = self.results[config][benchmark]
            rows.append((config, result.ipc,
                         result.mean_temp("IntReg0"),
                         result.mean_temp("IntReg1")))
        return rows

    def figure8_rows(self) -> List[Tuple[str, List[float]]]:
        """(benchmark, [IPC per config in RF_CONFIGS order])."""
        return [(b, [self.ipc(c, b) for c in RF_CONFIGS])
                for b in self.benchmarks]

    def format(self) -> str:
        headers = ("benchmark", *RF_CONFIGS)
        rows = [(b, *(f"{v:.3f}" for v in vals))
                for b, vals in self.figure8_rows()]
        table = format_table(headers, rows,
                             title="Figure 8: register-file constrained IPC")
        lines = [table, ""]
        comparisons = [
            ("balanced only", "priority only",
             "balanced vs priority (no turnoff)"),
            ("fine-grain + priority", "priority only",
             "turnoff+priority vs priority-only"),
            ("fine-grain + priority", "balanced only",
             "turnoff+priority vs balanced-only"),
            ("fine-grain + priority", "fine-grain + balanced",
             "turnoff+priority vs turnoff+balanced"),
        ]
        for config, over, label in comparisons:
            lines.append(
                f"{label}: {self.average_speedup(config, over):+.1%} all, "
                f"{self.average_speedup(config, over, True):+.1%} "
                f"RF-constrained")
        lines.append(
            f"constrained: {', '.join(self.constrained_benchmarks())}")
        return "\n".join(lines)


def regfile_experiment(benchmarks: Sequence[str] = tuple(BENCHMARK_NAMES),
                       max_cycles: int = 120_000, seed: int = 1,
                       engine: Optional[ExperimentEngine] = None
                       ) -> RegFileExperiment:
    """Run Figure 8 / Table 6 on the register-file-constrained chip."""
    configs = [
        _config(bench, FloorplanVariant.REGFILE,
                TechniqueConfig(regfile=policy), label, max_cycles, seed)
        for bench in benchmarks for label, policy in RF_CONFIGS.items()]
    run_results = iter(run_experiments(configs, engine))
    results: Dict[str, Dict[str, SimulationResult]] = {
        label: {} for label in RF_CONFIGS}
    for bench in benchmarks:
        for label in RF_CONFIGS:
            results[label][bench] = next(run_results)
    return RegFileExperiment(results=results)
