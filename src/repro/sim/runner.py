"""Simulation runner: one benchmark x one technique x one floorplan.

Wires every substrate together — synthetic (or program) trace, the
out-of-order core, the power accountant, the RC thermal model, the
sensor bank, and the DTM controller — and runs for a fixed number of
cycles, returning a :class:`~repro.sim.results.SimulationResult`.

The run starts from the thermal steady state of a nominal utilization
(the analogue of the paper's fast-forward + warm-up) so that heating
dynamics, not cold-start transients, dominate the measurement.
"""

from __future__ import annotations

import gc
import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from ..analysis.sanitize import Sanitizer, sanitize_enabled
from ..core.dtm import ThermalManager
from ..core.mapping import make_mapping
from ..core.policies import TechniqueConfig
from ..obs.collector import TraceCollector, trace_enabled
from ..obs.events import CheckpointRestore
from ..obs.metrics import MetricsRegistry
from ..obs.sparkline import downsample
from ..pipeline.config import ProcessorConfig, ThermalConfig
from ..pipeline.isa import MicroOp
from ..pipeline.processor import Processor, ProcessorStats
from ..power.accounting import PowerAccountant
from ..power.energy import EnergyModel
from ..thermal.floorplan import Floorplan, FloorplanVariant, ev6_floorplan
from ..thermal.rc_model import ThermalModel
from ..thermal.sensors import SensorBank
from ..workloads.trace import ReplayTrace, replay_trace
from .checkpoint import CHECKPOINT_VERSION, CheckpointError
from .results import SimulationResult

#: Default run length (cycles): long enough for several heating /
#: cooling episodes under the default thermal acceleration.
DEFAULT_MAX_CYCLES = 120_000

#: At most this many points per stored thermal timeline (window means;
#: see :func:`repro.obs.sparkline.downsample`).
TIMELINE_POINTS = 64

#: Number of blocks whose timelines a result keeps (the hottest ones).
TIMELINE_BLOCKS = 6


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause cyclic garbage collection around a simulation loop.

    The simulator's object graph is cycle-free (micro-ops, queue
    entries, and in-flight records only reference forward), so nothing
    in a run *needs* the collector — but the materialized trace keeps
    tens of thousands of micro-ops alive, and the periodic generational
    scans over them are pure overhead in the cycle loop.  Reference
    counting still frees all per-cycle garbage immediately.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one run needs."""

    benchmark: str
    variant: FloorplanVariant = FloorplanVariant.BASE
    techniques: TechniqueConfig = field(default_factory=TechniqueConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    energy: EnergyModel = field(default_factory=EnergyModel)
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Cycles executed before measurement to estimate this workload's
    #: average power; the thermal state is initialized to the steady
    #: state of that power (the analogue of HotSpot's two-pass
    #: steady-state initialization after SimPoint fast-forward).
    warmup_cycles: int = 12_000
    seed: int = 1
    technique_label: str = ""
    #: Install the runtime sanitizer's invariant hooks (energy
    #: conservation, temperature bounds, queue/register-file coherence)
    #: for this run.  ``REPRO_SANITIZE=1`` in the environment enables
    #: it regardless of this flag.
    sanitize: bool = False
    #: Collect cycle-stamped DTM events (toggles, unit turnoffs, stalls,
    #: ceiling crossings) into a :class:`~repro.obs.collector.
    #: TraceCollector`.  Off by default: with tracing off no collector
    #: exists and every emission site is a single ``is not None`` check,
    #: so results stay bit-identical and the hot path unchanged.
    #: ``REPRO_TRACE=1`` in the environment enables it regardless of
    #: this flag.  Excluded from the warm-checkpoint key (tracing does
    #: not affect the warmed state); included in the result-cache key.
    trace_events: bool = False

    def label(self) -> str:
        return self.technique_label or (
            f"iq={self.techniques.issue_queue.value}/"
            f"alu={self.techniques.alus.value}/"
            f"rf={self.techniques.regfile.label()}")


class Simulator:
    """Assembles and drives one full-system simulation."""

    def __init__(self, config: SimulationConfig,
                 trace: Optional[Iterator[MicroOp]] = None,
                 warm_caches: bool = True) -> None:
        self.config = config
        self.floorplan = ev6_floorplan(config.variant)
        self.thermal = ThermalModel(
            self.floorplan,
            ambient_k=config.thermal.ambient_k,
            acceleration=config.thermal.acceleration)
        self.accountant = PowerAccountant(self.floorplan, config.energy)
        mapping = make_mapping(config.techniques.regfile.mapping,
                               config.processor.num_int_alus,
                               config.processor.num_regfile_copies)
        self.processor = Processor(
            trace if trace is not None
            else replay_trace(config.benchmark, config.seed),
            config=config.processor,
            mapping=mapping,
            round_robin_alus=config.techniques.round_robin_alus)
        source = trace if trace is not None else self.processor.fetch.trace
        footprint = getattr(source, "warm_footprint", None)
        # ``warm_caches=False`` is the checkpoint-restore path: the
        # restored cache state supersedes the pre-touch pass entirely.
        if footprint is not None and warm_caches:
            l1_addrs, l2_addrs = footprint()
            self.processor.memory.warm(l1_addrs, l2_addrs)
        self.sensors = SensorBank(self.thermal)
        #: Event sink, or None when tracing is off (the default).
        self.collector: Optional[TraceCollector] = (
            TraceCollector() if (config.trace_events or trace_enabled())
            else None)
        self.processor.collector = self.collector
        self.dtm = ThermalManager(self.processor, self.sensors,
                                  config.thermal, config.techniques,
                                  collector=self.collector)
        self._interval_s = (config.thermal.sensor_interval_cycles
                            * config.thermal.cycle_time_s)
        #: Wall-clock seconds per stage (``warmup_s`` or ``restore_s``,
        #: ``measure_s``, ``sample_s``), filled in as stages run.
        self.stage_times: Dict[str, float] = {}
        self._sample_s = 0.0
        self._warm_done = False
        self._measure_started = False
        self._warm_base: Any = None
        self._warm_end: Any = None
        self.sanitizer: Optional[Sanitizer] = None
        if config.sanitize or sanitize_enabled():
            self.sanitizer = Sanitizer()
            self.sanitizer.attach(self)

    def run(self) -> SimulationResult:
        """Execute the configured run and collect results."""
        self.prepare()
        self._measure_started = True
        self._sample_s = 0.0
        start = perf_counter()
        with _gc_paused():
            self.processor.run(
                self.config.max_cycles,
                on_sample=self._on_sample,
                sample_interval=self.config.thermal.sensor_interval_cycles)
        elapsed = perf_counter() - start
        self.stage_times["sample_s"] = self._sample_s
        self.stage_times["measure_s"] = elapsed - self._sample_s
        return self._collect()

    def prepare(self) -> None:
        """Bring the simulator to its post-warm-up state (idempotent).

        Separated from :meth:`run` so a warm checkpoint can be captured
        between warm-up and measurement (see :meth:`capture_warm_state`).
        """
        if self._warm_done:
            return
        start = perf_counter()
        self._warmup()
        self.stage_times["warmup_s"] = perf_counter() - start

    def _warmup(self) -> None:
        """Run unmeasured cycles to estimate average power, set the
        thermal network to its steady state for that power, and zero
        the performance statistics."""
        cycles = self.config.warmup_cycles
        base = self.processor.activity_snapshot()
        self._warm_base = base
        self._warm_end = base
        self.accountant.reset(base)
        if cycles > 0:
            with _gc_paused():
                self.processor.run(cycles)
            end = self.processor.activity_snapshot()
            self._warm_end = end
            seconds = cycles * self.config.thermal.cycle_time_s
            powers = self.accountant.sample(end, seconds)
            self.thermal.initialize_steady_state(powers)
        self.processor.stats = ProcessorStats()
        self._warm_done = True

    # ------------------------------------------------------------------
    # warm-state checkpointing
    # ------------------------------------------------------------------
    @property
    def supports_checkpoint(self) -> bool:
        """Checkpoints need a repositionable trace; custom iterator
        traces passed to :meth:`__init__` cannot be replayed."""
        return isinstance(self.processor.fetch.trace, ReplayTrace)

    def capture_warm_state(self) -> bytes:
        """Serialize the post-warm-up state into a checkpoint blob.

        Must be called after :meth:`prepare` and before :meth:`run`
        advances the pipeline — the snapshot holds live references into
        the processor, so the single :func:`pickle.dumps` here is what
        freezes them (and preserves shared ``MicroOp`` identity across
        the fetch buffer, issue queues, ROB, and functional units).
        """
        if not self._warm_done:
            raise CheckpointError("prepare() must complete before capture")
        if self._measure_started:
            raise CheckpointError("cannot capture after measurement began")
        trace = self.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        payload = {
            "version": CHECKPOINT_VERSION,
            "trace_position": trace.position,
            "processor": self.processor.snapshot_state(),
            "warm_base": self._warm_base,
            "warm_end": self._warm_end,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_checkpoint(cls, config: SimulationConfig,
                        blob: bytes) -> "Simulator":
        """Build a simulator already in its post-warm-up state.

        The power/thermal initialization is *replayed* from the stored
        activity snapshots through this instance's (possibly sanitizer-
        wrapped) accountant and thermal model, so a restored run is
        bit-identical to a fresh one — including sanitizer bookkeeping.
        Raises :class:`CheckpointError` on any malformed blob; callers
        fall back to a fresh warm-up.
        """
        start = perf_counter()
        sim = cls(config, warm_caches=False)
        trace = sim.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        try:
            state = pickle.loads(blob)
            if (not isinstance(state, dict)
                    or state.get("version") != CHECKPOINT_VERSION):
                raise CheckpointError("unrecognized checkpoint format")
            sim.processor.restore_state(state["processor"])
            trace.seek(state["trace_position"])
            sim._warm_base = state["warm_base"]
            sim._warm_end = state["warm_end"]
            sim.accountant.reset(sim._warm_base)
            if config.warmup_cycles > 0:
                seconds = config.warmup_cycles * config.thermal.cycle_time_s
                powers = sim.accountant.sample(sim._warm_end, seconds)
                sim.thermal.initialize_steady_state(powers)
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint: {exc!r}") from exc
        sim._warm_done = True
        if sim.collector is not None:
            sim.collector.emit(CheckpointRestore(
                cycle=sim.processor.now,
                benchmark=config.benchmark,
                trace_position=state["trace_position"]))
        sim.stage_times["restore_s"] = perf_counter() - start
        return sim

    # ------------------------------------------------------------------
    # mid-measurement live-state handoff (batched-grid offload)
    # ------------------------------------------------------------------
    #: Format version of :meth:`capture_live_state` blobs.
    LIVE_STATE_VERSION = 1

    def capture_live_state(self) -> bytes:
        """Serialize the complete mid-measurement state of this run so
        another process can finish it.

        Extends the warm-checkpoint payload with everything that
        accumulates *during* measurement: the power accountant's
        interval baseline and energy totals, the thermal node
        temperatures, the per-block sensor histories, and the DTM
        controller state.  Must be captured at a sampling boundary
        (the batched kernel's offload hook guarantees that), so no
        mid-interval accounting is in flight.
        """
        trace = self.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        payload = {
            "version": self.LIVE_STATE_VERSION,
            "trace_position": trace.position,
            "processor": self.processor.snapshot_state(),
            "warm_base": self._warm_base,
            "warm_end": self._warm_end,
            "accountant": self.accountant.snapshot_state(),
            "thermal": self.thermal.snapshot_state(),
            "sensors": self.sensors.snapshot_state(),
            "dtm": self.dtm.snapshot_state(),
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def resume_live(cls, config: SimulationConfig,
                    blob: bytes) -> "Simulator":
        """Rebuild a mid-measurement simulator from
        :meth:`capture_live_state`.  Raises :class:`CheckpointError`
        on any malformed blob."""
        start = perf_counter()
        sim = cls(config, warm_caches=False)
        trace = sim.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        try:
            state = pickle.loads(blob)
            if (not isinstance(state, dict)
                    or state.get("version") != cls.LIVE_STATE_VERSION):
                raise CheckpointError("unrecognized live-state format")
            sim.processor.restore_state(state["processor"])
            trace.seek(state["trace_position"])
            sim._warm_base = state["warm_base"]
            sim._warm_end = state["warm_end"]
            sim.accountant.restore_state(state["accountant"])
            sim.thermal.restore_state(state["thermal"])
            sim.sensors.restore_state(state["sensors"])
            sim.dtm.restore_state(state["dtm"])
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"corrupt live state: {exc!r}") from exc
        sim._warm_done = True
        sim._measure_started = True
        sim.stage_times["restore_s"] = perf_counter() - start
        return sim

    def run_remaining(self, remaining: int) -> SimulationResult:
        """Finish a live-resumed run: execute the remaining measured
        cycles and collect.  The run sits at a sampling boundary, so
        the absolute-boundary schedule continues exactly where the
        originating process left off."""
        self._sample_s = 0.0
        start = perf_counter()
        with _gc_paused():
            self.processor.run(
                remaining,
                on_sample=self._on_sample,
                sample_interval=self.config.thermal.sensor_interval_cycles)
        elapsed = perf_counter() - start
        self.stage_times["sample_s"] = self._sample_s
        self.stage_times["measure_s"] = elapsed - self._sample_s
        return self._collect()

    def _on_sample(self, processor: Processor) -> None:
        start = perf_counter()
        # Vector fast path: the accountant's power vector is aligned
        # with floorplan.names, which is exactly the thermal model's
        # die-node order — no per-sample dict is built.
        powers = self.accountant.sample_powers(
            processor.activity_snapshot(), self._interval_s)
        self.thermal.step_vector(powers, self._interval_s)
        self.dtm.on_sample(processor)
        self._sample_s += perf_counter() - start

    def _metrics(self, max_temps: Dict[str, float]) -> MetricsRegistry:
        """Per-run metrics, computed once at collection time.

        Collection-time totals read counters the pipeline already
        maintains, so the measured loop pays nothing for them — they
        are populated whether or not event tracing is on.
        """
        registry = MetricsRegistry()
        processor = self.processor
        alu_ops = registry.vector("alu.ops")
        for index, unit in enumerate(processor.int_alus):
            alu_ops.add(index, unit.counters.ops)
        fp_ops = registry.vector("fp_add.ops")
        for index, unit in enumerate(processor.fp_adders):
            fp_ops.add(index, unit.counters.ops)
        rf_reads = registry.vector("regfile.reads")
        rf_writes = registry.vector("regfile.writes")
        rf = processor.regfile.counters
        for copy in range(len(rf.reads)):
            rf_reads.add(copy, rf.reads[copy])
            rf_writes.add(copy, rf.writes[copy])
        for prefix, queue in (("iq.int", processor.int_iq),
                              ("iq.fp", processor.fp_iq)):
            counters = queue.counters
            moves = registry.vector(f"{prefix}.compaction_moves")
            longs = registry.vector(f"{prefix}.long_moves")
            for half in (0, 1):
                moves.add(half, counters.compaction_moves[half])
                longs.add(half, counters.long_moves[half])
        stats = self.processor.stats
        registry.counter("core.stall_cycles").inc(stats.stall_cycles)
        registry.counter("core.throttled_cycles").inc(
            stats.throttled_cycles)
        for reason, count in self.dtm.stats.stall_reasons.items():
            registry.counter(f"dtm.stalls.{reason}").inc(count)
        if max_temps:
            registry.gauge("temp.peak_k").set(max(max_temps.values()))
            hottest = max(max_temps, key=lambda b: (max_temps[b], b))
            ceiling = self.config.thermal.max_temperature_k
            histogram = registry.histogram(
                "temp.hottest_block_k",
                bounds=[ceiling - 9.0, ceiling - 6.0, ceiling - 3.0,
                        ceiling - 1.0, ceiling])
            for reading in self.sensors.history(hottest):
                histogram.observe(float(reading))
        if self.collector is not None:
            for kind, count in sorted(self.collector.counts.items()):
                registry.counter(f"trace.events.{kind}").inc(count)
            registry.counter("trace.dropped").inc(self.collector.dropped)
        return registry

    def _timelines(self, max_temps: Dict[str, float]
                   ) -> Dict[str, List[float]]:
        """Downsampled thermal trajectories of the hottest blocks."""
        hottest = sorted(max_temps,
                         key=lambda b: (-max_temps[b], b))[:TIMELINE_BLOCKS]
        return {name: downsample([float(v) for v in
                                  self.sensors.history(name)],
                                 TIMELINE_POINTS)
                for name in sorted(hottest)}

    def _collect(self) -> SimulationResult:
        stats = self.processor.stats
        dtm = self.dtm.stats
        mean_temps = {name: self.sensors.mean(name)
                      for name in self.floorplan.names}
        max_temps = {name: self.sensors.maximum(name)
                     for name in self.floorplan.names}
        samples = max((s.samples for s in self.sensors.stats.values()),
                      default=0)
        stride = -(-samples // TIMELINE_POINTS) if samples else 0
        return SimulationResult(
            benchmark=self.config.benchmark,
            technique_label=self.config.label(),
            cycles=stats.cycles,
            committed=stats.committed,
            stall_cycles=stats.stall_cycles,
            global_stalls=dtm.global_stalls,
            stall_reasons=dict(dtm.stall_reasons),
            iq_toggles=((self.dtm.int_toggler.stats.toggles
                         if self.dtm.int_toggler else 0)
                        + (self.dtm.fp_toggler.stats.toggles
                           if self.dtm.fp_toggler else 0)),
            alu_turnoffs=dtm.alu_turnoffs + dtm.fp_adder_turnoffs,
            rf_turnoffs=dtm.rf_turnoffs,
            mean_temps=mean_temps,
            max_temps=max_temps,
            metrics=self._metrics(max_temps).to_dict(),
            timelines=self._timelines(max_temps),
            timeline_interval_cycles=(
                stride * self.config.thermal.sensor_interval_cycles),
        )


def run_simulation(config: SimulationConfig,
                   trace: Optional[Iterator[MicroOp]] = None
                   ) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace).run()
